"""Tokenizer and recursive-descent parser for the supported SPARQL subset.

Supported grammar (enough for every query the KGLiDS interfaces issue):

* ``PREFIX`` declarations, on top of the built-in LiDS prefixes.
* ``SELECT [DISTINCT] (?var | (AGG(?var) AS ?alias))+ | *``
* ``WHERE { ... }`` with triple patterns (``;`` and ``,`` abbreviations),
  ``FILTER``, ``OPTIONAL``, ``UNION``, ``GRAPH``, ``BIND (expr AS ?v)``,
  and RDF-star quoted-triple patterns ``<< ?s :p ?o >>`` in subject position.
* ``GROUP BY``, ``ORDER BY [ASC|DESC](?var)``, ``LIMIT``, ``OFFSET``.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Tuple

from repro.rdf.namespace import DEFAULT_PREFIXES, Namespace
from repro.rdf.terms import Literal, URIRef
from repro.sparql.algebra import (
    Aggregate,
    BindClause,
    BooleanExpr,
    Comparison,
    ConstExpr,
    Expression,
    FilterClause,
    FunctionCall,
    GroupPattern,
    NamedGraphPattern,
    NotExpr,
    OptionalPattern,
    QuotedPattern,
    SelectQuery,
    TriplePattern,
    UnionPattern,
    Var,
    VarExpr,
)


class SPARQLSyntaxError(ValueError):
    """Raised when a query cannot be parsed."""


_TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<comment>\#[^\n]*)
    | (?P<quoted_open><<)
    | (?P<quoted_close>>>)
    | (?P<iri><[^<>\s]*>)
    | (?P<string>"(?:[^"\\]|\\.)*")
    | (?P<var>\?[A-Za-z_][A-Za-z0-9_]*)
    | (?P<number>[+-]?\d+(\.\d+)?([eE][+-]?\d+)?)
    | (?P<op>&&|\|\||!=|<=|>=|[=<>!])
    | (?P<punct>[{}().;,*:])
    | (?P<pname>[A-Za-z_][A-Za-z0-9_\-]*:[A-Za-z_][A-Za-z0-9_\-.]*)
    | (?P<word>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select",
    "distinct",
    "where",
    "prefix",
    "filter",
    "optional",
    "union",
    "graph",
    "bind",
    "as",
    "group",
    "order",
    "by",
    "asc",
    "desc",
    "limit",
    "offset",
    "a",
    "count",
    "sum",
    "avg",
    "min",
    "max",
    "sample",
    "true",
    "false",
}


class _Token:
    __slots__ = ("kind", "text")

    def __init__(self, kind: str, text: str):
        self.kind = kind
        self.text = text

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"Token({self.kind}, {self.text!r})"


def _tokenize(query: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(query):
        match = _TOKEN_RE.match(query, position)
        if not match:
            raise SPARQLSyntaxError(
                f"cannot tokenize query at position {position}: {query[position:position + 20]!r}"
            )
        position = match.end()
        kind = match.lastgroup
        if kind in ("ws", "comment"):
            continue
        tokens.append(_Token(kind, match.group(0)))
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token], prefixes: Dict[str, Namespace]):
        self._tokens = tokens
        self._position = 0
        self._prefixes = dict(prefixes)

    # ----------------------------------------------------------- token utils
    def _peek(self, offset: int = 0) -> Optional[_Token]:
        index = self._position + offset
        return self._tokens[index] if index < len(self._tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise SPARQLSyntaxError("unexpected end of query")
        self._position += 1
        return token

    def _expect_word(self, word: str) -> None:
        token = self._next()
        if token.kind != "word" or token.text.lower() != word:
            raise SPARQLSyntaxError(f"expected {word!r}, found {token.text!r}")

    def _expect_punct(self, punct: str) -> None:
        token = self._next()
        if token.text != punct:
            raise SPARQLSyntaxError(f"expected {punct!r}, found {token.text!r}")

    def _at_word(self, word: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == "word" and token.text.lower() == word

    def _at_punct(self, punct: str) -> bool:
        token = self._peek()
        return token is not None and token.text == punct

    # ---------------------------------------------------------------- parsing
    def parse(self) -> SelectQuery:
        self._parse_prologue()
        query = self._parse_select()
        if self._peek() is not None:
            raise SPARQLSyntaxError(f"trailing tokens after query: {self._peek().text!r}")
        return query

    def _parse_prologue(self) -> None:
        while self._at_word("prefix"):
            self._next()
            name_token = self._next()
            if name_token.kind == "pname":
                prefix = name_token.text[:-1] if name_token.text.endswith(":") else name_token.text.split(":", 1)[0]
            elif name_token.kind == "word":
                prefix = name_token.text
                if self._at_punct(":"):
                    self._next()
            else:
                raise SPARQLSyntaxError(f"malformed PREFIX declaration near {name_token.text!r}")
            iri_token = self._next()
            if iri_token.kind != "iri":
                raise SPARQLSyntaxError("PREFIX declaration requires an IRI")
            self._prefixes[prefix] = Namespace(iri_token.text[1:-1])

    def _parse_select(self) -> SelectQuery:
        self._expect_word("select")
        distinct = False
        if self._at_word("distinct"):
            self._next()
            distinct = True
        variables: List[Any] = []
        if self._at_punct("*"):
            self._next()
        else:
            while True:
                token = self._peek()
                if token is None:
                    raise SPARQLSyntaxError("unexpected end of SELECT clause")
                if token.kind == "var":
                    variables.append(Var(self._next().text[1:]))
                elif token.text == "(":
                    variables.append(self._parse_aggregate())
                else:
                    break
        if self._at_word("where"):
            self._next()
        where = self._parse_group()
        group_by: List[Var] = []
        order_by: List[Tuple[Any, bool]] = []
        limit: Optional[int] = None
        offset = 0
        while self._peek() is not None:
            if self._at_word("group"):
                self._next()
                self._expect_word("by")
                while self._peek() is not None and self._peek().kind == "var":
                    group_by.append(Var(self._next().text[1:]))
            elif self._at_word("order"):
                self._next()
                self._expect_word("by")
                order_by.extend(self._parse_order_conditions())
            elif self._at_word("limit"):
                self._next()
                limit = int(self._next().text)
            elif self._at_word("offset"):
                self._next()
                offset = int(self._next().text)
            else:
                break
        return SelectQuery(
            variables=variables,
            distinct=distinct,
            where=where,
            group_by=group_by,
            order_by=order_by,
            limit=limit,
            offset=offset,
        )

    def _parse_order_conditions(self) -> List[Tuple[Any, bool]]:
        conditions: List[Tuple[Any, bool]] = []
        while True:
            token = self._peek()
            if token is None:
                break
            if token.kind == "var":
                conditions.append((Var(self._next().text[1:]), True))
            elif token.kind == "word" and token.text.lower() in ("asc", "desc"):
                ascending = self._next().text.lower() == "asc"
                self._expect_punct("(")
                variable_token = self._next()
                if variable_token.kind != "var":
                    raise SPARQLSyntaxError("ORDER BY ASC/DESC expects a variable")
                self._expect_punct(")")
                conditions.append((Var(variable_token.text[1:]), ascending))
            else:
                break
        if not conditions:
            raise SPARQLSyntaxError("empty ORDER BY clause")
        return conditions

    def _parse_aggregate(self) -> Aggregate:
        self._expect_punct("(")
        function_token = self._next()
        if function_token.kind != "word" or function_token.text.lower() not in (
            "count",
            "sum",
            "avg",
            "min",
            "max",
            "sample",
        ):
            raise SPARQLSyntaxError(f"unknown aggregate {function_token.text!r}")
        function = function_token.text.lower()
        self._expect_punct("(")
        distinct = False
        if self._at_word("distinct"):
            self._next()
            distinct = True
        argument: Optional[Var] = None
        if self._at_punct("*"):
            self._next()
        else:
            variable_token = self._next()
            if variable_token.kind != "var":
                raise SPARQLSyntaxError("aggregate argument must be a variable or *")
            argument = Var(variable_token.text[1:])
        self._expect_punct(")")
        self._expect_word("as")
        alias_token = self._next()
        if alias_token.kind != "var":
            raise SPARQLSyntaxError("aggregate alias must be a variable")
        self._expect_punct(")")
        return Aggregate(
            function=function, argument=argument, distinct=distinct, alias=Var(alias_token.text[1:])
        )

    # ------------------------------------------------------------- patterns
    def _parse_group(self) -> GroupPattern:
        self._expect_punct("{")
        group = GroupPattern()
        while not self._at_punct("}"):
            token = self._peek()
            if token is None:
                raise SPARQLSyntaxError("unterminated group pattern")
            if self._at_word("filter"):
                self._next()
                self._expect_punct("(")
                expression = self._parse_expression()
                self._expect_punct(")")
                group.elements.append(FilterClause(expression))
            elif self._at_word("optional"):
                self._next()
                group.elements.append(OptionalPattern(self._parse_group()))
            elif self._at_word("bind"):
                self._next()
                self._expect_punct("(")
                expression = self._parse_expression()
                self._expect_word("as")
                variable_token = self._next()
                if variable_token.kind != "var":
                    raise SPARQLSyntaxError("BIND requires a variable alias")
                self._expect_punct(")")
                group.elements.append(BindClause(expression, Var(variable_token.text[1:])))
            elif self._at_word("graph"):
                self._next()
                graph_term = self._parse_term()
                group.elements.append(NamedGraphPattern(graph_term, self._parse_group()))
            elif self._at_punct("{"):
                branches = [self._parse_group()]
                while self._at_word("union"):
                    self._next()
                    branches.append(self._parse_group())
                group.elements.append(UnionPattern(branches))
            else:
                group.elements.extend(self._parse_triples_block())
            if self._at_punct("."):
                self._next()
        self._expect_punct("}")
        return group

    def _parse_triples_block(self) -> List[TriplePattern]:
        subject = self._parse_term(allow_quoted=True)
        patterns: List[TriplePattern] = []
        while True:
            predicate = self._parse_term(as_predicate=True)
            obj = self._parse_term(allow_quoted=True)
            patterns.append(TriplePattern(subject, predicate, obj))
            while self._at_punct(","):
                self._next()
                obj = self._parse_term(allow_quoted=True)
                patterns.append(TriplePattern(subject, predicate, obj))
            if self._at_punct(";"):
                self._next()
                if self._at_punct(".") or self._at_punct("}"):
                    break
                continue
            break
        return patterns

    def _parse_term(self, as_predicate: bool = False, allow_quoted: bool = False) -> Any:
        token = self._next()
        if token.kind == "quoted_open":
            if not allow_quoted:
                raise SPARQLSyntaxError("quoted triple not allowed here")
            subject = self._parse_term()
            predicate = self._parse_term(as_predicate=True)
            obj = self._parse_term()
            closing = self._next()
            if closing.kind != "quoted_close":
                raise SPARQLSyntaxError("unterminated quoted triple pattern")
            return QuotedPattern(subject, predicate, obj)
        if token.kind == "var":
            return Var(token.text[1:])
        if token.kind == "iri":
            return URIRef(token.text[1:-1])
        if token.kind == "pname":
            prefix, local = token.text.split(":", 1)
            if prefix not in self._prefixes:
                raise SPARQLSyntaxError(f"unknown prefix {prefix!r}")
            return self._prefixes[prefix].term(local)
        if token.kind == "string":
            return self._finish_literal(token.text)
        if token.kind == "number":
            return Literal(float(token.text)) if "." in token.text or "e" in token.text.lower() else Literal(int(token.text))
        if token.kind == "word":
            lowered = token.text.lower()
            if as_predicate and lowered == "a":
                from repro.rdf.namespace import RDF

                return RDF.type
            if lowered == "true":
                return Literal(True)
            if lowered == "false":
                return Literal(False)
        raise SPARQLSyntaxError(f"unexpected token {token.text!r} in pattern")

    def _finish_literal(self, text: str) -> Literal:
        value = Literal.unescape(text[1:-1])
        if self._peek() is not None and self._peek().text == "^":  # pragma: no cover
            raise SPARQLSyntaxError("typed literals with ^^ are not supported in queries")
        return Literal(value)

    # ---------------------------------------------------------- expressions
    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self._peek() is not None and self._peek().text == "||":
            self._next()
            right = self._parse_and()
            left = BooleanExpr("||", left, right)
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_comparison()
        while self._peek() is not None and self._peek().text == "&&":
            self._next()
            right = self._parse_comparison()
            left = BooleanExpr("&&", left, right)
        return left

    def _parse_comparison(self) -> Expression:
        left = self._parse_primary_expression()
        token = self._peek()
        if token is not None and token.text in ("=", "!=", "<", "<=", ">", ">="):
            operator = self._next().text
            right = self._parse_primary_expression()
            return Comparison(operator, left, right)
        return left

    def _parse_primary_expression(self) -> Expression:
        token = self._peek()
        if token is None:
            raise SPARQLSyntaxError("unexpected end of expression")
        if token.text == "!":
            self._next()
            return NotExpr(self._parse_primary_expression())
        if token.text == "(":
            self._next()
            inner = self._parse_expression()
            self._expect_punct(")")
            return inner
        if token.kind == "var":
            self._next()
            return VarExpr(Var(token.text[1:]))
        if token.kind == "string":
            self._next()
            return ConstExpr(Literal.unescape(token.text[1:-1]))
        if token.kind == "number":
            self._next()
            return ConstExpr(float(token.text) if "." in token.text or "e" in token.text.lower() else int(token.text))
        if token.kind == "iri":
            self._next()
            return ConstExpr(URIRef(token.text[1:-1]))
        if token.kind == "pname":
            self._next()
            prefix, local = token.text.split(":", 1)
            if prefix not in self._prefixes:
                raise SPARQLSyntaxError(f"unknown prefix {prefix!r}")
            return ConstExpr(self._prefixes[prefix].term(local))
        if token.kind == "word":
            lowered = token.text.lower()
            if lowered in ("true", "false"):
                self._next()
                return ConstExpr(lowered == "true")
            # function call
            self._next()
            self._expect_punct("(")
            arguments: List[Expression] = []
            if not self._at_punct(")"):
                arguments.append(self._parse_expression())
                while self._at_punct(","):
                    self._next()
                    arguments.append(self._parse_expression())
            self._expect_punct(")")
            return FunctionCall(lowered, arguments)
        raise SPARQLSyntaxError(f"unexpected token {token.text!r} in expression")


def parse_query(query: str, prefixes: Optional[Dict[str, Namespace]] = None) -> SelectQuery:
    """Parse a SPARQL SELECT query into its algebra representation."""
    tokens = _tokenize(query)
    parser = _Parser(tokens, prefixes or DEFAULT_PREFIXES)
    return parser.parse()
