"""A SPARQL subset parser and evaluator over :class:`repro.rdf.QuadStore`.

KGLiDS implements most of its predefined operations as SPARQL queries against
the LiDS graph stored in GraphDB.  This package provides the query engine the
reproduction needs: SELECT queries with basic graph patterns, FILTER,
OPTIONAL, UNION, GRAPH, aggregates with GROUP BY, ORDER BY and LIMIT/OFFSET,
plus RDF-star quoted-triple patterns for reading similarity scores.
"""

from repro.sparql.engine import SPARQLEngine, SelectResult
from repro.sparql.parser import parse_query

__all__ = ["SPARQLEngine", "SelectResult", "parse_query"]
