"""Columnar solution relations for the batched SPARQL executor.

The batched executor represents intermediate solutions as a
:class:`Relation`: a fixed variable-slot layout plus rows that are plain
tuples of integer term ids — no per-row dicts, no term objects.  Joining a
triple pattern into the accumulated solutions is a hash join on the shared
variables; ids only decode back to terms at FILTER evaluation and final
projection.

Two id spaces meet here: the store's :class:`~repro.rdf.terms.TermDictionary`
assigns positive ids to interned terms, and a per-query :class:`QueryEncoder`
assigns *negative* ids to query-local values (BIND results, graph names or
constants the store never interned).  Equality of ids coincides with the
seed engine's value equality: a local id is only assigned when the store
dictionary has no id for the value, and local interning uses the same
``dict``-key equality the seed's ``==`` comparisons reduce to.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.rdf.terms import TermDictionary

#: Cell value marking an unbound variable slot (OPTIONAL padding).
UNBOUND = None

#: Sentinel id for unbound cells in numpy columns.  Safe because the store
#: dictionary assigns ids starting at 1 and query-local ids are negative, so
#: 0 never denotes a term in either id space.
UNBOUND_ID = 0


def column_ids(rows: Sequence[tuple], slot: int) -> np.ndarray:
    """One relation column as an int64 array (:data:`UNBOUND` -> 0).

    The bridge from tuple rows into vectorized collation: unbound cells map
    to :data:`UNBOUND_ID`, which no term id can collide with.
    """
    return np.fromiter(
        (row[slot] or UNBOUND_ID for row in rows), np.int64, len(rows)
    )


def row_codes(columns: Sequence[np.ndarray], length: int) -> np.ndarray:
    """Dense per-row codes: equal rows (over ``columns``) share one code.

    Mixed-radix combination with densification after every column keeps the
    intermediate codes bounded by the row count, so the combine never
    overflows int64 regardless of id magnitudes or column count.
    """
    if not columns:
        return np.zeros(length, np.int64)
    _, combined = np.unique(columns[0], return_inverse=True)
    for column in columns[1:]:
        distinct, inverse = np.unique(column, return_inverse=True)
        combined = combined * np.int64(len(distinct)) + inverse
        _, combined = np.unique(combined, return_inverse=True)
    return combined


class QueryEncoder:
    """Per-query value <-> id codec layered over the store dictionary.

    Reads pass through to the store's dictionary; values the store never
    interned (BIND results, graph names, constants absent from the data) get
    query-local negative ids, so every value flowing through a query has
    exactly one id and joins stay pure integer comparisons.
    """

    __slots__ = ("dictionary", "_local_ids", "_local_values")

    def __init__(self, dictionary: TermDictionary):
        self.dictionary = dictionary
        self._local_ids: Dict[Any, int] = {}
        self._local_values: List[Any] = []

    def encode(self, value: Any) -> int:
        """The value's id (store id when interned, else a query-local one)."""
        term_id = self.dictionary.lookup(value)
        if term_id is not None:
            return term_id
        local = self._local_ids.get(value)
        if local is None:
            self._local_values.append(value)
            local = -len(self._local_values)
            self._local_ids[value] = local
        return local

    def decode(self, term_id: int) -> Any:
        """The value behind an id from either space."""
        if term_id < 0:
            return self._local_values[-term_id - 1]
        return self.dictionary.decode(term_id)

    def quoted_parts(self, term_id: int) -> Optional[Tuple[int, int, int]]:
        """Inner part ids when ``term_id`` denotes a quoted triple."""
        if term_id < 0:
            return None
        return self.dictionary.quoted_parts(term_id)

    def quoted_id(self, parts: Tuple[int, int, int]) -> Optional[int]:
        """The store id of the quoted triple with these inner ids, if any."""
        if any(part < 0 for part in parts):
            return None
        return self.dictionary.quoted_id(parts)


class Relation:
    """A set of solutions over a fixed variable-slot layout.

    ``variables`` names the slots; each row is a tuple of ids (or
    :data:`UNBOUND` for variables an OPTIONAL branch left unbound).  Group
    evaluation only ever *extends* the layout — new variables append new
    slots — so a prefix of any descendant relation's layout is always the
    ancestor's layout.
    """

    __slots__ = ("variables", "rows", "_slots")

    def __init__(self, variables: Tuple[str, ...], rows: List[tuple]):
        self.variables = variables
        self.rows = rows
        self._slots: Dict[str, int] = {name: i for i, name in enumerate(variables)}

    @classmethod
    def unit(cls) -> "Relation":
        """The join identity: no variables, one empty row."""
        return cls((), [()])

    def slot(self, name: str) -> Optional[int]:
        return self._slots.get(name)

    def __len__(self) -> int:
        return len(self.rows)

    def decode_row(self, row: tuple, encoder: QueryEncoder) -> Dict[str, Any]:
        """One row as a seed-style binding dict (unbound slots omitted).

        Internal columns (names starting with ``#`` — impossible in parsed
        SPARQL variables) carry engine bookkeeping such as OPTIONAL row
        provenance, not term ids, and are never decoded.
        """
        decode = encoder.decode
        return {
            name: decode(cell)
            for name, cell in zip(self.variables, row)
            if cell is not UNBOUND and not name.startswith("#")
        }

    def to_bindings(self, encoder: QueryEncoder) -> List[Dict[str, Any]]:
        """Decode every row — the final-projection boundary of the executor."""
        return [self.decode_row(row, encoder) for row in self.rows]

    @staticmethod
    def concat(relations: Sequence["Relation"]) -> "Relation":
        """Union of relations, aligning layouts (missing slots pad unbound).

        Used for UNION branches and per-graph GRAPH evaluations, whose
        branches may have grown different variable sets.
        """
        if not relations:
            return Relation((), [])
        variables: List[str] = []
        seen = set()
        for relation in relations:
            for name in relation.variables:
                if name not in seen:
                    seen.add(name)
                    variables.append(name)
        layout = tuple(variables)
        rows: List[tuple] = []
        for relation in relations:
            if relation.variables == layout:
                rows.extend(relation.rows)
                continue
            if relation.variables == layout[: len(relation.variables)]:
                # Aligned-prefix fast path: group evaluation only ever
                # appends slots, so UNION branches that grew the same
                # variables in the same order need pure tail padding — no
                # per-cell re-pick loop.
                padding = (UNBOUND,) * (len(layout) - len(relation.variables))
                rows.extend(row + padding for row in relation.rows)
                continue
            slots = [relation.slot(name) for name in layout]
            for row in relation.rows:
                rows.append(
                    tuple(row[slot] if slot is not None else UNBOUND for slot in slots)
                )
        return Relation(layout, rows)


class ColumnRelation:
    """A columnar numpy view over a :class:`Relation`.

    The vectorized collation tail (GROUP BY / ORDER BY / DISTINCT / SELECT
    ``*``) works on int64 id columns instead of per-row tuples: each column
    is materialized lazily on first access (only variables the query's
    collation actually reads are ever converted) and cached, with
    :data:`UNBOUND_ID` standing in for unbound cells.  ``take`` / ``select``
    reorder or filter the underlying rows while re-using already-gathered
    columns, so a multi-key ORDER BY builds each key column exactly once.
    """

    __slots__ = ("relation", "_columns")

    def __init__(self, relation: Relation):
        self.relation = relation
        self._columns: Dict[int, np.ndarray] = {}

    @property
    def variables(self) -> Tuple[str, ...]:
        return self.relation.variables

    @property
    def rows(self) -> List[tuple]:
        return self.relation.rows

    def slot(self, name: str) -> Optional[int]:
        return self.relation.slot(name)

    def __len__(self) -> int:
        return len(self.relation.rows)

    def column(self, slot: int) -> np.ndarray:
        """The slot's id column (unbound cells as :data:`UNBOUND_ID`), cached."""
        column = self._columns.get(slot)
        if column is None:
            column = self._columns[slot] = column_ids(self.relation.rows, slot)
        return column

    def take(self, order: np.ndarray) -> "ColumnRelation":
        """Rows picked by position, carrying gathered columns along."""
        rows = self.relation.rows
        taken = ColumnRelation(
            Relation(self.relation.variables, [rows[i] for i in order.tolist()])
        )
        taken._columns = {slot: column[order] for slot, column in self._columns.items()}
        return taken

    def select(self, keep: np.ndarray) -> "ColumnRelation":
        """Rows surviving a boolean mask, carrying gathered columns along."""
        from itertools import compress

        selected = ColumnRelation(
            Relation(
                self.relation.variables,
                list(compress(self.relation.rows, keep.tolist())),
            )
        )
        selected._columns = {
            slot: column[keep] for slot, column in self._columns.items()
        }
        return selected


class BoundedMemo:
    """A capacity-bounded LRU memo for pattern-lookup results.

    The seed engine's per-pattern memo grew without limit across large
    solution sets; this one evicts least-recently-used entries past
    ``capacity`` and counts hits / misses / evictions so the engine can
    expose cache effectiveness to tests and benchmarks.  A ``capacity`` of
    ``None`` disables eviction (but keeps the counters).
    """

    __slots__ = ("capacity", "hits", "misses", "evictions", "_entries")

    #: Sentinel distinguishing "absent" from a memoized empty result.
    _MISSING = object()

    def __init__(self, capacity: Optional[int]):
        if capacity is not None and capacity < 1:
            raise ValueError("memo capacity must be >= 1 (or None for unbounded)")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: Dict[Any, Any] = {}

    def get(self, key: Any) -> Any:
        """The memoized value or :data:`BoundedMemo.MISSING`; refreshes recency."""
        entries = self._entries
        value = entries.get(key, self._MISSING)
        if value is self._MISSING:
            self.misses += 1
            return self._MISSING
        self.hits += 1
        if self.capacity is not None:
            # Python dicts iterate in insertion order; re-inserting refreshes
            # this key's position in the eviction queue at O(1).
            del entries[key]
            entries[key] = value
        return value

    def put(self, key: Any, value: Any) -> None:
        entries = self._entries
        if self.capacity is not None and len(entries) >= self.capacity:
            victim = next(iter(entries))
            del entries[victim]
            self.evictions += 1
        entries[key] = value

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def MISSING(self) -> Any:
        return self._MISSING

    def counters(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._entries),
        }
