"""Query algebra: the node types produced by the parser and consumed by the engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


class Var(str):
    """A SPARQL variable (stored without the leading ``?``)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"Var(?{str(self)})"


# --------------------------------------------------------------------- terms
@dataclass(frozen=True)
class QuotedPattern:
    """An RDF-star quoted-triple pattern usable in subject position."""

    subject: Any
    predicate: Any
    object: Any


# ------------------------------------------------------------------ patterns
@dataclass
class TriplePattern:
    subject: Any
    predicate: Any
    object: Any


@dataclass
class FilterClause:
    expression: "Expression"


@dataclass
class OptionalPattern:
    group: "GroupPattern"


@dataclass
class UnionPattern:
    branches: List["GroupPattern"]


@dataclass
class NamedGraphPattern:
    graph: Any  # Var or URIRef
    group: "GroupPattern"


@dataclass
class BindClause:
    expression: "Expression"
    variable: Var


@dataclass
class GroupPattern:
    elements: List[Any] = field(default_factory=list)


# --------------------------------------------------------------- expressions
@dataclass
class Expression:
    """Base class for filter / projection expressions."""


@dataclass
class VarExpr(Expression):
    variable: Var


@dataclass
class ConstExpr(Expression):
    value: Any


@dataclass
class Comparison(Expression):
    operator: str  # one of = != < <= > >=
    left: Expression
    right: Expression


@dataclass
class BooleanExpr(Expression):
    operator: str  # && or ||
    left: Expression
    right: Expression


@dataclass
class NotExpr(Expression):
    operand: Expression


@dataclass
class FunctionCall(Expression):
    name: str  # lower-cased function name, e.g. regex, contains, bound, str
    arguments: List[Expression]


# ------------------------------------------------------------------- queries
@dataclass
class Aggregate:
    function: str  # count, sum, avg, min, max, sample
    argument: Optional[Var]  # None means COUNT(*)
    distinct: bool
    alias: Var


@dataclass
class SelectQuery:
    variables: List[Any]  # list of Var and Aggregate; empty means SELECT *
    distinct: bool
    where: GroupPattern
    group_by: List[Var] = field(default_factory=list)
    order_by: List[Tuple[Any, bool]] = field(default_factory=list)  # (Var|Aggregate alias, ascending)
    limit: Optional[int] = None
    offset: int = 0

    def is_select_star(self) -> bool:
        return not self.variables

    def has_aggregates(self) -> bool:
        return any(isinstance(item, Aggregate) for item in self.variables)


# ------------------------------------------------------------------ analysis
def expression_variables(expression: Expression) -> set:
    """The set of variable names an expression reads.

    Shared by the engine's FILTER planning (single-variable predicates are
    eligible for pushdown below joins) and its decode-only-what-is-referenced
    FILTER / BIND evaluation.
    """
    names: set = set()
    stack = [expression]
    while stack:
        node = stack.pop()
        if isinstance(node, VarExpr):
            names.add(str(node.variable))
        elif isinstance(node, (Comparison, BooleanExpr)):
            stack.append(node.left)
            stack.append(node.right)
        elif isinstance(node, NotExpr):
            stack.append(node.operand)
        elif isinstance(node, FunctionCall):
            stack.extend(node.arguments)
    return names
