"""Evaluation of parsed SPARQL queries over a :class:`~repro.rdf.QuadStore`."""

from __future__ import annotations

import re
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.rdf.namespace import DEFAULT_PREFIXES
from repro.rdf.store import QuadStore
from repro.rdf.terms import Literal, QuotedTriple, URIRef
from repro.sparql.algebra import (
    Aggregate,
    BindClause,
    BooleanExpr,
    Comparison,
    ConstExpr,
    Expression,
    FilterClause,
    FunctionCall,
    GroupPattern,
    NamedGraphPattern,
    NotExpr,
    OptionalPattern,
    QuotedPattern,
    SelectQuery,
    TriplePattern,
    UnionPattern,
    Var,
    VarExpr,
)
from repro.sparql.parser import parse_query

Binding = Dict[str, Any]


class SelectResult:
    """The result of a SELECT query: variable names plus rows of bindings."""

    def __init__(self, variables: List[str], rows: List[Dict[str, Any]]):
        self.variables = variables
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column(self, variable: str) -> List[Any]:
        """All values bound to ``variable`` across rows (``None`` when unbound)."""
        return [row.get(variable) for row in self.rows]

    def to_table(self, name: str = "query_result"):
        """Convert to a :class:`repro.tabular.Table` (the paper returns DataFrames)."""
        from repro.tabular import Column, Table

        table = Table(name)
        for variable in self.variables:
            table.add_column(Column(variable, [row.get(variable) for row in self.rows]))
        return table

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"SelectResult(variables={self.variables}, rows={len(self.rows)})"


def _to_python(value: Any) -> Any:
    if isinstance(value, Literal):
        return value.to_python()
    return value


def _term_matches(pattern_term: Any, value: Any, binding: Binding) -> Optional[Binding]:
    """Try to match one pattern term against a concrete value, extending the binding."""
    if isinstance(pattern_term, Var):
        bound = binding.get(str(pattern_term))
        if bound is None:
            extended = dict(binding)
            extended[str(pattern_term)] = value
            return extended
        return binding if bound == value else None
    if isinstance(pattern_term, QuotedPattern):
        if not isinstance(value, QuotedTriple):
            return None
        current: Optional[Binding] = binding
        for part, concrete in (
            (pattern_term.subject, value.subject),
            (pattern_term.predicate, value.predicate),
            (pattern_term.object, value.object),
        ):
            current = _term_matches(part, concrete, current)
            if current is None:
                return None
        return current
    return binding if pattern_term == value else None


class SPARQLEngine:
    """Evaluates SELECT queries against a quad store.

    Evaluation is index-aware: inside each group pattern, triple patterns are
    greedily reordered by estimated selectivity (cheapest first, given the
    variables bound so far) before being joined, every bound term — including
    fully-resolved RDF-star quoted triples — is pushed down into the store's
    hash-index lookups, and identical lookups across solution bindings are
    answered from a per-pattern memo instead of re-scanning.  ``optimize=False``
    evaluates patterns in written order (the seed behaviour), which the
    benchmarks use as the comparison baseline.
    """

    def __init__(self, store: QuadStore, prefixes=None, optimize: bool = True):
        self.store = store
        self.prefixes = prefixes or DEFAULT_PREFIXES
        self.optimize = optimize

    # ------------------------------------------------------------------ API
    def select(self, query: str) -> SelectResult:
        """Parse and evaluate a SELECT query."""
        parsed = parse_query(query, self.prefixes)
        return self.evaluate(parsed)

    def explain(self, query) -> List[str]:
        """The planned evaluation order of the query's top-level group.

        Accepts a query string or a parsed :class:`SelectQuery` and returns
        one human-readable line per group element, in the order the planner
        would evaluate them.  Exposes the effect of the cardinality
        statistics on join ordering for tests and benchmarks.
        """
        parsed = parse_query(query, self.prefixes) if isinstance(query, str) else query
        elements = (
            self._reorder_elements(parsed.where.elements, [dict()], graph=None)
            if self.optimize
            else parsed.where.elements
        )
        return [self._describe_element(element) for element in elements]

    @classmethod
    def _describe_element(cls, element: Any) -> str:
        if isinstance(element, TriplePattern):
            return " ".join(
                cls._describe_term(term)
                for term in (element.subject, element.predicate, element.object)
            )
        return type(element).__name__

    @classmethod
    def _describe_term(cls, term: Any) -> str:
        if isinstance(term, Var):
            return f"?{term}"
        if isinstance(term, QuotedPattern):
            inner = " ".join(
                cls._describe_term(part) for part in (term.subject, term.predicate, term.object)
            )
            return f"<< {inner} >>"
        if isinstance(term, URIRef):
            return term.n3()
        return str(term)

    def evaluate(self, query: SelectQuery) -> SelectResult:
        """Evaluate an already-parsed query."""
        solutions = self._evaluate_group(query.where, [dict()], graph=None)
        if query.has_aggregates():
            rows = self._aggregate(query, solutions)
        else:
            rows = solutions
        # ORDER BY is applied before projection (SPARQL semantics), so sort
        # keys may reference variables that are not selected.
        rows = self._order(query, rows)
        variables = self._result_variables(query, rows)
        projected = self._project(query, rows, variables)
        if query.distinct:
            projected = self._distinct(projected)
        if query.offset:
            projected = projected[query.offset :]
        if query.limit is not None:
            projected = projected[: query.limit]
        return SelectResult(variables, projected)

    # ------------------------------------------------------------ evaluation
    def _evaluate_group(
        self, group: GroupPattern, solutions: List[Binding], graph: Optional[Any]
    ) -> List[Binding]:
        filters: List[FilterClause] = []
        current = solutions
        elements = (
            self._reorder_elements(group.elements, solutions, graph)
            if self.optimize
            else group.elements
        )
        for element in elements:
            if isinstance(element, TriplePattern):
                current = self._join_pattern(element, current, graph)
            elif isinstance(element, FilterClause):
                filters.append(element)
            elif isinstance(element, OptionalPattern):
                current = self._left_join(element.group, current, graph)
            elif isinstance(element, UnionPattern):
                merged: List[Binding] = []
                for branch in element.branches:
                    merged.extend(self._evaluate_group(branch, current, graph))
                current = merged
            elif isinstance(element, NamedGraphPattern):
                current = self._evaluate_named_graph(element, current)
            elif isinstance(element, BindClause):
                bound: List[Binding] = []
                for solution in current:
                    extended = dict(solution)
                    extended[str(element.variable)] = self._evaluate_expression(
                        element.expression, solution
                    )
                    bound.append(extended)
                current = bound
            else:  # pragma: no cover - parser only produces the above
                raise TypeError(f"unexpected group element {element!r}")
        for filter_clause in filters:
            current = [
                solution
                for solution in current
                if self._truth(self._evaluate_expression(filter_clause.expression, solution))
            ]
        return current

    def _join_pattern(
        self, pattern: TriplePattern, solutions: List[Binding], graph: Optional[Any]
    ) -> List[Binding]:
        results: List[Binding] = []
        graph_name = None
        if graph is not None and not isinstance(graph, Var):
            graph_name = graph
        # Solutions that resolve the pattern to the same lookup key hit the
        # same index entries; memoize the matches so repeated (or fully
        # unbound cross-join) lookups never re-scan the store.  Both the memo
        # and the quoted-triple pushdown are part of the optimizer, so
        # ``optimize=False`` keeps the seed per-binding scans.
        memo: Dict[Tuple[Any, ...], List[Tuple[Any, Any]]] = {}
        for solution in solutions:
            subject = self._resolve(pattern.subject, solution)
            predicate = self._resolve(pattern.predicate, solution)
            obj = self._resolve(pattern.object, solution)
            lookup_predicate = predicate if not isinstance(predicate, Var) else None
            if self.optimize:
                lookup_subject = self._lookup_key(subject, solution)
                lookup_object = self._lookup_key(obj, solution)
                quoted_parts = None
                if lookup_subject is None and isinstance(subject, QuotedPattern):
                    # Partial RDF-star pushdown: with at least one inner term
                    # bound, the store's partial quoted-triple index answers
                    # without scanning every annotation.
                    quoted_parts = self._quoted_lookup_parts(subject, solution)
                if quoted_parts is not None:
                    memo_key = ("<<>>",) + quoted_parts + (lookup_predicate, lookup_object)
                    matches = memo.get(memo_key)
                    if matches is None:
                        matches = list(
                            self.store.match_quoted(
                                quoted_parts[0],
                                quoted_parts[1],
                                quoted_parts[2],
                                lookup_predicate,
                                lookup_object,
                                graph_name,
                            )
                        )
                        memo[memo_key] = matches
                else:
                    memo_key = (lookup_subject, lookup_predicate, lookup_object)
                    matches = memo.get(memo_key)
                    if matches is None:
                        matches = list(
                            self.store.match(
                                lookup_subject, lookup_predicate, lookup_object, graph_name
                            )
                        )
                        memo[memo_key] = matches
            else:
                lookup_subject = subject if not isinstance(subject, (Var, QuotedPattern)) else None
                lookup_object = obj if not isinstance(obj, (Var, QuotedPattern)) else None
                matches = self.store.match(
                    lookup_subject, lookup_predicate, lookup_object, graph_name
                )
            for triple, triple_graph in matches:
                binding: Optional[Binding] = solution
                if graph is not None and isinstance(graph, Var):
                    binding = _term_matches(graph, triple_graph, binding)
                    if binding is None:
                        continue
                for pattern_term, value in (
                    (subject, triple.subject),
                    (predicate, triple.predicate),
                    (obj, triple.object),
                ):
                    binding = _term_matches(pattern_term, value, binding)
                    if binding is None:
                        break
                if binding is not None:
                    results.append(binding)
        return results

    @classmethod
    def _lookup_key(cls, term: Any, binding: Binding) -> Optional[Any]:
        """The index lookup key for a resolved term (``None`` = wildcard)."""
        if isinstance(term, Var):
            return None
        if isinstance(term, QuotedPattern):
            return cls._resolve_quoted(term, binding)
        return term

    @classmethod
    def _quoted_lookup_parts(
        cls, pattern: QuotedPattern, binding: Binding
    ) -> Optional[Tuple[Any, Any, Any]]:
        """Concrete inner terms of a quoted pattern (``None`` = wildcard).

        Returns ``(inner_subject, inner_predicate, inner_object)`` with each
        part resolved against the binding where possible, or ``None`` when no
        part is concrete (a fully unbound quoted pattern gains nothing from
        the partial index).
        """
        parts: List[Any] = []
        for part in (pattern.subject, pattern.predicate, pattern.object):
            value = part
            if isinstance(part, Var):
                value = binding.get(str(part))
            if isinstance(value, QuotedPattern):
                value = cls._resolve_quoted(value, binding)
            parts.append(value)
        if all(part is None for part in parts):
            return None
        return tuple(parts)

    @classmethod
    def _resolve_quoted(cls, pattern: QuotedPattern, binding: Binding) -> Optional[QuotedTriple]:
        """A concrete :class:`QuotedTriple` if every part is bound, else ``None``.

        Fully-bound RDF-star subjects (the common "read the certainty of this
        edge" access path) then hit the subject hash index directly instead of
        scanning the graph.
        """
        parts = []
        for part in (pattern.subject, pattern.predicate, pattern.object):
            value = part
            if isinstance(part, Var):
                value = binding.get(str(part))
                if value is None:
                    return None
            if isinstance(value, QuotedPattern):
                value = cls._resolve_quoted(value, binding)
                if value is None:
                    return None
            parts.append(value)
        return QuotedTriple(*parts)

    # ------------------------------------------------------------ query plan
    def _reorder_elements(
        self, elements: List[Any], solutions: List[Binding], graph: Optional[Any]
    ) -> List[Any]:
        """Greedily reorder triple patterns by estimated selectivity.

        Only maximal runs of triple patterns are permuted; OPTIONAL / UNION /
        GRAPH / BIND elements act as barriers because their semantics depend
        on what is already joined.  FILTERs are order-insensitive here (they
        are deferred to the end of the group) so they pass through runs.
        """
        bound: set = set(solutions[0].keys()) if solutions else set()
        # A representative incoming binding: bound variables whose value it
        # carries can be estimated against the real indexes instead of being
        # discounted heuristically.
        representative: Binding = solutions[0] if solutions else {}
        graph_name = graph if graph is not None and not isinstance(graph, Var) else None
        reordered: List[Any] = []
        run: List[TriplePattern] = []

        def flush_run() -> None:
            nonlocal run
            remaining = list(run)
            while remaining:
                best = min(
                    range(len(remaining)),
                    key=lambda k: self._pattern_cost(
                        remaining[k], bound, representative, graph_name
                    ),
                )
                pattern = remaining.pop(best)
                reordered.append(pattern)
                bound.update(self._pattern_vars(pattern))
            run = []

        for element in elements:
            if isinstance(element, TriplePattern):
                run.append(element)
            elif isinstance(element, FilterClause):
                reordered.append(element)
            else:
                flush_run()
                reordered.append(element)
                if isinstance(element, BindClause):
                    bound.add(str(element.variable))
        flush_run()
        return reordered

    #: Fallback selectivity discount per bound-but-value-unknown term, used
    #: only when the store has no cardinality statistics for the predicate.
    _UNKNOWN_BOUND_DISCOUNT = 8.0

    def _pattern_cost(
        self,
        pattern: TriplePattern,
        bound: set,
        representative: Binding,
        graph_name: Optional[Any],
    ) -> Tuple[int, float]:
        """``(unbound variable count, match estimate)`` — lower is cheaper.

        Constant terms — and bound variables whose value the representative
        binding carries — are estimated against the real index sizes.  A term
        that will be bound at evaluation time but whose value is unknown yet
        (it is bound by an earlier pattern in the plan) still restricts
        matches; when the predicate is known its live cardinality statistics
        give the real expected fan-out (``count / distinct_subjects`` for a
        bound subject, ``count / distinct_objects`` for a bound object),
        falling back to a fixed discount otherwise.
        """
        free = 0
        quoted_unknown_bound = 0
        unknown_positions: List[str] = []
        lookup: List[Any] = []
        for position, term in zip(
            ("subject", "predicate", "object"),
            (pattern.subject, pattern.predicate, pattern.object),
        ):
            if isinstance(term, Var):
                name = str(term)
                if name in representative:
                    lookup.append(representative[name])
                elif name in bound:
                    unknown_positions.append(position)
                    lookup.append(None)
                else:
                    free += 1
                    lookup.append(None)
            elif isinstance(term, QuotedPattern):
                quoted_vars = self._quoted_vars(term)
                unresolved = [name for name in quoted_vars if name not in representative]
                free += sum(1 for name in unresolved if name not in bound)
                quoted_unknown_bound += sum(1 for name in unresolved if name in bound)
                lookup.append(self._resolve_quoted(term, representative) if not unresolved else None)
            else:
                lookup.append(term)
        estimate: float = self._base_estimate(pattern, lookup, representative, graph_name)
        statistics = (
            self.store.predicate_statistics(lookup[1], graph_name)
            if unknown_positions and lookup[1] is not None
            else None
        )
        for position in unknown_positions:
            divisor = self._UNKNOWN_BOUND_DISCOUNT
            if statistics and statistics["count"] > 0:
                distinct = statistics[
                    "distinct_subjects" if position == "subject" else "distinct_objects"
                ]
                divisor = max(1.0, float(distinct))
            estimate /= divisor
        estimate /= self._UNKNOWN_BOUND_DISCOUNT**quoted_unknown_bound
        return (free, estimate)

    def _base_estimate(
        self,
        pattern: TriplePattern,
        lookup: List[Any],
        representative: Binding,
        graph_name: Optional[Any],
    ) -> float:
        """Index-size estimate for the resolvable part of a pattern."""
        if lookup[0] is None and isinstance(pattern.subject, QuotedPattern):
            parts = self._quoted_lookup_parts(pattern.subject, representative)
            if parts is not None:
                return float(
                    self.store.estimate_quoted_matches(
                        parts[0], parts[2], lookup[1], lookup[2], graph_name
                    )
                )
        return float(
            self.store.estimate_matches(lookup[0], lookup[1], lookup[2], graph_name)
        )

    @classmethod
    def _pattern_vars(cls, pattern: TriplePattern) -> set:
        names: set = set()
        for term in (pattern.subject, pattern.predicate, pattern.object):
            if isinstance(term, Var):
                names.add(str(term))
            elif isinstance(term, QuotedPattern):
                names.update(cls._quoted_vars(term))
        return names

    @classmethod
    def _quoted_vars(cls, pattern: QuotedPattern) -> set:
        names: set = set()
        for part in (pattern.subject, pattern.predicate, pattern.object):
            if isinstance(part, Var):
                names.add(str(part))
            elif isinstance(part, QuotedPattern):
                names.update(cls._quoted_vars(part))
        return names

    def _left_join(
        self, group: GroupPattern, solutions: List[Binding], graph: Optional[Any]
    ) -> List[Binding]:
        results: List[Binding] = []
        for solution in solutions:
            extended = self._evaluate_group(group, [solution], graph)
            if extended:
                results.extend(extended)
            else:
                results.append(solution)
        return results

    def _evaluate_named_graph(
        self, element: NamedGraphPattern, solutions: List[Binding]
    ) -> List[Binding]:
        results: List[Binding] = []
        if isinstance(element.graph, Var):
            for graph_name in self.store.graphs():
                seeded = []
                for solution in solutions:
                    binding = _term_matches(element.graph, graph_name, solution)
                    if binding is not None:
                        seeded.append(binding)
                if seeded:
                    results.extend(self._evaluate_group(element.group, seeded, graph_name))
            return results
        return self._evaluate_group(element.group, solutions, element.graph)

    @staticmethod
    def _resolve(term: Any, binding: Binding) -> Any:
        if isinstance(term, Var):
            return binding.get(str(term), term)
        return term

    # ----------------------------------------------------------- expressions
    def _evaluate_expression(self, expression: Expression, binding: Binding) -> Any:
        if isinstance(expression, VarExpr):
            return _to_python(binding.get(str(expression.variable)))
        if isinstance(expression, ConstExpr):
            return _to_python(expression.value)
        if isinstance(expression, Comparison):
            left = self._evaluate_expression(expression.left, binding)
            right = self._evaluate_expression(expression.right, binding)
            return self._compare(expression.operator, left, right)
        if isinstance(expression, BooleanExpr):
            left = self._truth(self._evaluate_expression(expression.left, binding))
            if expression.operator == "&&":
                return left and self._truth(self._evaluate_expression(expression.right, binding))
            return left or self._truth(self._evaluate_expression(expression.right, binding))
        if isinstance(expression, NotExpr):
            return not self._truth(self._evaluate_expression(expression.operand, binding))
        if isinstance(expression, FunctionCall):
            return self._evaluate_function(expression, binding)
        raise TypeError(f"unexpected expression {expression!r}")

    def _evaluate_function(self, call: FunctionCall, binding: Binding) -> Any:
        name = call.name
        if name == "bound":
            argument = call.arguments[0]
            if isinstance(argument, VarExpr):
                return binding.get(str(argument.variable)) is not None
            return True
        arguments = [self._evaluate_expression(a, binding) for a in call.arguments]
        if name == "regex":
            flags = re.IGNORECASE if len(arguments) > 2 and "i" in str(arguments[2]) else 0
            return bool(re.search(str(arguments[1]), str(arguments[0] or ""), flags))
        if name == "contains":
            return str(arguments[1]).lower() in str(arguments[0] or "").lower()
        if name == "strstarts":
            return str(arguments[0] or "").startswith(str(arguments[1]))
        if name == "strends":
            return str(arguments[0] or "").endswith(str(arguments[1]))
        if name == "str":
            return str(arguments[0]) if arguments[0] is not None else ""
        if name == "lcase":
            return str(arguments[0] or "").lower()
        if name == "ucase":
            return str(arguments[0] or "").upper()
        if name == "strlen":
            return len(str(arguments[0] or ""))
        if name == "xsd" or name == "datatype":  # pragma: no cover - rarely used
            return arguments[0]
        raise ValueError(f"unsupported SPARQL function {name!r}")

    @staticmethod
    def _compare(operator: str, left: Any, right: Any) -> bool:
        if left is None or right is None:
            return False
        if isinstance(left, bool) or isinstance(right, bool):
            left_cmp, right_cmp = bool(left), bool(right)
        elif isinstance(left, (int, float)) and isinstance(right, (int, float)):
            left_cmp, right_cmp = float(left), float(right)
        else:
            left_cmp, right_cmp = str(left), str(right)
        if operator == "=":
            return left_cmp == right_cmp
        if operator == "!=":
            return left_cmp != right_cmp
        if operator == "<":
            return left_cmp < right_cmp
        if operator == "<=":
            return left_cmp <= right_cmp
        if operator == ">":
            return left_cmp > right_cmp
        if operator == ">=":
            return left_cmp >= right_cmp
        raise ValueError(f"unknown comparison operator {operator!r}")

    @staticmethod
    def _truth(value: Any) -> bool:
        if isinstance(value, bool):
            return value
        return bool(value)

    # ------------------------------------------------------------ projection
    def _result_variables(self, query: SelectQuery, rows: List[Binding]) -> List[str]:
        if query.is_select_star():
            seen: List[str] = []
            for row in rows:
                for key in row:
                    if key not in seen:
                        seen.append(key)
            return seen
        names: List[str] = []
        for item in query.variables:
            if isinstance(item, Aggregate):
                names.append(str(item.alias))
            else:
                names.append(str(item))
        return names

    def _project(
        self, query: SelectQuery, rows: List[Binding], variables: List[str]
    ) -> List[Dict[str, Any]]:
        projected: List[Dict[str, Any]] = []
        for row in rows:
            projected.append({name: _to_python(row.get(name)) for name in variables})
        return projected

    @staticmethod
    def _distinct(rows: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        seen = set()
        unique: List[Dict[str, Any]] = []
        for row in rows:
            key = tuple(sorted((k, str(v)) for k, v in row.items()))
            if key not in seen:
                seen.add(key)
                unique.append(row)
        return unique

    @staticmethod
    def _order(query: SelectQuery, rows: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        for variable, ascending in reversed(query.order_by):
            name = str(variable)

            def sort_key(row, _name=name):
                value = _to_python(row.get(_name))
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    return (0, value, "")
                return (1, 0, str(value))

            rows = sorted(rows, key=sort_key, reverse=not ascending)
        return rows

    # ------------------------------------------------------------ aggregates
    def _aggregate(self, query: SelectQuery, solutions: List[Binding]) -> List[Dict[str, Any]]:
        groups: Dict[Tuple, List[Binding]] = {}
        for solution in solutions:
            key = tuple(str(_to_python(solution.get(str(v)))) for v in query.group_by)
            groups.setdefault(key, []).append(solution)
        if not query.group_by and not groups:
            groups[()] = []
        rows: List[Dict[str, Any]] = []
        for key, members in groups.items():
            row: Dict[str, Any] = {}
            for variable, value in zip(query.group_by, key):
                representative = members[0].get(str(variable)) if members else value
                row[str(variable)] = _to_python(representative)
            for item in query.variables:
                if isinstance(item, Aggregate):
                    row[str(item.alias)] = self._compute_aggregate(item, members)
                elif str(item) not in row:
                    row[str(item)] = _to_python(members[0].get(str(item))) if members else None
            rows.append(row)
        return rows

    @staticmethod
    def _compute_aggregate(aggregate: Aggregate, members: List[Binding]) -> Any:
        if aggregate.argument is None:
            values: Iterable[Any] = [1] * len(members)
        else:
            values = [
                _to_python(member.get(str(aggregate.argument)))
                for member in members
                if member.get(str(aggregate.argument)) is not None
            ]
        values = list(values)
        if aggregate.distinct:
            seen = set()
            unique = []
            for value in values:
                key = str(value)
                if key not in seen:
                    seen.add(key)
                    unique.append(value)
            values = unique
        if aggregate.function == "count":
            return len(values)
        if not values:
            return None
        if aggregate.function == "sum":
            return sum(float(v) for v in values)
        if aggregate.function == "avg":
            return sum(float(v) for v in values) / len(values)
        if aggregate.function == "min":
            return min(values)
        if aggregate.function == "max":
            return max(values)
        if aggregate.function == "sample":
            return values[0]
        raise ValueError(f"unknown aggregate {aggregate.function!r}")
