"""Evaluation of parsed SPARQL queries over a :class:`~repro.rdf.QuadStore`.

Three executors share one planner:

* The **vectorized executor** (the default) runs the columnar hash-join
  pipeline and collates results in numpy id space: GROUP BY / ORDER BY /
  DISTINCT / SELECT ``*`` work on int64 id columns
  (:class:`~repro.sparql.columnar.ColumnRelation`) via ``np.unique`` /
  ``argsort``, decoding only the distinct ids a query actually reads.
  Single-variable FILTER predicates are additionally *pushed below joins*:
  each predicate evaluates once per distinct id against a memoized verdict
  table, shrinking intermediates before they join.  Results stay
  byte-identical to the seed path — grouping and sorting happen in id space
  with a value-collision fallback (distinct ids decoding to equal typed
  values collate together, mirroring the DISTINCT guard).
* The **batched executor** (``vectorized=False``) is the same hash-join
  pipeline with the previous tuple-at-a-time collation tail: solutions live
  in a columnar :class:`~repro.sparql.columnar.Relation` (tuples of integer
  term ids over a fixed variable-slot layout) and each pattern is hash-
  joined into the accumulated relation on the shared variables, with one
  memoized index probe per distinct key.
* The **tuple executor** (``batched=False``) is the binding-at-a-time loop:
  one store lookup per solution, one dict copy per matched variable.  It
  remains as the reference implementation the other executors are tested
  and benchmarked against.

``optimize=False`` bypasses all of them and evaluates patterns in written
order with unmemoized scans — the seed semantics escape hatch.
"""

from __future__ import annotations

import gc
import re
from itertools import compress
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.rdf.namespace import DEFAULT_PREFIXES
from repro.rdf.store import QuadStore
from repro.rdf.terms import Literal, QuotedTriple, URIRef
from repro.sparql.columnar import (
    UNBOUND,
    UNBOUND_ID,
    BoundedMemo,
    ColumnRelation,
    QueryEncoder,
    Relation,
    column_ids,
    row_codes,
)
from repro.sparql.algebra import (
    Aggregate,
    BindClause,
    BooleanExpr,
    Comparison,
    ConstExpr,
    Expression,
    FilterClause,
    FunctionCall,
    GroupPattern,
    NamedGraphPattern,
    NotExpr,
    OptionalPattern,
    QuotedPattern,
    SelectQuery,
    TriplePattern,
    UnionPattern,
    Var,
    VarExpr,
    expression_variables,
)
from repro.sparql.parser import parse_query

Binding = Dict[str, Any]

#: Group key standing in for float NaN values.  ``nan != nan``, so keying a
#: dict directly on the value would split equal-looking NaN cells into one
#: group per *object*; a shared sentinel keeps every NaN in one group in both
#: the tuple and the vectorized aggregation paths.
_NAN_GROUP_KEY = object()


def _group_key(value: Any) -> Any:
    """The GROUP BY key for one typed value.

    Typed values key directly (so ``Literal(5)`` and ``Literal("5")`` form
    separate groups, while ``5`` and ``5.0`` — equal under Python's value
    equality — collate together), with NaN canonicalized to a shared
    sentinel.
    """
    if isinstance(value, float) and value != value:
        return _NAN_GROUP_KEY
    return value


class SelectResult:
    """The result of a SELECT query: variable names plus rows of bindings."""

    def __init__(self, variables: List[str], rows: List[Dict[str, Any]]):
        self.variables = variables
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column(self, variable: str) -> List[Any]:
        """All values bound to ``variable`` across rows (``None`` when unbound)."""
        return [row.get(variable) for row in self.rows]

    def to_table(self, name: str = "query_result"):
        """Convert to a :class:`repro.tabular.Table` (the paper returns DataFrames)."""
        from repro.tabular import Column, Table

        table = Table(name)
        for variable in self.variables:
            table.add_column(Column(variable, [row.get(variable) for row in self.rows]))
        return table

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"SelectResult(variables={self.variables}, rows={len(self.rows)})"


def _to_python(value: Any) -> Any:
    if isinstance(value, Literal):
        return value.to_python()
    return value


def _term_matches(pattern_term: Any, value: Any, binding: Binding) -> Optional[Binding]:
    """Try to match one pattern term against a concrete value, extending the binding."""
    if isinstance(pattern_term, Var):
        bound = binding.get(str(pattern_term))
        if bound is None:
            extended = dict(binding)
            extended[str(pattern_term)] = value
            return extended
        return binding if bound == value else None
    if isinstance(pattern_term, QuotedPattern):
        if not isinstance(value, QuotedTriple):
            return None
        current: Optional[Binding] = binding
        for part, concrete in (
            (pattern_term.subject, value.subject),
            (pattern_term.predicate, value.predicate),
            (pattern_term.object, value.object),
        ):
            current = _term_matches(part, concrete, current)
            if current is None:
                return None
        return current
    return binding if pattern_term == value else None


class SPARQLEngine:
    """Evaluates SELECT queries against a quad store.

    Evaluation is index-aware: inside each group pattern, triple patterns are
    greedily reordered by estimated selectivity (cheapest first, given the
    variables bound so far) before being joined, every bound term — including
    fully-resolved RDF-star quoted triples — is pushed down into the store's
    hash-index lookups, and identical lookups across solution bindings are
    answered from a per-pattern memo instead of re-scanning.  ``optimize=False``
    evaluates patterns in written order (the seed behaviour), which the
    benchmarks use as the comparison baseline.
    """

    #: Default capacity of the per-pattern lookup memos (distinct join keys
    #: cached per pattern; least-recently-used entries evict beyond this).
    DEFAULT_MEMO_CAPACITY = 4096

    #: Scan-vs-probe crossover: one per-key index probe costs roughly this
    #: many single-candidate scan steps, so scan mode is picked whenever the
    #: constant-only candidate set is within this factor of the build side.
    _SCAN_FACTOR = 4

    def __init__(
        self,
        store: QuadStore,
        prefixes=None,
        optimize: bool = True,
        batched: bool = True,
        vectorized: bool = True,
        memo_capacity: Optional[int] = DEFAULT_MEMO_CAPACITY,
    ):
        self.store = store
        self.prefixes = prefixes or DEFAULT_PREFIXES
        self.optimize = optimize
        #: Use the columnar hash-join executor (only meaningful when
        #: ``optimize`` is on; ``optimize=False`` always runs the seed loop).
        self.batched = batched
        #: Collate in numpy id space and push single-variable FILTERs below
        #: joins (only meaningful when ``batched`` is on).
        self.vectorized = vectorized
        #: Bound on each per-pattern lookup memo (``None`` = unbounded).
        self.memo_capacity = memo_capacity
        #: Cumulative pattern-lookup memo counters across queries.
        self.memo_hits = 0
        self.memo_misses = 0
        self.memo_evictions = 0
        #: Cumulative FILTER verdict-table counters across queries (one
        #: verdict per distinct id per pushed-down / single-variable filter).
        self.filter_memo_hits = 0
        self.filter_memo_misses = 0
        self.filter_memo_evictions = 0
        #: Per-query verdict tables, keyed by filter-clause identity.
        self._filter_memos: Dict[int, BoundedMemo] = {}
        #: Monotonic suffix for OPTIONAL provenance columns (never collides
        #: with parsed variables: ``#`` cannot appear in a SPARQL var name).
        self._provenance_counter = 0

    def memo_counters(self) -> Dict[str, int]:
        """Cumulative hit/miss/eviction counts of the pattern-lookup memos."""
        return {
            "hits": self.memo_hits,
            "misses": self.memo_misses,
            "evictions": self.memo_evictions,
        }

    def filter_memo_counters(self) -> Dict[str, int]:
        """Cumulative hit/miss/eviction counts of the FILTER verdict tables."""
        return {
            "hits": self.filter_memo_hits,
            "misses": self.filter_memo_misses,
            "evictions": self.filter_memo_evictions,
        }

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Snapshot of the engine's cumulative cache counters.

        ``pattern_memo`` counts the per-pattern join-lookup memos;
        ``filter_memo`` counts the per-filter verdict tables the vectorized
        executor uses for FILTER pushdown (one predicate evaluation per
        distinct id).
        """
        return {
            "pattern_memo": self.memo_counters(),
            "filter_memo": self.filter_memo_counters(),
        }

    def _absorb_memo(self, memo: BoundedMemo) -> None:
        self.memo_hits += memo.hits
        self.memo_misses += memo.misses
        self.memo_evictions += memo.evictions

    def _absorb_filter_memos(self) -> None:
        for memo in self._filter_memos.values():
            self.filter_memo_hits += memo.hits
            self.filter_memo_misses += memo.misses
            self.filter_memo_evictions += memo.evictions
        self._filter_memos = {}

    # ------------------------------------------------------------------ API
    def select(self, query: str) -> SelectResult:
        """Parse and evaluate a SELECT query."""
        parsed = parse_query(query, self.prefixes)
        return self.evaluate(parsed)

    def explain(self, query) -> List[str]:
        """The planned evaluation order of the query's top-level group.

        Accepts a query string or a parsed :class:`SelectQuery` and returns
        one human-readable line per group element, in the order the planner
        would evaluate them.  Exposes the effect of the cardinality
        statistics on join ordering for tests and benchmarks.
        """
        parsed = parse_query(query, self.prefixes) if isinstance(query, str) else query
        elements = (
            self._reorder_elements(parsed.where.elements, [dict()], graph=None)
            if self.optimize
            else parsed.where.elements
        )
        lines: List[str] = []
        for element in elements:
            line = self._describe_element(element)
            if self.vectorized and isinstance(element, FilterClause):
                variable = self._single_filter_var(element)
                if variable is not None:
                    line = f"FilterClause [pushdown ?{variable}]"
            lines.append(line)
        return lines

    @classmethod
    def _describe_element(cls, element: Any) -> str:
        if isinstance(element, TriplePattern):
            return " ".join(
                cls._describe_term(term)
                for term in (element.subject, element.predicate, element.object)
            )
        return type(element).__name__

    @classmethod
    def _describe_term(cls, term: Any) -> str:
        if isinstance(term, Var):
            return f"?{term}"
        if isinstance(term, QuotedPattern):
            inner = " ".join(
                cls._describe_term(part) for part in (term.subject, term.predicate, term.object)
            )
            return f"<< {inner} >>"
        if isinstance(term, URIRef):
            return term.n3()
        return str(term)

    def evaluate(self, query: SelectQuery) -> SelectResult:
        """Evaluate an already-parsed query.

        Evaluation runs inside one store read view, so the result reflects a
        single committed state even while a governor service is applying
        write batches on another thread — a query never observes a
        half-applied ingestion batch.  The store's residency cap (if any) is
        also pinned for the duration: every evaluation path scans graphs
        repeatedly, and pinning makes a capped backend load each missing
        shard at most once per query.
        """
        with self.store.read_view():
            self.store.pin_residency()
            try:
                return self._evaluate(query)
            finally:
                self.store.unpin_residency()

    def _evaluate(self, query: SelectQuery) -> SelectResult:
        if self.optimize and self.batched:
            # The columnar executor's intermediates are acyclic (tuples of
            # ints inside plain lists), so reference counting reclaims them
            # fully; pausing the cyclic collector stops it re-scanning the
            # growing row lists on every allocation spike — a large, pure
            # win on 100k-row materializations.
            gc_was_enabled = gc.isenabled()
            if gc_was_enabled:
                gc.disable()
            try:
                encoder = QueryEncoder(self.store.dictionary)
                self._filter_memos = {}
                relation = self._evaluate_group_rel(
                    query.where, Relation.unit(), None, encoder
                )
                if self.vectorized:
                    # Vectorized collation: GROUP BY / ORDER BY / DISTINCT /
                    # SELECT * run on numpy id columns, decoding only the
                    # distinct ids the query reads.
                    return self._collate_vectorized(query, relation, encoder)
                if not (
                    query.has_aggregates() or query.order_by or query.is_select_star()
                ):
                    # Fused projection: decode only the selected variables,
                    # straight from the id relation — no intermediate binding
                    # dicts.  (Aggregates / ORDER BY / SELECT * may read
                    # variables beyond the projection, so they decode fully.)
                    return self._project_relation(query, relation, encoder)
                solutions = relation.to_bindings(encoder)
            finally:
                self._absorb_filter_memos()
                if gc_was_enabled:
                    gc.enable()
        else:
            solutions = self._evaluate_group(query.where, [dict()], graph=None)
        if query.has_aggregates():
            rows = self._aggregate(query, solutions)
        else:
            rows = solutions
        # ORDER BY is applied before projection (SPARQL semantics), so sort
        # keys may reference variables that are not selected.
        rows = self._order(query, rows)
        variables = self._result_variables(query, rows)
        projected = self._project(query, rows, variables)
        if query.distinct:
            projected = self._distinct(projected)
        if query.offset:
            projected = projected[query.offset :]
        if query.limit is not None:
            projected = projected[: query.limit]
        return SelectResult(variables, projected)

    def _project_relation(
        self,
        query: SelectQuery,
        relation: Relation,
        encoder: QueryEncoder,
        variables: Optional[List[str]] = None,
    ) -> SelectResult:
        """Project a result relation directly to Python-value rows.

        One decode per selected cell (memoized id -> Python value), skipping
        the intermediate term-binding dicts of the general path.  DISTINCT
        is dictionary-aware: duplicate rows are eliminated on the projected
        *id* tuples first — integer hashing, no term decoding, no string
        keys — so only the surviving distinct rows are ever decoded.  A
        value-level pass then guards the rare id-distinct / value-equal
        collisions (two interned terms projecting to the same Python value,
        e.g. ``Literal(5)`` vs ``Literal("5")``), keeping row sets identical
        to the tuple executor's.
        """
        if variables is None:
            variables = [str(item) for item in query.variables]
        slots = [relation.slot(name) for name in variables]
        id_rows: Iterable[tuple] = (
            tuple(row[slot] if slot is not None else UNBOUND for slot in slots)
            for row in relation.rows
        )
        if query.distinct:
            if self.vectorized and len(relation.rows) > 64:
                # Vectorized id-level dedup: one dense row code per projected
                # id tuple, first occurrences kept in row order.
                columns = [
                    column_ids(relation.rows, slot)
                    if slot is not None
                    else np.zeros(len(relation.rows), np.int64)
                    for slot in slots
                ]
                codes = row_codes(columns, len(relation.rows))
                _, first = np.unique(codes, return_index=True)
                rows = relation.rows
                id_rows = [
                    tuple(
                        rows[i][slot] if slot is not None else UNBOUND
                        for slot in slots
                    )
                    for i in np.sort(first).tolist()
                ]
            else:
                seen: Set[tuple] = set()
                deduplicated: List[tuple] = []
                for id_row in id_rows:
                    if id_row not in seen:
                        seen.add(id_row)
                        deduplicated.append(id_row)
                id_rows = deduplicated
        decode = encoder.decode
        #: id -> projected Python value, shared across rows.
        values: Dict[int, Any] = {}
        projected: List[Dict[str, Any]] = []
        for id_row in id_rows:
            row: Dict[str, Any] = {}
            for name, cell in zip(variables, id_row):
                if cell is None:
                    row[name] = None
                    continue
                value = values.get(cell)
                if value is None:
                    value = values[cell] = _to_python(decode(cell))
                row[name] = value
            projected.append(row)
        if query.distinct:
            projected = self._distinct(projected)
        if query.offset:
            projected = projected[query.offset :]
        if query.limit is not None:
            projected = projected[: query.limit]
        return SelectResult(variables, projected)

    # ------------------------------------------------- vectorized collation
    def _collate_vectorized(
        self, query: SelectQuery, relation: Relation, encoder: QueryEncoder
    ) -> SelectResult:
        """GROUP BY / ORDER BY / DISTINCT / projection over numpy id columns.

        Aggregation and sorting happen in id space (one decode per distinct
        id, not per row) with the value-collision fallback keeping results
        identical to the tuple path; plain projections reuse the fused
        id-relation decode.
        """
        if query.has_aggregates():
            rows = self._aggregate_rel(query, relation, encoder)
            rows = self._order(query, rows)
            variables = self._result_variables(query, rows)
            projected = self._project(query, rows, variables)
            if query.distinct:
                projected = self._distinct(projected)
            if query.offset:
                projected = projected[query.offset :]
            if query.limit is not None:
                projected = projected[: query.limit]
            return SelectResult(variables, projected)
        columns = ColumnRelation(relation)
        if query.order_by:
            columns = self._order_rel(query, columns, encoder)
        variables = (
            self._star_variables_rel(columns)
            if query.is_select_star()
            else [str(item) for item in query.variables]
        )
        return self._project_relation(query, columns.relation, encoder, variables)

    def _order_rel(
        self, query: SelectQuery, columns: ColumnRelation, encoder: QueryEncoder
    ) -> ColumnRelation:
        """ORDER BY as successive stable argsorts over id-space rank columns.

        Each sort key decodes once per *distinct id* into the seed's sort-key
        tuple; equal tuples (including value collisions across distinct ids)
        share one integer rank, so stable argsorts over ranks reproduce the
        tuple executor's ordering exactly — descending keys negate the rank,
        which under a stable sort preserves the original order of ties just
        like ``sorted(reverse=True)``.
        """
        if len(columns) <= 1:
            return columns
        order = np.arange(len(columns))
        for variable, ascending in reversed(query.order_by):
            slot = columns.slot(str(variable))
            if slot is None:
                continue  # constant (unbound) key: stable sort is a no-op
            ranks = self._column_ranks(columns.column(slot), encoder)
            key = ranks if ascending else -ranks
            order = order[np.argsort(key[order], kind="stable")]
        return columns.take(order)

    @staticmethod
    def _rank_key(value: Any) -> tuple:
        """The seed executor's ORDER BY sort key for one decoded value."""
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return (0, value, "")
        return (1, 0, str(value))

    def _column_ranks(self, column: np.ndarray, encoder: QueryEncoder) -> np.ndarray:
        """Dense sort ranks per row: equal sort-key tuples share one rank."""
        distinct, inverse = np.unique(column, return_inverse=True)
        decode = encoder.decode
        keys = [
            self._rank_key(
                None if term_id == UNBOUND_ID else _to_python(decode(term_id))
            )
            for term_id in distinct.tolist()
        ]
        by_key = sorted(range(len(keys)), key=keys.__getitem__)
        ranks = np.empty(len(keys), np.int64)
        rank = -1
        previous: Optional[tuple] = None
        for position in by_key:
            key = keys[position]
            if previous is None or key != previous:
                rank += 1
                previous = key
            ranks[position] = rank
        return ranks[inverse]

    def _star_variables_rel(self, columns: ColumnRelation) -> List[str]:
        """SELECT * variable order: first row each variable is bound in, then
        slot order — matching the seed's first-occurrence scan over binding
        dicts without decoding anything."""
        entries: List[Tuple[int, int, str]] = []
        for slot, name in enumerate(columns.variables):
            if name.startswith("#"):
                continue
            column = columns.column(slot)
            bound = column != UNBOUND_ID
            if not bound.any():
                continue
            entries.append((int(np.argmax(bound)), slot, name))
        entries.sort()
        return [name for _, _, name in entries]

    def _aggregate_rel(
        self, query: SelectQuery, relation: Relation, encoder: QueryEncoder
    ) -> List[Dict[str, Any]]:
        """GROUP BY + aggregates in id space.

        Group keys combine per-column canonical codes: each distinct id
        decodes once, and distinct ids whose typed values are equal (the
        ``5`` vs ``5.0`` collision) share one code, so grouping matches the
        tuple path's typed-value keys.  Groups emit in first-occurrence row
        order with members in row order, and SUM / AVG reduce with the same
        left-to-right Python float addition — results are byte-identical to
        :meth:`_aggregate`.
        """
        rows = relation.rows
        count = len(rows)
        if count == 0:
            if query.group_by:
                return []
            row: Dict[str, Any] = {}
            for item in query.variables:
                if isinstance(item, Aggregate):
                    row[str(item.alias)] = self._compute_aggregate(item, [])
                else:
                    row[str(item)] = None
            return [row]

        columns = ColumnRelation(relation)
        value_cache: Dict[int, Any] = {}
        decode = encoder.decode

        def decode_value(term_id: int) -> Any:
            if term_id in value_cache:
                return value_cache[term_id]
            value = value_cache[term_id] = _to_python(decode(term_id))
            return value

        group_columns: List[np.ndarray] = []
        for variable in query.group_by:
            slot = relation.slot(str(variable))
            if slot is None:
                group_columns.append(np.zeros(count, np.int64))
                continue
            distinct, inverse = np.unique(columns.column(slot), return_inverse=True)
            canonical: Dict[Any, int] = {}
            codes = np.empty(len(distinct), np.int64)
            for position, term_id in enumerate(distinct.tolist()):
                value = None if term_id == UNBOUND_ID else decode_value(term_id)
                codes[position] = canonical.setdefault(_group_key(value), len(canonical))
            group_columns.append(codes[inverse])
        combined = row_codes(group_columns, count)

        _, first_index, inverse_codes, counts = np.unique(
            combined, return_index=True, return_inverse=True, return_counts=True
        )
        member_rows = np.split(
            np.argsort(inverse_codes, kind="stable"), np.cumsum(counts)[:-1]
        )
        group_order = np.argsort(first_index, kind="stable")

        # Aggregate argument columns and their decoded id -> value maps,
        # built once per referenced variable.
        argument_columns: Dict[str, Optional[Tuple[np.ndarray, Dict[int, Any]]]] = {}
        for item in query.variables:
            if not isinstance(item, Aggregate) or item.argument is None:
                continue
            name = str(item.argument)
            if name in argument_columns:
                continue
            slot = relation.slot(name)
            if slot is None:
                argument_columns[name] = None
                continue
            column = columns.column(slot)
            decoded = {
                term_id: decode_value(term_id)
                for term_id in np.unique(column).tolist()
                if term_id != UNBOUND_ID
            }
            argument_columns[name] = (column, decoded)

        group_names = [str(variable) for variable in query.group_by]
        results: List[Dict[str, Any]] = []
        for group in group_order.tolist():
            members = member_rows[group]
            first_row = rows[int(first_index[group])]
            row = {}
            for name in group_names:
                slot = relation.slot(name)
                cell = first_row[slot] if slot is not None else None
                row[name] = decode_value(cell) if cell is not None else None
            for item in query.variables:
                if isinstance(item, Aggregate):
                    if item.argument is None:
                        values: List[Any] = [1] * len(members)
                    else:
                        entry = argument_columns[str(item.argument)]
                        if entry is None:
                            values = []
                        else:
                            column, decoded = entry
                            values = [
                                decoded[term_id]
                                for term_id in column[members].tolist()
                                if term_id != UNBOUND_ID
                            ]
                    row[str(item.alias)] = self._aggregate_values(item, values)
                elif str(item) not in row:
                    slot = relation.slot(str(item))
                    cell = first_row[slot] if slot is not None else None
                    row[str(item)] = decode_value(cell) if cell is not None else None
            results.append(row)
        return results

    # -------------------------------------------------------- filter pushdown
    @staticmethod
    def _single_filter_var(filter_clause: FilterClause) -> Optional[str]:
        """The filter's only variable, when it reads exactly one."""
        names = expression_variables(filter_clause.expression)
        if len(names) == 1:
            return next(iter(names))
        return None

    def _filter_memo(self, filter_clause: FilterClause) -> BoundedMemo:
        memo = self._filter_memos.get(id(filter_clause))
        if memo is None:
            memo = self._filter_memos[id(filter_clause)] = BoundedMemo(
                self.memo_capacity
            )
        return memo

    def _push_filter(
        self,
        filter_clause: FilterClause,
        variable: str,
        relation: Relation,
        encoder: QueryEncoder,
        final: bool = False,
    ) -> Relation:
        """Apply a single-variable FILTER via a memoized id verdict table.

        The predicate evaluates once per *distinct id* (memoized across the
        query in a :class:`BoundedMemo`), then the verdicts broadcast over
        the rows with one numpy gather.  Mid-group (``final=False``) rows
        with an unbound cell always survive — a later pattern may still bind
        the shared variable (OPTIONAL padding re-binds), and the group-end
        pass re-checks them; at group end (``final=True``) unbound cells are
        judged like the seed does, with the variable absent from the
        binding.
        """
        rows = relation.rows
        if not rows:
            return relation
        slot = relation.slot(variable)
        if slot is None:
            if not final:
                return relation
            keep_all = self._truth(
                self._evaluate_expression(filter_clause.expression, {})
            )
            return relation if keep_all else Relation(relation.variables, [])
        memo = self._filter_memo(filter_clause)
        missing = memo.MISSING
        distinct, inverse = np.unique(column_ids(rows, slot), return_inverse=True)
        verdicts = np.empty(len(distinct), bool)
        expression = filter_clause.expression
        for position, term_id in enumerate(distinct.tolist()):
            if term_id == UNBOUND_ID:
                verdicts[position] = (
                    self._truth(self._evaluate_expression(expression, {}))
                    if final
                    else True
                )
                continue
            verdict = memo.get(term_id)
            if verdict is missing:
                verdict = self._truth(
                    self._evaluate_expression(
                        expression, {variable: encoder.decode(term_id)}
                    )
                )
                memo.put(term_id, verdict)
            verdicts[position] = verdict
        keep = verdicts[inverse]
        if keep.all():
            return relation
        return Relation(relation.variables, list(compress(rows, keep.tolist())))

    # ------------------------------------------------------------ evaluation
    def _evaluate_group(
        self, group: GroupPattern, solutions: List[Binding], graph: Optional[Any]
    ) -> List[Binding]:
        filters: List[FilterClause] = []
        current = solutions
        elements = (
            self._reorder_elements(group.elements, solutions, graph)
            if self.optimize
            else group.elements
        )
        for element in elements:
            if isinstance(element, TriplePattern):
                current = self._join_pattern(element, current, graph)
            elif isinstance(element, FilterClause):
                filters.append(element)
            elif isinstance(element, OptionalPattern):
                current = self._left_join(element.group, current, graph)
            elif isinstance(element, UnionPattern):
                merged: List[Binding] = []
                for branch in element.branches:
                    merged.extend(self._evaluate_group(branch, current, graph))
                current = merged
            elif isinstance(element, NamedGraphPattern):
                current = self._evaluate_named_graph(element, current)
            elif isinstance(element, BindClause):
                bound: List[Binding] = []
                for solution in current:
                    extended = dict(solution)
                    extended[str(element.variable)] = self._evaluate_expression(
                        element.expression, solution
                    )
                    bound.append(extended)
                current = bound
            else:  # pragma: no cover - parser only produces the above
                raise TypeError(f"unexpected group element {element!r}")
        for filter_clause in filters:
            current = [
                solution
                for solution in current
                if self._truth(self._evaluate_expression(filter_clause.expression, solution))
            ]
        return current

    def _join_pattern(
        self, pattern: TriplePattern, solutions: List[Binding], graph: Optional[Any]
    ) -> List[Binding]:
        results: List[Binding] = []
        graph_name = None
        if graph is not None and not isinstance(graph, Var):
            graph_name = graph
        # Solutions that resolve the pattern to the same lookup key hit the
        # same index entries; memoize the matches so repeated (or fully
        # unbound cross-join) lookups never re-scan the store.  Both the memo
        # and the quoted-triple pushdown are part of the optimizer, so
        # ``optimize=False`` keeps the seed per-binding scans.  The memo is
        # capacity-bounded: a pattern joined against a huge solution set with
        # mostly distinct keys evicts instead of holding every result alive.
        memo = BoundedMemo(self.memo_capacity)
        missing = memo.MISSING
        for solution in solutions:
            subject = self._resolve(pattern.subject, solution)
            predicate = self._resolve(pattern.predicate, solution)
            obj = self._resolve(pattern.object, solution)
            lookup_predicate = predicate if not isinstance(predicate, Var) else None
            if self.optimize:
                lookup_subject = self._lookup_key(subject, solution)
                lookup_object = self._lookup_key(obj, solution)
                quoted_parts = None
                if lookup_subject is None and isinstance(subject, QuotedPattern):
                    # Partial RDF-star pushdown: with at least one inner term
                    # bound, the store's partial quoted-triple index answers
                    # without scanning every annotation.
                    quoted_parts = self._quoted_lookup_parts(subject, solution)
                if quoted_parts is not None:
                    memo_key = ("<<>>",) + quoted_parts + (lookup_predicate, lookup_object)
                    matches = memo.get(memo_key)
                    if matches is missing:
                        matches = list(
                            self.store.match_quoted(
                                quoted_parts[0],
                                quoted_parts[1],
                                quoted_parts[2],
                                lookup_predicate,
                                lookup_object,
                                graph_name,
                            )
                        )
                        memo.put(memo_key, matches)
                else:
                    memo_key = (lookup_subject, lookup_predicate, lookup_object)
                    matches = memo.get(memo_key)
                    if matches is missing:
                        matches = list(
                            self.store.match(
                                lookup_subject, lookup_predicate, lookup_object, graph_name
                            )
                        )
                        memo.put(memo_key, matches)
            else:
                lookup_subject = subject if not isinstance(subject, (Var, QuotedPattern)) else None
                lookup_object = obj if not isinstance(obj, (Var, QuotedPattern)) else None
                matches = self.store.match(
                    lookup_subject, lookup_predicate, lookup_object, graph_name
                )
            for triple, triple_graph in matches:
                binding: Optional[Binding] = solution
                if graph is not None and isinstance(graph, Var):
                    binding = _term_matches(graph, triple_graph, binding)
                    if binding is None:
                        continue
                for pattern_term, value in (
                    (subject, triple.subject),
                    (predicate, triple.predicate),
                    (obj, triple.object),
                ):
                    binding = _term_matches(pattern_term, value, binding)
                    if binding is None:
                        break
                if binding is not None:
                    results.append(binding)
        self._absorb_memo(memo)
        return results

    @classmethod
    def _lookup_key(cls, term: Any, binding: Binding) -> Optional[Any]:
        """The index lookup key for a resolved term (``None`` = wildcard)."""
        if isinstance(term, Var):
            return None
        if isinstance(term, QuotedPattern):
            return cls._resolve_quoted(term, binding)
        return term

    @classmethod
    def _quoted_lookup_parts(
        cls, pattern: QuotedPattern, binding: Binding
    ) -> Optional[Tuple[Any, Any, Any]]:
        """Concrete inner terms of a quoted pattern (``None`` = wildcard).

        Returns ``(inner_subject, inner_predicate, inner_object)`` with each
        part resolved against the binding where possible, or ``None`` when no
        part is concrete (a fully unbound quoted pattern gains nothing from
        the partial index).
        """
        parts: List[Any] = []
        for part in (pattern.subject, pattern.predicate, pattern.object):
            value = part
            if isinstance(part, Var):
                value = binding.get(str(part))
            if isinstance(value, QuotedPattern):
                value = cls._resolve_quoted(value, binding)
            parts.append(value)
        if all(part is None for part in parts):
            return None
        return tuple(parts)

    @classmethod
    def _resolve_quoted(cls, pattern: QuotedPattern, binding: Binding) -> Optional[QuotedTriple]:
        """A concrete :class:`QuotedTriple` if every part is bound, else ``None``.

        Fully-bound RDF-star subjects (the common "read the certainty of this
        edge" access path) then hit the subject hash index directly instead of
        scanning the graph.
        """
        parts = []
        for part in (pattern.subject, pattern.predicate, pattern.object):
            value = part
            if isinstance(part, Var):
                value = binding.get(str(part))
                if value is None:
                    return None
            if isinstance(value, QuotedPattern):
                value = cls._resolve_quoted(value, binding)
                if value is None:
                    return None
            parts.append(value)
        return QuotedTriple(*parts)

    # ------------------------------------------------- batched (columnar) path
    def _evaluate_group_rel(
        self, group: GroupPattern, relation: Relation, graph: Optional[Any], encoder: QueryEncoder
    ) -> Relation:
        """Evaluate one group pattern set-at-a-time over a columnar relation.

        Mirrors :meth:`_evaluate_group` element by element (filters deferred
        to the end of the group, same barrier semantics for OPTIONAL / UNION
        / GRAPH / BIND) but keeps every intermediate solution as an id-tuple;
        terms materialize only inside FILTER / BIND expression evaluation.
        """
        if not relation.rows:
            return relation
        filters: List[FilterClause] = []
        #: Single-variable filters awaiting their variable (pushed below the
        #: join that binds it; they stay in ``filters`` too, because unbound
        #: cells can re-bind later and must be judged at group end).
        pending_push: List[Tuple[str, FilterClause]] = []
        elements = (
            self._reorder_elements(
                group.elements, [relation.decode_row(relation.rows[0], encoder)], graph
            )
            if self.optimize
            else group.elements
        )
        current = relation
        for element in elements:
            if isinstance(element, FilterClause):
                filters.append(element)
                if self.vectorized:
                    variable = self._single_filter_var(element)
                    if variable is not None:
                        if current.slot(variable) is not None:
                            current = self._push_filter(
                                element, variable, current, encoder
                            )
                        else:
                            pending_push.append((variable, element))
                continue
            if isinstance(element, TriplePattern):
                current = self._join_rel(element, current, graph, encoder)
            elif isinstance(element, OptionalPattern):
                current = self._left_join_rel(element.group, current, graph, encoder)
            elif isinstance(element, UnionPattern):
                current = Relation.concat(
                    [
                        self._evaluate_group_rel(branch, current, graph, encoder)
                        for branch in element.branches
                    ]
                )
            elif isinstance(element, NamedGraphPattern):
                current = self._named_graph_rel(element, current, encoder)
            elif isinstance(element, BindClause):
                current = self._bind_rel(element, current, encoder)
            else:  # pragma: no cover - parser only produces the above
                raise TypeError(f"unexpected group element {element!r}")
            if not current.rows:
                break
            if pending_push:
                waiting: List[Tuple[str, FilterClause]] = []
                for variable, filter_clause in pending_push:
                    if current.slot(variable) is not None:
                        current = self._push_filter(
                            filter_clause, variable, current, encoder
                        )
                    else:
                        waiting.append((variable, filter_clause))
                pending_push = waiting
                if not current.rows:
                    break
        if filters and current.rows:
            current = self._filter_rel(filters, current, encoder)
        return current

    def _join_rel(
        self, pattern: TriplePattern, relation: Relation, graph: Optional[Any], encoder: QueryEncoder
    ) -> Relation:
        """Hash-join one triple pattern into the accumulated relation.

        Build side: the relation rows, keyed by the ids of the variables
        shared with the pattern.  The probe side picks one of two compiled
        strategies by cost:

        * **scan mode** — when the pattern's constant-bound candidate set is
          no larger than the build side, scan it once into a hash table
          ``join key -> extension tuples`` and join every row with a dict
          get.  One index pass total, classic hash join.
        * **probe mode** — otherwise, one direct index lookup per *distinct*
          key (memoized, capacity-bounded), which wins when per-row bindings
          narrow candidates far below the constant-only set.

        Extensions are precomputed id tuples concatenated onto rows — no
        per-row dicts, no term decoding.  Shapes the compiler does not cover
        (repeated variables, graph variables, nested quoted patterns) fall
        back to the general per-key walk in :meth:`_probe_pattern`.
        """
        graph_var = str(graph) if isinstance(graph, Var) else None
        graph_name = graph if graph is not None and graph_var is None else None

        # Pattern variables in the seed engine's binding order: the graph
        # variable first, then subject / predicate / object (quoted-pattern
        # inner variables recurse in the same order).
        ordered_vars: List[str] = [graph_var] if graph_var is not None else []
        for term in (pattern.subject, pattern.predicate, pattern.object):
            self._collect_term_vars(term, ordered_vars)
        has_duplicates = len(ordered_vars) != len(set(ordered_vars))

        key_names: List[str] = []
        key_slots: List[int] = []
        new_vars: List[str] = []
        for name in ordered_vars:
            slot = relation.slot(name)
            if slot is not None:
                if name not in key_names:
                    key_names.append(name)
                    key_slots.append(slot)
            elif name not in new_vars:
                new_vars.append(name)

        plan = None
        if graph_var is None and not has_duplicates:
            plan = self._compile_join_plan(pattern, key_names, new_vars, graph_name, encoder)

        out_rows: List[tuple] = []
        out_variables = relation.variables + tuple(new_vars)

        if (
            plan is not None
            and key_names
            and self._scan_cost(plan) <= self._SCAN_FACTOR * len(relation.rows)
        ):
            table = self._scan_join_table(plan)
            fallback_rows: List[tuple] = []
            append = out_rows.append
            table_get = table.get
            if len(key_slots) == 1:
                only_slot = key_slots[0]
                for row in relation.rows:
                    cell = row[only_slot]
                    if cell is None:
                        fallback_rows.append(row)
                        continue
                    extensions = table_get(cell)
                    if extensions:
                        for extension in extensions:
                            append(row + extension if extension else row)
            else:
                for row in relation.rows:
                    key = tuple(row[slot] for slot in key_slots)
                    if None in key:
                        fallback_rows.append(row)
                        continue
                    extensions = table_get(key)
                    if extensions:
                        for extension in extensions:
                            append(row + extension if extension else row)
            if fallback_rows:
                # Rows with OPTIONAL-unbound shared cells need the general
                # walk (the unbound variable binds from the match).
                self._join_slow_rows(
                    pattern, fallback_rows, key_names, key_slots, new_vars,
                    graph_var, graph_name, encoder, out_rows,
                )
            return Relation(out_variables, out_rows)

        memo = BoundedMemo(self.memo_capacity)
        missing = memo.MISSING
        probe = plan["probe"] if plan is not None else None
        fallback_rows = []
        append = out_rows.append
        for row in relation.rows:
            key = tuple(row[slot] for slot in key_slots)
            if probe is None or None in key:
                fallback_rows.append(row)
                continue
            extensions = memo.get(key)
            if extensions is missing:
                extensions = probe(key)
                memo.put(key, extensions)
            for extension in extensions:
                append(row + extension if extension else row)
        self._absorb_memo(memo)
        if fallback_rows:
            self._join_slow_rows(
                pattern, fallback_rows, key_names, key_slots, new_vars,
                graph_var, graph_name, encoder, out_rows,
            )
        return Relation(out_variables, out_rows)

    def _join_slow_rows(
        self,
        pattern: TriplePattern,
        rows: List[tuple],
        key_names: List[str],
        key_slots: List[int],
        new_vars: List[str],
        graph_var: Optional[str],
        graph_name: Optional[Any],
        encoder: QueryEncoder,
        out_rows: List[tuple],
    ) -> None:
        """General per-key walk for rows scan mode cannot serve."""
        memo = BoundedMemo(self.memo_capacity)
        missing = memo.MISSING
        update_slots = {name: slot for name, slot in zip(key_names, key_slots)}
        for row in rows:
            key = tuple(row[slot] for slot in key_slots)
            probed = memo.get(key)
            if probed is missing:
                probed = self._probe_pattern(
                    pattern,
                    dict(zip(key_names, key)),
                    graph_var,
                    graph_name,
                    new_vars,
                    encoder,
                )
                memo.put(key, probed)
            for updates, extension in probed:
                if updates:
                    cells = list(row)
                    for name, value in updates:
                        cells[update_slots[name]] = value
                    out_rows.append(tuple(cells) + extension)
                else:
                    out_rows.append(row + extension)
        self._absorb_memo(memo)

    #: Source kinds of a compiled join plan position.
    _SRC_CONST = 0
    _SRC_KEY = 1
    _SRC_FREE = 2

    @staticmethod
    def _compile_picker(picks: List[Tuple[str, int]]):
        """``(triple, parts) -> id tuple`` without generator frames.

        ``picks`` name triple slots (``('t', 0..2)``) or quoted-subject part
        slots (``('q', 0..2)``); the returned callable runs once per
        candidate match, so the common arities are unrolled.
        """
        selectors = [(kind == "q", position) for kind, position in picks]
        if len(selectors) == 1:
            (q0, p0), = selectors
            return lambda triple, parts: ((parts if q0 else triple)[p0],)
        if len(selectors) == 2:
            (q0, p0), (q1, p1) = selectors
            return lambda triple, parts: (
                (parts if q0 else triple)[p0],
                (parts if q1 else triple)[p1],
            )
        if len(selectors) == 3:
            (q0, p0), (q1, p1), (q2, p2) = selectors
            return lambda triple, parts: (
                (parts if q0 else triple)[p0],
                (parts if q1 else triple)[p1],
                (parts if q2 else triple)[p2],
            )
        return lambda triple, parts: tuple(
            (parts if quoted else triple)[position] for quoted, position in selectors
        )

    def _compile_join_plan(
        self,
        pattern: TriplePattern,
        key_names: List[str],
        new_vars: List[str],
        graph_name: Optional[Any],
        encoder: QueryEncoder,
    ) -> Optional[Dict[str, Any]]:
        """Compile one pattern join into a probe closure + scan metadata.

        Hoists everything that does not depend on the join key — constant
        term ids, the resolved graph indexes, the extension and key pick
        plans — so each probe is a candidate-set selection plus a tight
        filter loop, and a scan is one pass building the join hash table.
        Returns ``None`` for shapes outside the fast cases (nested quoted
        patterns, quoted terms off the subject position); the probe closure
        itself returns ``None`` for keys carrying OPTIONAL-unbound cells.
        """
        key_positions = {name: index for index, name in enumerate(key_names)}
        CONST, KEY, FREE = self._SRC_CONST, self._SRC_KEY, self._SRC_FREE

        def source_of(term) -> Optional[Tuple[int, Optional[int]]]:
            if isinstance(term, Var):
                position = key_positions.get(str(term))
                return (KEY, position) if position is not None else (FREE, None)
            if isinstance(term, QuotedPattern):
                return None
            return (CONST, encoder.encode(term))

        subject, predicate, obj = pattern.subject, pattern.predicate, pattern.object
        quoted_sources: Optional[List[Tuple[int, Optional[int]]]] = None
        if isinstance(subject, QuotedPattern):
            quoted_sources = []
            for part in (subject.subject, subject.predicate, subject.object):
                source = source_of(part)
                if source is None:  # nested quoted pattern: general walk
                    return None
                quoted_sources.append(source)
            subject_source = (FREE, None)
        else:
            source = source_of(subject)
            if source is None:
                return None
            subject_source = source
        predicate_source = source_of(predicate)
        object_source = source_of(obj)
        if predicate_source is None or object_source is None:
            return None

        # Pick plans: where each output id comes from in a match — a triple
        # slot ('t', 0..2) or a quoted-subject part ('q', 0..2).
        first_positions: Dict[str, Tuple[str, int]] = {}
        for position, term in enumerate((subject, predicate, obj)):
            if isinstance(term, Var):
                first_positions.setdefault(str(term), ("t", position))
        if quoted_sources is not None:
            for part_index, part in enumerate(
                (subject.subject, subject.predicate, subject.object)
            ):
                if isinstance(part, Var):
                    first_positions.setdefault(str(part), ("q", part_index))
        picks = [first_positions[name] for name in new_vars]
        key_picks = [first_positions[name] for name in key_names]
        triple_only = all(kind == "t" for kind, _ in picks + key_picks)
        ext_picker = self._compile_picker(picks) if picks else (lambda triple, parts: ())

        indexes = self.store.backend.indexes_for(graph_name)
        quoted_parts = encoder.quoted_parts
        quoted_id = encoder.quoted_id
        vectorized = self.vectorized
        quoted_rows_arrays = self._quoted_rows_arrays

        s_mode, s_value = subject_source
        p_mode, p_value = predicate_source
        o_mode, o_value = object_source

        def filtered_candidates(index, subject_id, predicate_id, object_id):
            """Smallest candidate set for the bound ids; ``None`` = no hits."""
            candidates = index.triples
            if subject_id is not None:
                candidates = index.by_subject.get(subject_id)
                if not candidates:
                    return None
            if predicate_id is not None:
                alternative = index.by_predicate.get(predicate_id)
                if not alternative:
                    return None
                if len(alternative) < len(candidates):
                    candidates = alternative
            if object_id is not None:
                alternative = index.by_object.get(object_id)
                if not alternative:
                    return None
                if len(alternative) < len(candidates):
                    candidates = alternative
            return candidates

        def matches_into(results, subject_id, predicate_id, object_id, inner):
            """Scan candidates under the given bound ids, appending the
            extension tuple of every accepted match."""
            append = results.append
            for index in indexes:
                if inner is None:
                    candidates = filtered_candidates(
                        index, subject_id, predicate_id, object_id
                    )
                    if candidates is None:
                        continue
                    for triple in candidates:
                        if subject_id is not None and triple[0] != subject_id:
                            continue
                        if predicate_id is not None and triple[1] != predicate_id:
                            continue
                        if object_id is not None and triple[2] != object_id:
                            continue
                        if triple_only:
                            append(ext_picker(triple, None))
                        else:
                            parts = quoted_parts(triple[0])
                            if parts is None:
                                continue
                            append(ext_picker(triple, parts))
                else:
                    candidates = index._quoted_candidates(
                        inner[0], inner[2], predicate_id, object_id
                    )
                    if vectorized and len(candidates) >= 64:
                        # Quoted probes resolve inner parts array-at-a-time;
                        # tiny per-key buckets stay on the scalar loop,
                        # which wins under a few dozen rows.
                        masked = quoted_rows_arrays(
                            index, candidates, inner, predicate_id, object_id
                        )
                        if masked is None:
                            continue
                        positional, parts_columns, rows = masked
                        if picks:
                            ext_lists = [
                                (
                                    parts_columns[position][rows]
                                    if kind == "q"
                                    else positional[position][rows]
                                ).tolist()
                                for kind, position in picks
                            ]
                            results.extend(
                                zip(ext_lists[0])
                                if len(ext_lists) == 1
                                else zip(*ext_lists)
                            )
                        else:
                            results.extend([()] * len(rows))
                        continue
                    for triple in candidates:
                        parts = quoted_parts(triple[0])
                        if parts is None:
                            continue
                        if inner[0] is not None and parts[0] != inner[0]:
                            continue
                        if inner[1] is not None and parts[1] != inner[1]:
                            continue
                        if inner[2] is not None and parts[2] != inner[2]:
                            continue
                        if predicate_id is not None and triple[1] != predicate_id:
                            continue
                        if object_id is not None and triple[2] != object_id:
                            continue
                        append(ext_picker(triple, parts))

        def probe(key: tuple):
            predicate_id = (
                p_value if p_mode == CONST else key[p_value] if p_mode == KEY else None
            )
            object_id = (
                o_value if o_mode == CONST else key[o_value] if o_mode == KEY else None
            )
            inner = None
            if quoted_sources is None:
                subject_id = (
                    s_value if s_mode == CONST else key[s_value] if s_mode == KEY else None
                )
            else:
                inner = tuple(
                    value if mode == CONST else key[value] if mode == KEY else None
                    for mode, value in quoted_sources
                )
                if None not in inner:
                    subject_id = quoted_id(inner)
                    if subject_id is None:
                        return []
                    inner = None  # exact id lookup; no structural filtering
                else:
                    subject_id = None
            results: List[tuple] = []
            matches_into(results, subject_id, predicate_id, object_id, inner)
            return results

        return {
            "probe": probe,
            "quoted_sources": quoted_sources,
            "sources": (subject_source, predicate_source, object_source),
            "indexes": indexes,
            "key_picks": key_picks,
            "picks": picks,
            "triple_only": triple_only,
            "quoted_parts": quoted_parts,
            "filtered_candidates": filtered_candidates,
            "ext_picker": ext_picker,
        }

    def _scan_cost(self, plan: Dict[str, Any]) -> float:
        """Upper bound on the candidates a constant-only scan would touch."""
        CONST = self._SRC_CONST
        sources = plan["sources"]
        quoted_sources = plan["quoted_sources"]
        subject_id = sources[0][1] if sources[0][0] == CONST else None
        predicate_id = sources[1][1] if sources[1][0] == CONST else None
        object_id = sources[2][1] if sources[2][0] == CONST else None
        total = 0
        for index in plan["indexes"]:
            if quoted_sources is not None:
                inner_subject = (
                    quoted_sources[0][1] if quoted_sources[0][0] == CONST else None
                )
                inner_object = (
                    quoted_sources[2][1] if quoted_sources[2][0] == CONST else None
                )
                total += index.estimate_quoted(
                    inner_subject, inner_object, predicate_id, object_id
                )
            else:
                total += index.estimate(subject_id, predicate_id, object_id)
        return total

    def _scan_join_table(self, plan: Dict[str, Any]) -> Dict[Any, List[tuple]]:
        """One constant-only index pass, hashed by the join-key variables.

        The build side of scan-mode hash join: maps a join key (the bare id
        for single-variable keys, an id tuple otherwise) to the list of
        extension tuples its matches produce.  Candidates come from the
        smallest constant-bound index entry; key and extension ids are picked
        straight out of each matching id-triple (or its quoted-subject
        parts), so the whole build is one tight loop in id space.
        """
        CONST = self._SRC_CONST
        sources = plan["sources"]
        quoted_sources = plan["quoted_sources"]
        subject_id = sources[0][1] if sources[0][0] == CONST else None
        predicate_id = sources[1][1] if sources[1][0] == CONST else None
        object_id = sources[2][1] if sources[2][0] == CONST else None
        inner = (
            tuple(value if mode == CONST else None for mode, value in quoted_sources)
            if quoted_sources is not None
            else None
        )

        if (
            self.vectorized
            and quoted_sources is None
            and plan["triple_only"]
            and subject_id is None
            and object_id is None
        ):
            # Vectorized scan feed: candidates arrive as int64 id arrays from
            # the graph's columnar snapshot instead of per-triple set
            # iteration.  Restricted to the whole-graph and predicate-bucket
            # shapes, where the array order equals the set iteration order
            # the other executors see — keeping row-order-sensitive results
            # (float SUM, GROUP BY representatives) byte-identical.
            return self._scan_table_arrays(plan, predicate_id)

        if self.vectorized and quoted_sources is not None:
            # Quoted-subject scans resolve every candidate's inner parts with
            # one searchsorted against the dictionary's quoted-column
            # snapshot instead of a dict probe per row.  The candidate
            # arrays come from the same set the scalar loop iterates, and
            # boolean masking preserves relative order exactly like the
            # loop's ``continue`` filters, so row order is unchanged.
            return self._scan_table_quoted_arrays(
                plan, inner, predicate_id, object_id
            )

        key_picks = plan["key_picks"]
        triple_only = plan["triple_only"]
        quoted_parts = plan["quoted_parts"]
        filtered_candidates = plan["filtered_candidates"]
        ext_picker = plan["ext_picker"]
        single = len(key_picks) == 1
        if single:
            single_quoted = key_picks[0][0] == "q"
            single_position = key_picks[0][1]
            key_picker = None
        else:
            key_picker = self._compile_picker(key_picks)

        table: Dict[Any, List[tuple]] = {}
        for index in plan["indexes"]:
            if inner is None:
                candidates = filtered_candidates(
                    index, subject_id, predicate_id, object_id
                )
                if candidates is None:
                    continue
            else:
                candidates = index._quoted_candidates(
                    inner[0], inner[2], predicate_id, object_id
                )
            for triple in candidates:
                if subject_id is not None and triple[0] != subject_id:
                    continue
                if predicate_id is not None and triple[1] != predicate_id:
                    continue
                if object_id is not None and triple[2] != object_id:
                    continue
                if triple_only:
                    parts = None
                else:
                    parts = quoted_parts(triple[0])
                    if parts is None:
                        continue
                if inner is not None:
                    if parts is None:
                        parts = quoted_parts(triple[0])
                        if parts is None:
                            continue
                    if inner[0] is not None and parts[0] != inner[0]:
                        continue
                    if inner[1] is not None and parts[1] != inner[1]:
                        continue
                    if inner[2] is not None and parts[2] != inner[2]:
                        continue
                if single:
                    key = (parts if single_quoted else triple)[single_position]
                else:
                    key = key_picker(triple, parts)
                extension = ext_picker(triple, parts)
                bucket = table.get(key)
                if bucket is None:
                    table[key] = [extension]
                else:
                    bucket.append(extension)
        return table


    def _scan_table_arrays(
        self, plan: Dict[str, Any], predicate_id: Optional[int]
    ) -> Dict[Any, List[tuple]]:
        """Array-fed scan-table build for triple-only wildcard/predicate scans.

        Key and extension ids are gathered column-at-a-time from the index's
        :class:`~repro.rdf.graph_index.TripleColumns` snapshot (one C-level
        ``tolist`` per referenced position), so the per-candidate work is
        just the hash-table insert.
        """
        key_picks = plan["key_picks"]
        picks = plan["picks"]
        table: Dict[Any, List[tuple]] = {}
        for index in plan["indexes"]:
            columns = index.columnar()
            if predicate_id is None:
                positional = (columns.subjects, columns.predicates, columns.objects)
                count = len(columns)
            else:
                bucket = index.by_predicate.get(predicate_id)
                if not bucket:
                    continue
                if len(bucket) < len(index.triples):
                    subjects, objects = columns.predicate_rows(predicate_id, index)
                else:
                    # The bucket covers the whole graph: keep the master
                    # array order (what set iteration would have yielded).
                    subjects, objects = columns.subjects, columns.objects
                positional = (subjects, None, objects)
                count = len(subjects)
            if not count:
                continue
            key_lists = [positional[position].tolist() for _, position in key_picks]
            keys: Iterable[Any] = (
                key_lists[0] if len(key_lists) == 1 else zip(*key_lists)
            )
            if picks:
                ext_lists = [positional[position].tolist() for _, position in picks]
                extensions: Iterable[tuple] = (
                    zip(ext_lists[0])
                    if len(ext_lists) == 1
                    else zip(*ext_lists)
                )
                for key, extension in zip(keys, extensions):
                    bucket_rows = table.get(key)
                    if bucket_rows is None:
                        table[key] = [extension]
                    else:
                        bucket_rows.append(extension)
            else:
                for key in keys:
                    bucket_rows = table.get(key)
                    if bucket_rows is None:
                        table[key] = [()]
                    else:
                        bucket_rows.append(())
        return table

    def _scan_table_quoted_arrays(
        self,
        plan: Dict[str, Any],
        inner: Tuple[Optional[int], ...],
        predicate_id: Optional[int],
        object_id: Optional[int],
    ) -> Dict[Any, List[tuple]]:
        """Array-fed scan-table build for quoted-subject annotation patterns.

        The scalar loop pays a ``quoted_parts`` dict probe (plus structural
        comparisons) per candidate — the dominant cost of dashboard queries
        over ~100k similarity annotations.  Here the candidate triples become
        three id columns, their quoted-subject parts resolve via one
        ``searchsorted`` into :meth:`TermDictionary.quoted_columns`, and the
        inner/outer constants apply as boolean masks.
        """
        key_picks = plan["key_picks"]
        picks = plan["picks"]
        table: Dict[Any, List[tuple]] = {}
        for index in plan["indexes"]:
            candidates = index._quoted_candidates(
                inner[0], inner[2], predicate_id, object_id
            )
            masked = self._quoted_rows_arrays(
                index, candidates, inner, predicate_id, object_id
            )
            if masked is None:
                continue
            positional, parts_columns, rows = masked

            def column(kind: str, position: int) -> np.ndarray:
                if kind == "q":
                    return parts_columns[position][rows]
                return positional[position][rows]

            key_lists = [column(kind, position).tolist() for kind, position in key_picks]
            keys: Iterable[Any] = (
                key_lists[0] if len(key_lists) == 1 else zip(*key_lists)
            )
            if picks:
                ext_lists = [
                    column(kind, position).tolist() for kind, position in picks
                ]
                extensions: Iterable[tuple] = (
                    zip(ext_lists[0]) if len(ext_lists) == 1 else zip(*ext_lists)
                )
                for key, extension in zip(keys, extensions):
                    bucket_rows = table.get(key)
                    if bucket_rows is None:
                        table[key] = [extension]
                    else:
                        bucket_rows.append(extension)
            else:
                for key in keys:
                    bucket_rows = table.get(key)
                    if bucket_rows is None:
                        table[key] = [()]
                    else:
                        bucket_rows.append(())
        return table

    def _quoted_rows_arrays(
        self,
        index,
        candidates,
        inner: Tuple[Optional[int], ...],
        predicate_id: Optional[int],
        object_id: Optional[int],
    ) -> Optional[Tuple[Tuple[Optional[np.ndarray], ...], Tuple[np.ndarray, ...], np.ndarray]]:
        """Candidate triples surviving quoted-structure masks, as arrays.

        Returns ``(positional columns, (inner s, p, o) columns, surviving
        row positions)`` — or ``None`` when nothing survives.  Surviving
        rows keep the candidate set's iteration order, exactly like the
        scalar loop's ``continue`` filters.  The per-bucket columns (and the
        ``searchsorted`` quoted-part resolution) come from the index's
        version-scoped :class:`~repro.rdf.graph_index.TripleColumns`
        snapshot cache, so only the bound-id masks are recomputed when the
        same annotation bucket is scanned or probed again.
        """
        if not len(candidates):
            return None
        # Identify which bucket _quoted_candidates picked so the snapshot
        # cache can key its arrays to it; every branch of that selection is
        # covered, but fall back to an uncached build if identity ever fails.
        if candidates is index.triples:
            key = ("t",)
        elif inner[0] is not None and candidates is index.by_quoted_subject.get(
            inner[0]
        ):
            key = ("qs", inner[0])
        elif inner[2] is not None and candidates is index.by_quoted_object.get(
            inner[2]
        ):
            key = ("qo", inner[2])
        elif predicate_id is not None and candidates is index.by_predicate.get(
            predicate_id
        ):
            key = ("p", predicate_id)
        elif object_id is not None and candidates is index.by_object.get(object_id):
            key = ("o", object_id)
        else:  # pragma: no cover — defensive; selection always matches above
            key = ("anon", id(candidates), len(candidates))
        positional, parts_columns, mask = index.columnar().quoted_rows(
            key, candidates, self.store.dictionary
        )
        for part_index, bound in enumerate(inner):
            if bound is not None:
                mask = mask & (parts_columns[part_index] == bound)
        if predicate_id is not None:
            mask = mask & (positional[1] == predicate_id)
        if object_id is not None:
            mask = mask & (positional[2] == object_id)
        rows = np.nonzero(mask)[0]
        if not len(rows):
            return None
        return positional, parts_columns, rows

    def _probe_pattern(
        self,
        pattern: TriplePattern,
        bind: Dict[str, Optional[int]],
        graph_var: Optional[str],
        graph_name: Optional[Any],
        new_vars: List[str],
        encoder: QueryEncoder,
    ) -> List[Tuple[tuple, tuple]]:
        """All pattern matches under one join key, as ``(updates, extension)``.

        ``extension`` carries the ids of the pattern's new variables (in
        ``new_vars`` order); ``updates`` re-binds shared variables whose cell
        was :data:`UNBOUND` in this key (OPTIONAL padding), as
        ``(name, id)`` pairs.  The result is shared by every build row in
        the key's group — the memoized unit of work.
        """
        # Shared variables that are unbound *in this key* must bind from the
        # match (the seed engine's ``binding.get(...) is None`` path).
        unbound_shared = [name for name, value in bind.items() if value is None]

        lookup_graph = graph_name
        if graph_var is not None and bind.get(graph_var) is not None:
            lookup_graph = encoder.decode(bind[graph_var])
        capture_graph = graph_var is not None and bind.get(graph_var) is None

        subject = pattern.subject
        predicate = pattern.predicate
        obj = pattern.object
        quoted_lookup: Optional[Tuple[Optional[int], Optional[int], Optional[int]]] = None
        if isinstance(subject, Var):
            subject_id = bind.get(str(subject))
        elif isinstance(subject, QuotedPattern):
            parts = self._resolve_quoted_ids(subject, bind, encoder)
            if None not in parts:
                subject_id = encoder.quoted_id(parts)  # type: ignore[arg-type]
                if subject_id is None:
                    return []
            elif any(part is not None for part in parts):
                subject_id = None
                quoted_lookup = parts
            else:
                subject_id = None
        else:
            subject_id = encoder.encode(subject)
        predicate_id = (
            bind.get(str(predicate)) if isinstance(predicate, Var) else encoder.encode(predicate)
        )
        object_id = bind.get(str(obj)) if isinstance(obj, Var) else encoder.encode(obj)

        if quoted_lookup is not None:
            matches = self.store.match_quoted_ids(
                quoted_lookup[0],
                quoted_lookup[1],
                quoted_lookup[2],
                predicate_id,
                object_id,
                graph=lookup_graph,
            )
        else:
            matches = self.store.match_ids(
                subject_id, predicate_id, object_id, graph=lookup_graph
            )

        results: List[Tuple[tuple, tuple]] = []
        for triple, triple_graph in matches:
            local: Dict[str, int] = {}
            if capture_graph:
                local[graph_var] = encoder.encode(triple_graph)
            if not (
                self._match_term_id(subject, triple[0], bind, local, encoder)
                and self._match_term_id(predicate, triple[1], bind, local, encoder)
                and self._match_term_id(obj, triple[2], bind, local, encoder)
            ):
                continue
            updates = tuple(
                (name, local[name]) for name in unbound_shared if name in local
            )
            extension = tuple(local[name] for name in new_vars)
            results.append((updates, extension))
        return results

    def _resolve_quoted_ids(
        self, pattern: QuotedPattern, bind: Dict[str, Optional[int]], encoder: QueryEncoder
    ) -> Tuple[Optional[int], Optional[int], Optional[int]]:
        """Inner part ids of a quoted pattern under ``bind`` (``None`` holes)."""
        parts: List[Optional[int]] = []
        for part in (pattern.subject, pattern.predicate, pattern.object):
            if isinstance(part, Var):
                parts.append(bind.get(str(part)))
            elif isinstance(part, QuotedPattern):
                inner = self._resolve_quoted_ids(part, bind, encoder)
                parts.append(encoder.quoted_id(inner) if None not in inner else None)  # type: ignore[arg-type]
            else:
                parts.append(encoder.encode(part))
        return (parts[0], parts[1], parts[2])

    def _match_term_id(
        self,
        term: Any,
        term_id: int,
        bind: Dict[str, Optional[int]],
        local: Dict[str, int],
        encoder: QueryEncoder,
    ) -> bool:
        """Match one pattern term against a matched id, extending ``local``."""
        if isinstance(term, Var):
            name = str(term)
            value = local.get(name)
            if value is None:
                value = bind.get(name)
            if value is None:
                local[name] = term_id
                return True
            return value == term_id
        if isinstance(term, QuotedPattern):
            parts = encoder.quoted_parts(term_id)
            if parts is None:
                return False
            return (
                self._match_term_id(term.subject, parts[0], bind, local, encoder)
                and self._match_term_id(term.predicate, parts[1], bind, local, encoder)
                and self._match_term_id(term.object, parts[2], bind, local, encoder)
            )
        return encoder.encode(term) == term_id

    @classmethod
    def _collect_term_vars(cls, term: Any, ordered: List[str]) -> None:
        """Append a pattern term's variable names in binding order."""
        if isinstance(term, Var):
            ordered.append(str(term))
        elif isinstance(term, QuotedPattern):
            for part in (term.subject, term.predicate, term.object):
                cls._collect_term_vars(part, ordered)

    def _left_join_rel(
        self, group: GroupPattern, relation: Relation, graph: Optional[Any], encoder: QueryEncoder
    ) -> Relation:
        """OPTIONAL: rows extend when the group matches, survive unbound otherwise.

        A hidden provenance column (a name no SPARQL variable can collide
        with) threads each input row through the group evaluation, so the
        whole OPTIONAL body runs set-at-a-time instead of once per row.
        """
        self._provenance_counter += 1
        provenance = f"#row{self._provenance_counter}"
        seeded = Relation(
            relation.variables + (provenance,),
            [row + (position,) for position, row in enumerate(relation.rows)],
        )
        result = self._evaluate_group_rel(group, seeded, graph, encoder)
        provenance_slot = result.slot(provenance)
        keep = [slot for slot, name in enumerate(result.variables) if name != provenance]
        out_variables = tuple(name for name in result.variables if name != provenance)
        extended_by_row: Dict[int, List[tuple]] = {}
        for row in result.rows:
            extended_by_row.setdefault(row[provenance_slot], []).append(
                tuple(row[slot] for slot in keep)
            )
        padding = (UNBOUND,) * (len(out_variables) - len(relation.variables))
        out_rows: List[tuple] = []
        for position, row in enumerate(relation.rows):
            extended = extended_by_row.get(position)
            if extended:
                out_rows.extend(extended)
            else:
                out_rows.append(row + padding)
        return Relation(out_variables, out_rows)

    def _named_graph_rel(
        self, element: NamedGraphPattern, relation: Relation, encoder: QueryEncoder
    ) -> Relation:
        if not isinstance(element.graph, Var):
            return self._evaluate_group_rel(element.group, relation, element.graph, encoder)
        name = str(element.graph)
        slot = relation.slot(name)
        branches: List[Relation] = []
        for graph_name in self.store.graphs():
            graph_id = encoder.encode(graph_name)
            if slot is None:
                seeded = Relation(
                    relation.variables + (name,),
                    [row + (graph_id,) for row in relation.rows],
                )
            else:
                rows: List[tuple] = []
                for row in relation.rows:
                    if row[slot] == graph_id:
                        rows.append(row)
                    elif row[slot] is UNBOUND:
                        cells = list(row)
                        cells[slot] = graph_id
                        rows.append(tuple(cells))
                seeded = Relation(relation.variables, rows)
            if seeded.rows:
                branches.append(
                    self._evaluate_group_rel(element.group, seeded, graph_name, encoder)
                )
        if not branches:
            return Relation(
                relation.variables + ((name,) if slot is None else ()), []
            )
        return Relation.concat(branches)

    def _bind_rel(
        self, element: BindClause, relation: Relation, encoder: QueryEncoder
    ) -> Relation:
        name = str(element.variable)
        needed: Set[str] = set()
        self._expression_vars(element.expression, needed)
        slots = [
            (variable, relation.slot(variable))
            for variable in needed
            if relation.slot(variable) is not None
        ]
        target = relation.slot(name)
        decode = encoder.decode
        out_rows: List[tuple] = []
        for row in relation.rows:
            binding = {
                variable: decode(row[slot])
                for variable, slot in slots
                if row[slot] is not UNBOUND
            }
            value = self._evaluate_expression(element.expression, binding)
            cell = encoder.encode(value) if value is not None else UNBOUND
            if target is None:
                out_rows.append(row + (cell,))
            else:
                cells = list(row)
                cells[target] = cell
                out_rows.append(tuple(cells))
        variables = relation.variables if target is not None else relation.variables + (name,)
        return Relation(variables, out_rows)

    def _filter_rel(
        self, filters: List[FilterClause], relation: Relation, encoder: QueryEncoder
    ) -> Relation:
        """Apply the group's deferred FILTERs, decoding only referenced vars.

        Under the vectorized executor, single-variable filters run through
        the memoized id verdict tables (shared with any mid-group pushdown
        of the same clause, so re-checking surviving rows is pure cache
        hits); only multi-variable filters fall through to the per-row
        decode loop.
        """
        if self.vectorized:
            remaining: List[FilterClause] = []
            for filter_clause in filters:
                variable = self._single_filter_var(filter_clause)
                if variable is None:
                    remaining.append(filter_clause)
                    continue
                relation = self._push_filter(
                    filter_clause, variable, relation, encoder, final=True
                )
                if not relation.rows:
                    return relation
            if not remaining:
                return relation
            filters = remaining
        needed: Set[str] = set()
        for filter_clause in filters:
            self._expression_vars(filter_clause.expression, needed)
        slots = [
            (variable, relation.slot(variable))
            for variable in needed
            if relation.slot(variable) is not None
        ]
        decode = encoder.decode
        out_rows: List[tuple] = []
        for row in relation.rows:
            binding = {
                variable: decode(row[slot])
                for variable, slot in slots
                if row[slot] is not UNBOUND
            }
            if all(
                self._truth(self._evaluate_expression(filter_clause.expression, binding))
                for filter_clause in filters
            ):
                out_rows.append(row)
        return Relation(relation.variables, out_rows)

    @classmethod
    def _expression_vars(cls, expression: Expression, names: Set[str]) -> None:
        """Collect the variable names an expression reads."""
        names.update(expression_variables(expression))

    # ------------------------------------------------------------ query plan
    def _reorder_elements(
        self, elements: List[Any], solutions: List[Binding], graph: Optional[Any]
    ) -> List[Any]:
        """Greedily reorder triple patterns by estimated selectivity.

        Only maximal runs of triple patterns are permuted; OPTIONAL / UNION /
        GRAPH / BIND elements act as barriers because their semantics depend
        on what is already joined.  FILTERs are order-insensitive here (they
        are deferred to the end of the group) so they pass through runs.
        """
        bound: set = set(solutions[0].keys()) if solutions else set()
        # A representative incoming binding: bound variables whose value it
        # carries can be estimated against the real indexes instead of being
        # discounted heuristically.
        representative: Binding = solutions[0] if solutions else {}
        graph_name = graph if graph is not None and not isinstance(graph, Var) else None
        reordered: List[Any] = []
        run: List[TriplePattern] = []

        def ordering_cost(pattern: TriplePattern) -> Tuple[int, int, float]:
            # A pattern sharing no variable with what is already bound would
            # cross-join the accumulated solutions; schedule every connected
            # pattern (however expensive) ahead of it.
            pattern_vars = self._pattern_vars(pattern)
            disconnected = int(bool(bound) and bool(pattern_vars) and not (pattern_vars & bound))
            return (disconnected, *self._pattern_cost(pattern, bound, representative, graph_name))

        def flush_run() -> None:
            nonlocal run
            remaining = list(run)
            while remaining:
                best = min(range(len(remaining)), key=lambda k: ordering_cost(remaining[k]))
                pattern = remaining.pop(best)
                reordered.append(pattern)
                bound.update(self._pattern_vars(pattern))
            run = []

        for element in elements:
            if isinstance(element, TriplePattern):
                run.append(element)
            elif isinstance(element, FilterClause):
                reordered.append(element)
            else:
                flush_run()
                reordered.append(element)
                if isinstance(element, BindClause):
                    bound.add(str(element.variable))
        flush_run()
        return reordered

    #: Fallback selectivity discount per bound-but-value-unknown term, used
    #: only when the store has no cardinality statistics for the predicate.
    _UNKNOWN_BOUND_DISCOUNT = 8.0

    def _pattern_cost(
        self,
        pattern: TriplePattern,
        bound: set,
        representative: Binding,
        graph_name: Optional[Any],
    ) -> Tuple[int, float]:
        """``(unbound variable count, match estimate)`` — lower is cheaper.

        Constant terms — and bound variables whose value the representative
        binding carries — are estimated against the real index sizes.  A term
        that will be bound at evaluation time but whose value is unknown yet
        (it is bound by an earlier pattern in the plan) still restricts
        matches; when the predicate is known its live cardinality statistics
        give the real expected fan-out (``count / distinct_subjects`` for a
        bound subject, ``count / distinct_objects`` for a bound object),
        falling back to a fixed discount otherwise.
        """
        free = 0
        quoted_unknown_bound = 0
        unknown_positions: List[str] = []
        lookup: List[Any] = []
        for position, term in zip(
            ("subject", "predicate", "object"),
            (pattern.subject, pattern.predicate, pattern.object),
        ):
            if isinstance(term, Var):
                name = str(term)
                if name in representative:
                    lookup.append(representative[name])
                elif name in bound:
                    unknown_positions.append(position)
                    lookup.append(None)
                else:
                    free += 1
                    lookup.append(None)
            elif isinstance(term, QuotedPattern):
                quoted_vars = self._quoted_vars(term)
                unresolved = [name for name in quoted_vars if name not in representative]
                free += sum(1 for name in unresolved if name not in bound)
                quoted_unknown_bound += sum(1 for name in unresolved if name in bound)
                lookup.append(self._resolve_quoted(term, representative) if not unresolved else None)
            else:
                lookup.append(term)
        estimate: float = self._base_estimate(pattern, lookup, representative, graph_name)
        statistics = (
            self.store.predicate_statistics(lookup[1], graph_name)
            if unknown_positions and lookup[1] is not None
            else None
        )
        for position in unknown_positions:
            divisor = self._UNKNOWN_BOUND_DISCOUNT
            if statistics and statistics["count"] > 0:
                distinct = statistics[
                    "distinct_subjects" if position == "subject" else "distinct_objects"
                ]
                divisor = max(1.0, float(distinct))
            estimate /= divisor
        estimate /= self._UNKNOWN_BOUND_DISCOUNT**quoted_unknown_bound
        return (free, estimate)

    def _base_estimate(
        self,
        pattern: TriplePattern,
        lookup: List[Any],
        representative: Binding,
        graph_name: Optional[Any],
    ) -> float:
        """Index-size estimate for the resolvable part of a pattern."""
        if lookup[0] is None and isinstance(pattern.subject, QuotedPattern):
            parts = self._quoted_lookup_parts(pattern.subject, representative)
            if parts is not None:
                return float(
                    self.store.estimate_quoted_matches(
                        parts[0], parts[2], lookup[1], lookup[2], graph_name
                    )
                )
        return float(
            self.store.estimate_matches(lookup[0], lookup[1], lookup[2], graph_name)
        )

    @classmethod
    def _pattern_vars(cls, pattern: TriplePattern) -> set:
        names: set = set()
        for term in (pattern.subject, pattern.predicate, pattern.object):
            if isinstance(term, Var):
                names.add(str(term))
            elif isinstance(term, QuotedPattern):
                names.update(cls._quoted_vars(term))
        return names

    @classmethod
    def _quoted_vars(cls, pattern: QuotedPattern) -> set:
        names: set = set()
        for part in (pattern.subject, pattern.predicate, pattern.object):
            if isinstance(part, Var):
                names.add(str(part))
            elif isinstance(part, QuotedPattern):
                names.update(cls._quoted_vars(part))
        return names

    def _left_join(
        self, group: GroupPattern, solutions: List[Binding], graph: Optional[Any]
    ) -> List[Binding]:
        results: List[Binding] = []
        for solution in solutions:
            extended = self._evaluate_group(group, [solution], graph)
            if extended:
                results.extend(extended)
            else:
                results.append(solution)
        return results

    def _evaluate_named_graph(
        self, element: NamedGraphPattern, solutions: List[Binding]
    ) -> List[Binding]:
        results: List[Binding] = []
        if isinstance(element.graph, Var):
            for graph_name in self.store.graphs():
                seeded = []
                for solution in solutions:
                    binding = _term_matches(element.graph, graph_name, solution)
                    if binding is not None:
                        seeded.append(binding)
                if seeded:
                    results.extend(self._evaluate_group(element.group, seeded, graph_name))
            return results
        return self._evaluate_group(element.group, solutions, element.graph)

    @staticmethod
    def _resolve(term: Any, binding: Binding) -> Any:
        if isinstance(term, Var):
            return binding.get(str(term), term)
        return term

    # ----------------------------------------------------------- expressions
    def _evaluate_expression(self, expression: Expression, binding: Binding) -> Any:
        if isinstance(expression, VarExpr):
            return _to_python(binding.get(str(expression.variable)))
        if isinstance(expression, ConstExpr):
            return _to_python(expression.value)
        if isinstance(expression, Comparison):
            left = self._evaluate_expression(expression.left, binding)
            right = self._evaluate_expression(expression.right, binding)
            return self._compare(expression.operator, left, right)
        if isinstance(expression, BooleanExpr):
            left = self._truth(self._evaluate_expression(expression.left, binding))
            if expression.operator == "&&":
                return left and self._truth(self._evaluate_expression(expression.right, binding))
            return left or self._truth(self._evaluate_expression(expression.right, binding))
        if isinstance(expression, NotExpr):
            return not self._truth(self._evaluate_expression(expression.operand, binding))
        if isinstance(expression, FunctionCall):
            return self._evaluate_function(expression, binding)
        raise TypeError(f"unexpected expression {expression!r}")

    def _evaluate_function(self, call: FunctionCall, binding: Binding) -> Any:
        name = call.name
        if name == "bound":
            argument = call.arguments[0]
            if isinstance(argument, VarExpr):
                return binding.get(str(argument.variable)) is not None
            return True
        arguments = [self._evaluate_expression(a, binding) for a in call.arguments]
        if name == "regex":
            flags = re.IGNORECASE if len(arguments) > 2 and "i" in str(arguments[2]) else 0
            return bool(re.search(str(arguments[1]), str(arguments[0] or ""), flags))
        if name == "contains":
            return str(arguments[1]).lower() in str(arguments[0] or "").lower()
        if name == "strstarts":
            return str(arguments[0] or "").startswith(str(arguments[1]))
        if name == "strends":
            return str(arguments[0] or "").endswith(str(arguments[1]))
        if name == "str":
            return str(arguments[0]) if arguments[0] is not None else ""
        if name == "lcase":
            return str(arguments[0] or "").lower()
        if name == "ucase":
            return str(arguments[0] or "").upper()
        if name == "strlen":
            return len(str(arguments[0] or ""))
        if name == "xsd" or name == "datatype":  # pragma: no cover - rarely used
            return arguments[0]
        raise ValueError(f"unsupported SPARQL function {name!r}")

    @staticmethod
    def _compare(operator: str, left: Any, right: Any) -> bool:
        if left is None or right is None:
            return False
        if isinstance(left, bool) or isinstance(right, bool):
            left_cmp, right_cmp = bool(left), bool(right)
        elif isinstance(left, (int, float)) and isinstance(right, (int, float)):
            left_cmp, right_cmp = float(left), float(right)
        else:
            left_cmp, right_cmp = str(left), str(right)
        if operator == "=":
            return left_cmp == right_cmp
        if operator == "!=":
            return left_cmp != right_cmp
        if operator == "<":
            return left_cmp < right_cmp
        if operator == "<=":
            return left_cmp <= right_cmp
        if operator == ">":
            return left_cmp > right_cmp
        if operator == ">=":
            return left_cmp >= right_cmp
        raise ValueError(f"unknown comparison operator {operator!r}")

    @staticmethod
    def _truth(value: Any) -> bool:
        if isinstance(value, bool):
            return value
        return bool(value)

    # ------------------------------------------------------------ projection
    def _result_variables(self, query: SelectQuery, rows: List[Binding]) -> List[str]:
        if query.is_select_star():
            seen: List[str] = []
            for row in rows:
                for key in row:
                    if key not in seen:
                        seen.append(key)
            return seen
        names: List[str] = []
        for item in query.variables:
            if isinstance(item, Aggregate):
                names.append(str(item.alias))
            else:
                names.append(str(item))
        return names

    def _project(
        self, query: SelectQuery, rows: List[Binding], variables: List[str]
    ) -> List[Dict[str, Any]]:
        projected: List[Dict[str, Any]] = []
        for row in rows:
            projected.append({name: _to_python(row.get(name)) for name in variables})
        return projected

    @staticmethod
    def _distinct(rows: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        seen = set()
        unique: List[Dict[str, Any]] = []
        for row in rows:
            key = tuple(sorted((k, str(v)) for k, v in row.items()))
            if key not in seen:
                seen.add(key)
                unique.append(row)
        return unique

    @staticmethod
    def _order(query: SelectQuery, rows: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        for variable, ascending in reversed(query.order_by):
            name = str(variable)

            def sort_key(row, _name=name):
                value = _to_python(row.get(_name))
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    return (0, value, "")
                return (1, 0, str(value))

            rows = sorted(rows, key=sort_key, reverse=not ascending)
        return rows

    # ------------------------------------------------------------ aggregates
    def _aggregate(self, query: SelectQuery, solutions: List[Binding]) -> List[Dict[str, Any]]:
        groups: Dict[Tuple, List[Binding]] = {}
        for solution in solutions:
            # Keys are *typed* values (via _group_key), not strings: keying
            # on str() collapsed Literal(5) and Literal("5") into one group.
            key = tuple(
                _group_key(_to_python(solution.get(str(v)))) for v in query.group_by
            )
            groups.setdefault(key, []).append(solution)
        if not query.group_by and not groups:
            groups[()] = []
        rows: List[Dict[str, Any]] = []
        for key, members in groups.items():
            row: Dict[str, Any] = {}
            for variable, value in zip(query.group_by, key):
                representative = members[0].get(str(variable)) if members else value
                row[str(variable)] = _to_python(representative)
            for item in query.variables:
                if isinstance(item, Aggregate):
                    row[str(item.alias)] = self._compute_aggregate(item, members)
                elif str(item) not in row:
                    row[str(item)] = _to_python(members[0].get(str(item))) if members else None
            rows.append(row)
        return rows

    @staticmethod
    def _compute_aggregate(aggregate: Aggregate, members: List[Binding]) -> Any:
        if aggregate.argument is None:
            values: Iterable[Any] = [1] * len(members)
        else:
            values = [
                _to_python(member.get(str(aggregate.argument)))
                for member in members
                if member.get(str(aggregate.argument)) is not None
            ]
        return SPARQLEngine._aggregate_values(aggregate, list(values))

    @staticmethod
    def _aggregate_values(aggregate: Aggregate, values: List[Any]) -> Any:
        """Reduce one group's (None-filtered) argument values.

        Shared by the tuple and vectorized aggregation paths; SUM / AVG use
        Python's left-to-right float addition so both paths round
        identically.
        """
        if aggregate.distinct:
            seen = set()
            unique = []
            for value in values:
                key = str(value)
                if key not in seen:
                    seen.add(key)
                    unique.append(value)
            values = unique
        if aggregate.function == "count":
            return len(values)
        if not values:
            return None
        if aggregate.function == "sum":
            return sum(float(v) for v in values)
        if aggregate.function == "avg":
            return sum(float(v) for v in values) / len(values)
        if aggregate.function == "min":
            return min(values)
        if aggregate.function == "max":
            return max(values)
        if aggregate.function == "sample":
            return values[0]
        raise ValueError(f"unknown aggregate {aggregate.function!r}")
