"""Setuptools shim so ``pip install -e .`` works on environments without the
PEP 660 build chain (no ``wheel`` available offline)."""

from setuptools import setup

setup()
