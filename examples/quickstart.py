"""Quickstart: build a LiDS graph from a small data lake and explore it.

Run with ``python examples/quickstart.py``.  The script generates a tiny
synthetic data lake plus a Kaggle-style pipeline corpus, bootstraps the
KGLiDS platform over them, and walks through the basic interfaces: keyword
search, unionable-table discovery, library statistics and an ad-hoc SPARQL
query.
"""

from repro.datagen import generate_discovery_benchmark, generate_pipeline_corpus
from repro.interfaces import KGLiDS


def main() -> None:
    # 1. A synthetic data lake (3 base datasets, each split into 3 partitioned
    #    tables) and a pipeline corpus written against its tables.
    benchmark = generate_discovery_benchmark("tus_small", seed=7, base_tables=3, partitions=3, rows=80)
    scripts = generate_pipeline_corpus(benchmark.lake, pipelines_per_table=2, seed=7)
    print(f"data lake: {benchmark.lake.num_tables} tables, {benchmark.lake.num_columns} columns")
    print(f"pipeline corpus: {len(scripts)} scripts")

    # 2. Bootstrap the platform: profile the lake, abstract the pipelines,
    #    build the LiDS graph and train the recommendation models.
    platform = KGLiDS.bootstrap(lake=benchmark.lake, scripts=scripts, train_models=True)
    print("\nLiDS graph statistics:")
    for key, value in platform.statistics().items():
        print(f"  {key}: {value}")

    # 3. Keyword search for tables (conjunctive group + disjunctive term).
    hits = platform.search_keywords([["health"], "games"])
    print(f"\nsearch_keywords([['health'], 'games']) -> {hits.num_rows} tables")
    for row in hits.head(3).iter_rows():
        print(f"  {row['dataset']}/{row['table']}")

    # 4. Unionable-table discovery for the first query table of the benchmark.
    dataset, table = benchmark.query_tables[0]
    unionable = platform.get_unionable_tables(dataset, table, k=5)
    print(f"\ntables unionable with {dataset}/{table}:")
    for row in unionable.iter_rows():
        print(f"  {row['dataset']}/{row['table']}  score={row['score']:.3f}")

    # 5. Which libraries do pipelines use the most?  (Figure 4 of the paper.)
    top_libraries = platform.get_top_k_library_used(5)
    print("\ntop libraries by number of pipelines:")
    for row in top_libraries.iter_rows():
        print(f"  {row['library_name']}: {row['num_pipelines']}")

    # 6. Ad-hoc SPARQL against the LiDS graph.
    result = platform.query(
        """
        SELECT ?name ?rows WHERE {
          ?table a kglids:Table .
          ?table kglids:hasName ?name .
          ?table kglids:hasTotalRows ?rows .
        }
        ORDER BY DESC(?rows) LIMIT 3
        """
    )
    print("\nlargest tables (ad-hoc SPARQL):")
    for row in result.iter_rows():
        print(f"  {row['name']}: {row['rows']} rows")


if __name__ == "__main__":
    main()
