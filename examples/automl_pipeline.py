"""AutoML with the revised KGpip pipeline (Section 4.4 / Figure 9).

The LiDS graph records which operations (and which hyperparameter values)
top-voted pipelines used on each dataset.  ``LiDSClient.automl`` turns that
into a GOLEM-style evolutionary search over pipeline *graphs* — imputer /
scaler / feature nodes feeding one estimator — seeded and biased by priors
harvested from the governed graph by plain SPARQL.  The budgeted random
baseline of the original KGpip survives as ``strategy="random"`` and shares
the same memoized fitness cache, so the two strategies are comparable at an
equal evaluation budget.
"""

from repro.datagen import (
    generate_discovery_benchmark,
    generate_pipeline_corpus,
    generate_transformation_datasets,
)
from repro.interfaces import KGLiDS, LiDSClient


def main() -> None:
    benchmark = generate_discovery_benchmark("tus_small", seed=9, base_tables=4, partitions=3, rows=80)
    scripts = generate_pipeline_corpus(benchmark.lake, pipelines_per_table=3, seed=9)
    platform = KGLiDS.bootstrap(lake=benchmark.lake, scripts=scripts, train_models=False)
    client = LiDSClient(platform.governor)

    book = client.kgpip.prior_book()
    top = [name.split(".")[-1] for name in book.estimator_ranking()[:3]]
    print(f"priors harvested from the graph (informed={book.informed}); top estimators: {', '.join(top)}")

    datasets = generate_transformation_datasets(count=4, base_rows=120)
    print()
    print("dataset           task        evolution   random   best genome (evolution)")
    for dataset in datasets:
        evolved = client.automl(
            dataset.table, dataset.target, max_evaluations=8, cv=2, time_budget_seconds=None
        )
        random_baseline = client.automl(
            dataset.table, dataset.target, strategy="random",
            max_evaluations=8, cv=2, time_budget_seconds=None,
        )
        print(
            f"{dataset.name:16s}  {dataset.task:10s}  {evolved.best_score:9.3f}  "
            f"{random_baseline.best_score:7.3f}   {evolved.best_genome}"
        )
    print()
    print(
        f"last run: spent {evolved.evaluations_spent} of 8.0 budget units in "
        f"{evolved.generations_run} generations ({evolved.stopped_because}); "
        f"cache {evolved.cache_stats}; fidelity {evolved.fidelity_stats}"
    )


if __name__ == "__main__":
    main()
