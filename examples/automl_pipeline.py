"""AutoML with the revised KGpip pipeline (Section 4.4 / Figure 9).

The LiDS graph records which estimators (and which hyperparameter values)
top-voted pipelines used on each dataset.  The AutoML component recommends a
classifier for an unseen dataset from the most similar table in the graph and
seeds its hyperparameter search with the recorded values (``Pip_LiDS``); the
uninformed variant (``Pip_G4C``) searches the same space blindly under the
same budget.
"""

from repro.automl import KGpipAutoML
from repro.datagen import (
    generate_automl_datasets,
    generate_discovery_benchmark,
    generate_pipeline_corpus,
)
from repro.interfaces import KGLiDS


def main() -> None:
    benchmark = generate_discovery_benchmark("tus_small", seed=9, base_tables=4, partitions=3, rows=80)
    scripts = generate_pipeline_corpus(benchmark.lake, pipelines_per_table=3, seed=9)
    platform = KGLiDS.bootstrap(lake=benchmark.lake, scripts=scripts, train_models=False)

    datasets = generate_automl_datasets(count=4, base_rows=120)
    print("dataset           task        Pip_LiDS   Pip_G4C   best estimator (LiDS)")
    for dataset in datasets:
        informed = KGpipAutoML(
            storage=platform.storage,
            profiler=platform.governor.profiler,
            colr_models=platform.governor.colr_models,
            use_lids_priors=True,
            random_state=1,
        )
        uninformed = KGpipAutoML(
            storage=platform.storage,
            profiler=platform.governor.profiler,
            colr_models=platform.governor.colr_models,
            use_lids_priors=False,
            random_state=1,
        )
        recommendation = informed.recommend_ml_models(dataset.table, k=3)
        lids_result = informed.search(
            dataset.table, dataset.target, time_budget_seconds=8.0, max_evaluations=4, cv=2
        )
        g4c_result = uninformed.search(
            dataset.table, dataset.target, time_budget_seconds=8.0, max_evaluations=4, cv=2
        )
        best = lids_result.best_estimator_name.split(".")[-1]
        print(
            f"{dataset.name:16s}  {dataset.task:10s}  {lids_result.best_score:8.3f}  "
            f"{g4c_result.best_score:8.3f}   {best}"
        )
        if recommendation and recommendation[0].hyperparameter_priors:
            print(f"    hyperparameter priors from the LiDS graph: {recommendation[0].hyperparameter_priors}")


if __name__ == "__main__":
    main()
