"""Data discovery scenario: the "heart failure" walkthrough of Section 5.

A data scientist wants to predict heart failure: they search the lake for
relevant tables, inspect unionable columns, look for join paths to enrich
their features, and check which pipelines other users wrote against similar
data.  This example also compares KGLiDS' union-search accuracy with the
SANTOS and Starmie baselines on the generated benchmark's ground truth.
"""

from repro.baselines import SantosUnionSearch, StarmieUnionSearch
from repro.datagen import generate_discovery_benchmark, generate_pipeline_corpus
from repro.eval import average_precision_recall_at_k
from repro.interfaces import KGLiDS


def kglids_rankings(platform: KGLiDS, benchmark) -> dict:
    rankings = {}
    for query in benchmark.query_tables:
        result = platform.get_unionable_tables(query[0], query[1], k=10)
        rankings[query] = list(zip(result.column("dataset"), result.column("table")))
    return rankings


def baseline_rankings(system, benchmark) -> dict:
    system.preprocess(benchmark.lake)
    rankings = {}
    for query in benchmark.query_tables:
        ranked = system.query(benchmark.lake.table(*query), k=10)
        rankings[query] = [key for key, _ in ranked]
    return rankings


def main() -> None:
    benchmark = generate_discovery_benchmark("d3l_small", seed=13, base_tables=4, partitions=4, rows=100)
    scripts = generate_pipeline_corpus(benchmark.lake, pipelines_per_table=1, seed=13)
    platform = KGLiDS.bootstrap(lake=benchmark.lake, scripts=scripts, train_models=False)

    # --- keyword search -----------------------------------------------------
    hits = platform.search_keywords([["health"], ["heart"]])
    print(f"keyword search for health/heart tables: {hits.num_rows} hits")

    # --- unionable columns between two ground-truth related tables ----------
    query = benchmark.query_tables[0]
    partner = sorted(benchmark.ground_truth[query])[0]
    columns = platform.find_unionable_columns(query[0], query[1], partner[0], partner[1])
    print(f"\nunionable columns between {query[1]} and {partner[1]}:")
    for row in columns.head(5).iter_rows():
        print(f"  {row['column_a']} ~ {row['column_b']} ({row['similarity']}, {row['score']:.2f})")

    # --- join paths ----------------------------------------------------------
    paths = platform.get_path_to_table(query[0], query[1], hops=2)
    print(f"\njoin paths within 2 hops of {query[1]}: {paths.num_rows}")
    for row in paths.head(3).iter_rows():
        print(f"  {row['path']}")

    # --- pipelines over similar data -----------------------------------------
    pipelines = platform.get_pipelines_calling_libraries(
        "pandas.read_csv", "sklearn.ensemble.RandomForestClassifier"
    )
    print(f"\npipelines reading CSVs and fitting random forests: {pipelines.num_rows}")

    # --- accuracy comparison against the baselines ---------------------------
    ground_truth = {q: benchmark.ground_truth[q] for q in benchmark.query_tables}
    k_values = [1, 3, 5]
    systems = {
        "KGLiDS": kglids_rankings(platform, benchmark),
        "Starmie": baseline_rankings(StarmieUnionSearch(training_epochs=3), benchmark),
        "SANTOS": baseline_rankings(SantosUnionSearch(), benchmark),
    }
    print("\nunion-search accuracy (precision@k / recall@k):")
    for name, rankings in systems.items():
        metrics = average_precision_recall_at_k(rankings, ground_truth, k_values)
        summary = "  ".join(f"k={k}: {p:.2f}/{r:.2f}" for k, (p, r) in metrics.items())
        print(f"  {name:8s} {summary}")


if __name__ == "__main__":
    main()
