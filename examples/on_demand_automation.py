"""On-demand data cleaning and transformation (Section 4 of the paper).

The KGLiDS GNN recommenders are trained from the operations observed in the
abstracted pipeline corpus; here we apply them to unseen datasets with
missing values and badly-scaled features, and measure the effect on a
downstream random-forest task — the same protocol as Tables 5 and 6.
"""

from repro.datagen import (
    generate_classification_dataset,
    generate_discovery_benchmark,
    generate_pipeline_corpus,
)
from repro.interfaces import KGLiDS
from repro.ml import RandomForestClassifier
from repro.ml.model_selection import cross_val_accuracy, cross_val_f1


def downstream_f1(table, target) -> float:
    X, _ = table.to_feature_matrix(target=target)
    y = table.target_vector(target)
    return cross_val_f1(RandomForestClassifier(n_estimators=8, max_depth=6), X, y, cv=3)


def downstream_accuracy(table, target) -> float:
    X, _ = table.to_feature_matrix(target=target)
    y = table.target_vector(target)
    return cross_val_accuracy(RandomForestClassifier(n_estimators=8, max_depth=6), X, y, cv=3)


def main() -> None:
    # Bootstrap the platform over a pipeline corpus so the GNN models have
    # (table embedding, operation) training examples to learn from.
    benchmark = generate_discovery_benchmark("tus_small", seed=5, base_tables=4, partitions=3, rows=80)
    scripts = generate_pipeline_corpus(benchmark.lake, pipelines_per_table=3, seed=5)
    platform = KGLiDS.bootstrap(lake=benchmark.lake, scripts=scripts, train_models=True)
    print(f"trained models: {platform.storage.list_models()}")

    # ----------------------------------------------------------- cleaning ---
    dirty, target = generate_classification_dataset(
        "patients", n_rows=180, n_features=6, missing_rate=0.2, seed=42
    )
    print(f"\ncleaning: dataset has {dirty.missing_cell_count()} missing cells")
    recommendations = platform.recommend_cleaning_operations(dirty)
    print("  recommended operations:", [(name, round(score, 3)) for name, score in recommendations[:3]])
    cleaned = platform.apply_cleaning_operations(recommendations, dirty)
    baseline = dirty.drop_rows_with_missing()
    print(f"  F1 after recommended cleaning : {downstream_f1(cleaned, target):.3f}")
    print(f"  F1 after dropping null rows   : {downstream_f1(baseline, target):.3f}")

    # ----------------------------------------------------- transformation ---
    skewed, target = generate_classification_dataset(
        "telemetry", n_rows=180, n_features=6, skewed_features=3, scale_spread=100.0, seed=43
    )
    recommendation = platform.recommend_transformations(skewed, target=target)
    print(f"\ntransformation: recommended scaler = {recommendation.scaler}")
    print(f"  column transforms: {recommendation.column_transforms}")
    transformed = platform.apply_transformations(recommendation, skewed, target=target)
    print(f"  accuracy before transformation: {downstream_accuracy(skewed, target):.3f}")
    print(f"  accuracy after transformation : {downstream_accuracy(transformed, target):.3f}")


if __name__ == "__main__":
    main()
