"""Benchmark — durable governance: sqlite backend, save/reopen, table refresh.

Measures what the pluggable-backend storage layer buys:

* **Reopen vs re-govern**: a lake governed once and saved can be reopened
  (sqlite shard load + embedding archive + profile JSON) in a fresh
  governor; the headline ``reopen_speedup`` compares that against profiling
  and constructing the LiDS graph from scratch.  The reopened store must
  answer the discovery queries with results identical to the in-memory
  governor (``results_identical``).
* **Sqlite query overhead**: per-query latency over the reopened
  sqlite-backed store versus the in-memory store, cold (first touch pays the
  lazy shard load) and warm (the loaded index *is* the in-memory index, so
  the factor should be ~1).
* **Refresh vs re-govern**: ``refresh_table`` on one modified table versus
  governing the whole modified lake from scratch, with byte-identical graphs
  (``refresh_graph_identical``).

Results are written to ``benchmarks/BENCH_persistent.json``.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_persistent_governor.py --tables 30

or as a pytest smoke test (small sizes, used by ``run_all.py``)::

    PYTHONPATH=src python -m pytest benchmarks/bench_persistent_governor.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import tempfile
import time
from pathlib import Path
from typing import Dict

from repro.datagen import generate_discovery_benchmark
from repro.eval import format_report_table
from repro.kg.governor import KGGovernor
from repro.rdf import QuadStore
from repro.rdf.serialize import serialize_nquads
from repro.sparql import SPARQLEngine
from repro.tabular import DataLake

RESULT_PATH = Path(__file__).parent / "BENCH_persistent.json"

SPARQL_QUERIES: Dict[str, str] = {
    "tables": "SELECT ?t ?name WHERE { ?t a kglids:Table . ?t kglids:hasName ?name . }",
    "joined_metadata": """
        SELECT ?col ?colname ?tablename WHERE {
            ?col kglids:hasName ?colname .
            ?col a kglids:Column .
            ?col kglids:isPartOf ?table .
            ?table kglids:hasName ?tablename .
        }
    """,
    "similarity": """
        SELECT ?c1 ?c2 ?score WHERE {
            << ?c1 kglids:hasContentSimilarity ?c2 >> kglids:withCertainty ?score .
        }
    """,
    "type_histogram": """
        SELECT ?type (COUNT(?col) AS ?n) WHERE {
            ?col a kglids:Column .
            ?col kglids:hasFineGrainedType ?type .
        } GROUP BY ?type ORDER BY ?type
    """,
}


def _generate_lake(num_tables: int, rows: int, seed: int) -> DataLake:
    """A lake of ``num_tables`` partitioned tables with overlapping schemas."""
    partitions = 5 if num_tables >= 25 else 3
    base_tables = (num_tables + partitions - 1) // partitions
    benchmark = generate_discovery_benchmark(
        "tus_small", seed=seed, base_tables=base_tables, partitions=partitions, rows=rows
    )
    tables = benchmark.lake.tables()[:num_tables]
    lake = DataLake("bench_persistent")
    for table in tables:
        lake.add_table(table.dataset, table)
    return lake


def _rows(store: QuadStore, query: str):
    return sorted(map(str, SPARQLEngine(store).select(query).rows))


def _time_queries(store: QuadStore, repetitions: int) -> Dict[str, float]:
    timings: Dict[str, float] = {}
    for name, query in SPARQL_QUERIES.items():
        engine = SPARQLEngine(store)
        started = time.perf_counter()
        for _ in range(repetitions):
            engine.select(query)
        timings[name] = (time.perf_counter() - started) / repetitions
    return timings


def run_benchmark(num_tables: int, rows: int, repetitions: int, seed: int = 7) -> Dict:
    lake = _generate_lake(num_tables, rows, seed)
    workdir = Path(tempfile.mkdtemp(prefix="bench_persistent_"))
    try:
        # Warm process-wide caches (word model vectors, NER) so the timed
        # governing run does not pay one-off misses the reopen then skips.
        KGGovernor().add_data_lake(_generate_lake(2, rows, seed + 1))

        # ---------------------------------------------- govern + save
        started = time.perf_counter()
        governor = KGGovernor()
        governor.add_data_lake(lake)
        govern_seconds = time.perf_counter() - started
        save_dir = workdir / "lake"
        started = time.perf_counter()
        governor.save(save_dir)
        save_seconds = time.perf_counter() - started
        memory_store = governor.storage.graph
        memory_rows = {name: _rows(memory_store, q) for name, q in SPARQL_QUERIES.items()}

        # ---------------------------------------------- reopen
        started = time.perf_counter()
        reopened = KGGovernor.open(save_dir)
        reopen_seconds = time.perf_counter() - started
        # Cold = first query per graph pays the lazy sqlite shard load.
        cold_started = time.perf_counter()
        reopened_rows = {
            name: _rows(reopened.storage.graph, q) for name, q in SPARQL_QUERIES.items()
        }
        cold_seconds = time.perf_counter() - cold_started
        results_identical = reopened_rows == memory_rows

        memory_timings = _time_queries(memory_store, repetitions)
        sqlite_timings = _time_queries(reopened.storage.graph, repetitions)
        sparql = {
            name: {
                "memory": round(memory_timings[name], 6),
                "sqlite_warm": round(sqlite_timings[name], 6),
                "warm_factor": round(
                    sqlite_timings[name] / memory_timings[name], 3
                )
                if memory_timings[name] > 0
                else 0.0,
            }
            for name in SPARQL_QUERIES
        }
        reopened.close()

        # ---------------------------------------------- refresh one table
        target = lake.tables()[0]
        modified = target.copy()
        first_numeric = modified.numeric_column_names()
        if first_numeric:
            column = modified.column(first_numeric[0])
            column.values[:] = [
                (value + 1 if isinstance(value, (int, float)) else value)
                for value in column.values
            ]
        started = time.perf_counter()
        governor.refresh_table(modified, dataset_name=target.dataset)
        refresh_seconds = time.perf_counter() - started

        started = time.perf_counter()
        scratch = KGGovernor()
        modified_lake = DataLake("bench_persistent")
        for table in lake.tables():
            copied = modified if (table.dataset, table.name) == (modified.dataset, modified.name) else table
            modified_lake.add_table(table.dataset, copied)
        scratch.add_data_lake(modified_lake)
        rescratch_seconds = time.perf_counter() - started
        refresh_graph_identical = serialize_nquads(governor.storage.graph) == serialize_nquads(
            scratch.storage.graph
        )

        report = {
            "config": {
                "num_tables": len(lake.tables()),
                "rows": rows,
                "repetitions": repetitions,
                "seed": seed,
                "cpu_count": os.cpu_count(),
            },
            "govern_seconds": round(govern_seconds, 4),
            "save_seconds": round(save_seconds, 4),
            "reopen_seconds": round(reopen_seconds, 4),
            "cold_query_seconds": round(cold_seconds, 4),
            # Headline: reopening a saved lake vs re-governing it.  Also the
            # honest variant including the cold first-touch shard loads.
            "reopen_speedup": round(govern_seconds / reopen_seconds, 2)
            if reopen_seconds > 0
            else 0.0,
            "reopen_with_cold_queries_speedup": round(
                govern_seconds / (reopen_seconds + cold_seconds), 2
            )
            if reopen_seconds + cold_seconds > 0
            else 0.0,
            "results_identical": results_identical,
            "sparql": sparql,
            "refresh": {
                "refresh_seconds": round(refresh_seconds, 4),
                "regovern_seconds": round(rescratch_seconds, 4),
                "refresh_speedup": round(rescratch_seconds / refresh_seconds, 2)
                if refresh_seconds > 0
                else 0.0,
                "refresh_graph_identical": refresh_graph_identical,
            },
        }
        governor.close()
        return report
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def print_report(report: Dict) -> None:
    config = report["config"]
    rows = [
        ["govern from scratch (s)", report["govern_seconds"], "", ""],
        ["save (s)", report["save_seconds"], "", ""],
        ["reopen (s)", report["reopen_seconds"], "", report["reopen_speedup"]],
        [
            "reopen + cold queries (s)",
            round(report["reopen_seconds"] + report["cold_query_seconds"], 4),
            "",
            report["reopen_with_cold_queries_speedup"],
        ],
    ]
    for name, timings in report["sparql"].items():
        rows.append(
            [f"sparql {name} (s)", timings["memory"], timings["sqlite_warm"], timings["warm_factor"]]
        )
    refresh = report["refresh"]
    rows.append(
        [
            "refresh one table (s)",
            refresh["regovern_seconds"],
            refresh["refresh_seconds"],
            refresh["refresh_speedup"],
        ]
    )
    print(
        format_report_table(
            ["metric", "memory / scratch", "sqlite / refresh", "speedup or factor"],
            rows,
            title=f"Persistent governor bench ({config['num_tables']} tables)",
        )
    )
    print(
        f"reopen speedup {report['reopen_speedup']}x; results identical: "
        f"{report['results_identical']}; refresh graph identical: "
        f"{refresh['refresh_graph_identical']}"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tables", type=int, default=30)
    parser.add_argument("--rows", type=int, default=60)
    parser.add_argument("--repetitions", type=int, default=5)
    parser.add_argument("--output", type=Path, default=RESULT_PATH)
    args = parser.parse_args()
    if args.tables < 2:
        parser.error("--tables must be >= 2 (similarity needs at least one table pair)")
    report = run_benchmark(args.tables, args.rows, args.repetitions)
    print_report(report)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")


# ------------------------------------------------------------ pytest smoke
def test_persistent_governor_smoke():
    """Smoke configuration: reopen must beat re-governing and stay faithful.

    Profiling dominates governing even at smoke scale, while reopening only
    replays sqlite shards and an npz archive — the acceptance floor of 5x is
    asserted directly.
    """
    num_tables = 12 if os.environ.get("REPRO_BENCH_SMOKE") else 16
    report = run_benchmark(num_tables=num_tables, rows=40, repetitions=2)
    assert report["results_identical"]
    assert report["refresh"]["refresh_graph_identical"]
    # Loose floor: smoke sizes measure sub-second phases on arbitrary CI
    # runners.  The real >= 5x acceptance bar is held by the committed
    # full-size BENCH_persistent.json via check_regressions.py.
    assert report["reopen_speedup"] >= 3.0
    assert report["refresh"]["refresh_speedup"] > 1.0
    for name, timings in report["sparql"].items():
        assert timings["sqlite_warm"] > 0.0, name


if __name__ == "__main__":
    main()
