"""Benchmark — the serving tier: queries/sec across snapshot-shipped replicas.

Models the deployment the serving tier exists for: one writer governs a
lake (and keeps streaming new tables into it) while N read replicas — each
a separate OS process serving a shipped snapshot through the
single-threaded :class:`ReplicaServer` loop — answer discovery queries at
a 10 ms freshness lease, i.e. effectively every answer is preceded by a
delta sync against the live writer.

The measurement is per-serving-slot, closed loop: each replica gets
exactly one client session issuing discovery calls back-to-back
(request → freshness sync → answer → next request), which is how a
replica is actually consumed — one data scientist session per connection,
one request in flight per slot.  The headline question is how aggregate
queries/sec grows with slots while the writer streams: a lone replica
serializes [gate wait + sync + query] chains, so every exclusive write
window the writer holds (table batches committing) stalls it with the
core left to the writer; sibling replicas overlap those stalls — their
syncs block on the *same* commit and all drain at once.

Reported metrics:

* ``qps_1`` / ``qps_2`` / ``qps_4`` — sustained discovery queries/sec at
  each replica count, measured over the full streaming window;
* ``read_scaling_speedup`` — qps at the largest replica count over qps at
  one replica (gated: the ISSUE acceptance bound is >= 2.5x at 4);
* ``rows_identical_remote`` — after convergence, ordered discovery
  results fetched through a replica are byte-identical
  (``canonical_json``) to the in-process writer client's;
* ``replicas_converged`` — every replica's pinned version reaches the
  writer's final ``commit_version`` once streaming drains;
* ``full_pulls`` — replica refreshes that fell back to shard re-ships
  (0 means the writer's delta log bridged every sync).

The booleans and the speedup are gated by ``check_regressions.py``.
Results are written to ``benchmarks/BENCH_serving.json``.  Run
standalone::

    PYTHONPATH=src python benchmarks/bench_serving.py --tables 200

or as a pytest smoke test (small sizes, used by ``run_all.py``)::

    PYTHONPATH=src python -m pytest benchmarks/bench_serving.py -q
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import shutil
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datagen import generate_discovery_benchmark
from repro.eval import format_report_table
from repro.interfaces import LiDSClient
from repro.kg import GovernorService, KGGovernor
from repro.kg.storage import KGLiDSStorage
from repro.rdf import QuadStore
from repro.serving import LiDSServer, RemoteLiDSClient, canonical_json, encode_value
from repro.serving.replica import serve_replica
from repro.tabular import DataLake, Table

RESULT_PATH = Path(__file__).parent / "BENCH_serving.json"

#: Ordered (deterministic) discovery calls used for the byte-identity
#: check after convergence; (method, args) against both clients.
_IDENTITY_LIMIT = 25


def _bench_tables(num_tables: int, rows: int, seed: int) -> List[Table]:
    """Deterministic overlapping-schema tables from the datagen benchmark."""
    partitions = 4 if num_tables >= 16 else 2
    base_tables = (num_tables + partitions - 1) // partitions
    benchmark = generate_discovery_benchmark(
        "tus_small", seed=seed, base_tables=base_tables, partitions=partitions, rows=rows
    )
    return benchmark.lake.tables()[:num_tables]


def _as_lake(tables: Sequence[Table], name: str) -> DataLake:
    lake = DataLake(name)
    for table in tables:
        lake.add_table(table.dataset or "default", table.copy())
    return lake


def _build_snapshot(tables: Sequence[Table], directory: Path) -> None:
    """Govern ``tables`` into a saved sqlite snapshot at ``directory``."""
    directory.mkdir(parents=True, exist_ok=True)
    graph = QuadStore.sqlite(directory / "graph.sqlite3")
    governor = KGGovernor(storage=KGLiDSStorage(graph=graph))
    service = GovernorService(governor)
    try:
        service.submit_lake(_as_lake(tables, "bench_serving")).result(timeout=3600)
        service.drain()
        governor.save(directory)
    finally:
        service.close()
        governor.close()


def _identity_calls(tables: Sequence[Table]) -> List[Tuple[str, tuple]]:
    """Deterministic discovery calls — ordered results only.

    Unordered SELECTs are *not* byte-stable across two different stores
    (row order follows each store's physical id layout), so every identity
    query carries an ORDER BY; the similarity APIs return score-ordered
    rows already.
    """
    anchor = tables[0]
    other = tables[min(2, len(tables) - 1)]
    return [
        (
            "query",
            (
                "SELECT ?s ?p ?o WHERE { ?s ?p ?o } "
                f"ORDER BY ?s ?p ?o LIMIT {_IDENTITY_LIMIT}",
            ),
        ),
        (
            "query",
            (
                "SELECT ?s ?o WHERE { ?s "
                "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type> ?o } "
                "ORDER BY ?s ?o",
            ),
        ),
        ("get_unionable_tables", (anchor.dataset, anchor.name, 10)),
        ("get_joinable_tables", (other.dataset, other.name, 10)),
    ]


def _throughput_calls(tables: Sequence[Table]) -> List[Tuple[str, tuple]]:
    """The per-slot client's closed-loop request mix.

    Serving-tier traffic: short scans and point-ish lookups (the dashboard
    / catalog-browse pattern) plus one similarity API per round.  Each call
    is milliseconds of CPU, so a slot's request cycle is dominated by the
    freshness round-trip against the writer — the stall that sibling
    replicas overlap, and therefore exactly the shape where adding serving
    slots buys throughput on a busy lake.  The expensive ordered sweeps
    live in the identity phase, which verifies answers, not throughput.
    """
    anchor = tables[0]
    return [
        (
            "query",
            (
                "SELECT ?n WHERE { ?t <http://kglids.org/ontology/hasName> ?n . "
                "?t <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> "
                "<http://kglids.org/ontology/Table> }",
            ),
        ),
        (
            "query",
            (
                "SELECT ?s ?o WHERE { ?s "
                "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type> ?o } LIMIT 25",
            ),
        ),
        (
            "query",
            (
                "SELECT ?s WHERE { ?s "
                "<http://kglids.org/ontology/hasName> ?n } LIMIT 10",
            ),
        ),
        (
            "query",
            (
                "SELECT ?s WHERE { ?s "
                "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type> "
                "<http://kglids.org/ontology/Table> } LIMIT 10",
            ),
        ),
        ("get_joinable_tables", (anchor.dataset, anchor.name, 5)),
    ]


def _client_session(
    address: Tuple[str, int],
    calls: List[Tuple[str, tuple]],
    ready,
    go,
    stop,
    count,
) -> None:
    """One closed-loop client session in its own OS process.

    Clients run out-of-process so the measurement isn't distorted by the
    writer's GIL: a client thread living next to the governing thread
    would wait a scheduler interval just to *send* a request.
    """
    remote = RemoteLiDSClient(address, pool_size=1)
    index = 0
    served = 0
    try:
        for method, args in calls:  # warm the slot off the clock
            getattr(remote, method)(*args)
        ready.set()
        go.wait()
        while not stop.is_set():
            method, args = calls[index % len(calls)]
            getattr(remote, method)(*args)
            served += 1
            index += 1
            with count.get_lock():
                count.value = served
    finally:
        remote.close()


def _spawn_replicas(
    count: int,
    snapshot: Path,
    writer_address: Tuple[str, int],
    workdir: Path,
    lease: float,
    idle_resync: float,
) -> List[Tuple[multiprocessing.Process, Tuple[str, int]]]:
    """One OS process per replica; returns (process, bound address) pairs."""
    context = multiprocessing.get_context("spawn")
    replicas = []
    for slot in range(count):
        replica_dir = workdir / f"replica{slot}"
        shutil.copytree(snapshot, replica_dir)
        ready = workdir / f"replica{slot}.ready"
        process = context.Process(
            target=serve_replica,
            args=(writer_address[0], writer_address[1], str(replica_dir)),
            kwargs={
                "lease": lease,
                "idle_resync": idle_resync,
                "ready_file": str(ready),
            },
            daemon=True,
        )
        process.start()
        deadline = time.monotonic() + 180.0
        address: Optional[Tuple[str, int]] = None
        while time.monotonic() < deadline:
            if ready.exists():
                try:
                    info = json.loads(ready.read_text())
                    address = (info["host"], int(info["port"]))
                    break
                except (ValueError, KeyError):
                    pass  # partially written; retry
            if not process.is_alive():
                raise RuntimeError(f"replica {slot} died during bootstrap")
            time.sleep(0.05)
        if address is None:
            process.terminate()
            raise RuntimeError(f"replica {slot} never became ready")
        replicas.append((process, address))
    return replicas


def _run_config(
    num_replicas: int,
    snapshot: Path,
    extras: Sequence[Table],
    identity: List[Tuple[str, tuple]],
    throughput: List[Tuple[str, tuple]],
    lease: float,
    idle_resync: float,
    pace: float,
) -> Dict:
    """One replica-count configuration: stream, measure, converge, verify."""
    workdir = Path(tempfile.mkdtemp(prefix=f"bench_serving_{num_replicas}_"))
    writer_dir = workdir / "writer"
    shutil.copytree(snapshot, writer_dir)
    governor = KGGovernor.open(writer_dir)
    service = GovernorService(governor)
    client = LiDSClient(service)
    server = LiDSServer(client)
    remotes: List[RemoteLiDSClient] = []
    processes: List[multiprocessing.Process] = []
    try:
        replicas = _spawn_replicas(
            num_replicas, snapshot, server.address, workdir, lease, idle_resync
        )
        processes = [process for process, _ in replicas]
        remotes = [
            RemoteLiDSClient(address, pool_size=1) for _, address in replicas
        ]
        # One closed-loop client session per serving slot, each in its own
        # OS process (see _client_session); warm-up happens before `go`.
        context = multiprocessing.get_context("spawn")
        go = context.Event()
        stop = context.Event()
        readies = [context.Event() for _ in range(num_replicas)]
        counts = [context.Value("i", 0) for _ in range(num_replicas)]
        clients = [
            context.Process(
                target=_client_session,
                args=(
                    replicas[slot][1],
                    throughput,
                    readies[slot],
                    go,
                    stop,
                    counts[slot],
                ),
                daemon=True,
            )
            for slot in range(num_replicas)
        ]
        for client_process in clients:
            client_process.start()
        for ready in readies:
            if not ready.wait(timeout=180.0):
                raise RuntimeError("client session never became ready")
        started = time.perf_counter()
        go.set()
        # The measured window: the writer streams the remaining lake.
        tickets = []
        for table in extras:
            tickets.append(
                service.submit_table(table.copy(), table.dataset or "default")
            )
            if pace:
                time.sleep(pace)
        for ticket in tickets:
            ticket.result(timeout=3600)
        service.drain()
        elapsed = time.perf_counter() - started
        stop.set()
        for client_process in clients:
            client_process.join(timeout=30.0)
            if client_process.is_alive():
                client_process.terminate()
        queries = sum(count.value for count in counts)

        # Convergence: every replica's pinned version must reach the
        # writer's final commit version once streaming drains (the idle
        # ticks keep syncing without client traffic).
        final_version = client.commit_version
        converged = True
        for remote in remotes:
            deadline = time.monotonic() + 120.0
            while remote.commit_version < final_version:
                if time.monotonic() > deadline:
                    converged = False
                    break
                time.sleep(0.05)

        # Byte-identity: ordered discovery through a replica vs in-process.
        identical = True
        for method, args in identity:
            local = canonical_json(encode_value(getattr(client, method)(*args)))
            via_replica = canonical_json(
                encode_value(getattr(remotes[0], method)(*args))
            )
            if local != via_replica:
                identical = False
                break

        stats = remotes[0].server_stats()
        replication = stats.get("replication", {})
        return {
            "replicas": num_replicas,
            "seconds": round(elapsed, 4),
            "queries": queries,
            "qps": round(queries / elapsed, 2) if elapsed > 0 else 0.0,
            "converged": converged,
            "identical": identical,
            "final_version": final_version,
            "delta_pulls": int(replication.get("delta_pulls", 0)),
            "full_pulls": int(replication.get("full_pulls", 0)),
            "syncs": int(replication.get("syncs", 0)),
            "pull_seconds": round(float(replication.get("pull_seconds", 0.0)), 3),
            "apply_seconds": round(float(replication.get("apply_seconds", 0.0)), 3),
            "dispatch_seconds": float(stats.get("dispatch_seconds", 0.0)),
        }
    finally:
        for remote in remotes:
            try:
                remote.shutdown_server()
            except Exception:
                pass
            remote.close()
        for process in processes:
            process.join(timeout=15.0)
            if process.is_alive():
                process.terminate()
        server.close()
        service.close()
        governor.close()
        shutil.rmtree(workdir, ignore_errors=True)


def run_benchmark(
    num_tables: int,
    rows: int,
    stream_tables: int,
    replica_counts: Sequence[int] = (1, 2, 4),
    lease: float = 0.01,
    idle_resync: float = 2.0,
    pace: float = 0.0,
    seed: int = 11,
) -> Dict:
    tables = _bench_tables(num_tables, rows, seed)
    stream_tables = min(stream_tables, max(1, len(tables) - 2))
    initial, extras = tables[:-stream_tables], tables[-stream_tables:]
    identity = _identity_calls(initial)
    throughput = _throughput_calls(initial)

    snapshot_root = Path(tempfile.mkdtemp(prefix="bench_serving_snapshot_"))
    snapshot = snapshot_root / "snapshot"
    try:
        _build_snapshot(initial, snapshot)
        runs = [
            _run_config(
                count, snapshot, extras, identity, throughput, lease, idle_resync, pace
            )
            for count in replica_counts
        ]
    finally:
        shutil.rmtree(snapshot_root, ignore_errors=True)

    by_count = {run["replicas"]: run for run in runs}
    base_qps = by_count[min(by_count)]["qps"]
    peak = by_count[max(by_count)]
    speedup = peak["qps"] / base_qps if base_qps > 0 else 0.0
    return {
        "config": {
            "num_tables": num_tables,
            "rows": rows,
            "stream_tables": stream_tables,
            "replica_counts": list(replica_counts),
            "lease": lease,
            "idle_resync": idle_resync,
            "pace": pace,
            "seed": seed,
            "cpu_count": os.cpu_count(),
        },
        **{f"qps_{run['replicas']}": run["qps"] for run in runs},
        "read_scaling_speedup": round(speedup, 3),
        "rows_identical_remote": all(run["identical"] for run in runs),
        "replicas_converged": all(run["converged"] for run in runs),
        "full_pulls": sum(run["full_pulls"] for run in runs),
        "runs": runs,
    }


def print_report(report: Dict) -> None:
    config = report["config"]
    rows = []
    base = report["runs"][0]["qps"] or 1.0
    for run in report["runs"]:
        rows.append(
            [
                f"{run['replicas']} replica(s)",
                run["qps"],
                round(run["qps"] / base, 2),
                run["queries"],
                run["syncs"],
            ]
        )
    print(
        format_report_table(
            ["serving slots", "queries/sec", "scaling", "queries", "syncs"],
            rows,
            title=(
                f"Serving tier bench ({config['num_tables']} tables, "
                f"{config['stream_tables']} streamed, lease={config['lease']})"
            ),
        )
    )
    print(
        f"read scaling speedup {report['read_scaling_speedup']}x; "
        f"rows identical via replica: {report['rows_identical_remote']}; "
        f"replicas converged: {report['replicas_converged']}; "
        f"full pulls: {report['full_pulls']}"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tables", type=int, default=200)
    parser.add_argument("--rows", type=int, default=20)
    parser.add_argument("--stream", type=int, default=60)
    parser.add_argument("--lease", type=float, default=0.01)
    parser.add_argument("--idle-resync", type=float, default=2.0)
    parser.add_argument("--pace", type=float, default=0.0)
    parser.add_argument("--replicas", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--output", type=Path, default=RESULT_PATH)
    args = parser.parse_args()
    report = run_benchmark(
        args.tables,
        args.rows,
        args.stream,
        replica_counts=args.replicas,
        lease=args.lease,
        idle_resync=args.idle_resync,
        pace=args.pace,
    )
    print_report(report)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")


# ------------------------------------------------------------ pytest smoke
def test_serving_smoke():
    """Smoke configuration: correctness must hold at toy scale; the scaling
    bar is held by the committed full-size BENCH_serving.json via
    check_regressions.py, not by this noise-prone small run.
    """
    num_tables = 10 if os.environ.get("REPRO_BENCH_SMOKE") else 16
    report = run_benchmark(
        num_tables,
        rows=12,
        stream_tables=4,
        replica_counts=(1, 2),
    )
    assert report["rows_identical_remote"]
    assert report["replicas_converged"]
    assert all(run["queries"] > 0 for run in report["runs"])


if __name__ == "__main__":
    main()
