"""Extra ablation — the α / θ similarity thresholds of Algorithm 3.

Section 3.3 describes the trade-off qualitatively: higher thresholds yield
fewer but more precise similarity edges (high precision, low recall) and
lower thresholds the reverse.  This bench sweeps the label (α) and content
(θ) thresholds on the TUS-style benchmark and reports edge counts,
precision@k and recall@k so the trade-off is visible as data.
"""

import numpy as np
import pytest

from _helpers import KGLiDSDiscovery, rankings_for_benchmark
from repro.eval import average_precision_recall_at_k, format_report_table
from repro.kg.dataset_graph import DataGlobalSchemaBuilder, SimilarityThresholds

SWEEP = [
    ("strict", SimilarityThresholds(alpha=0.95, beta=0.98, theta=0.999)),
    ("default", SimilarityThresholds()),
    ("loose", SimilarityThresholds(alpha=0.60, beta=0.80, theta=0.93)),
]
K_VALUES = [1, 3, 5]


def test_threshold_ablation(discovery_workloads, profiled_workloads, benchmark):
    workload = discovery_workloads["tus_small"]
    profiles = profiled_workloads["tus_small"]
    ground_truth = {q: workload.ground_truth[q] for q in workload.query_tables}
    rows = []
    edge_counts = {}
    recalls = {}
    for name, thresholds in SWEEP:
        builder = DataGlobalSchemaBuilder(thresholds=thresholds)
        edges = builder.compute_column_similarities(profiles)
        discovery = KGLiDSDiscovery(builder)
        discovery.preprocess(profiles)
        metrics = average_precision_recall_at_k(
            rankings_for_benchmark(discovery, workload), ground_truth, K_VALUES
        )
        edge_counts[name] = len(edges)
        recalls[name] = np.mean([r for _, r in metrics.values()])
        for k, (precision, recall) in metrics.items():
            rows.append(
                [name, thresholds.alpha, thresholds.theta, len(edges), k, round(precision, 3), round(recall, 3)]
            )
    print()
    print(
        format_report_table(
            ["setting", "alpha", "theta", "similarity edges", "k", "precision@k", "recall@k"],
            rows,
            title="Ablation: similarity thresholds of Algorithm 3",
        )
    )

    # Shape: stricter thresholds materialize fewer edges; looser thresholds
    # never reduce the number of edges.
    assert edge_counts["strict"] <= edge_counts["default"] <= edge_counts["loose"]

    benchmark.pedantic(
        lambda: DataGlobalSchemaBuilder(thresholds=SWEEP[1][1]).compute_column_similarities(profiles),
        rounds=1,
        iterations=1,
    )
