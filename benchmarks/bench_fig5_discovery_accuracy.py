"""Figure 5 — Precision@k and Recall@k of unionable-table discovery.

Compares KGLiDS, Starmie and SANTOS on the D3L-, TUS- and SANTOS-style
benchmarks.  The expected shape: KGLiDS matches or beats the baselines,
with the largest margin on the hard (D3L-style) benchmark where columns are
renamed and rescaled; all systems are closer on the easy synthetic ones.
"""

import numpy as np
import pytest

from _helpers import KGLiDSDiscovery, baseline_rankings, rankings_for_benchmark
from repro.baselines import SantosUnionSearch, StarmieUnionSearch
from repro.eval import average_precision_recall_at_k, format_report_table

#: k values evaluated per benchmark (the paper's settings scaled to lake size).
ACCURACY_SETTINGS = {
    "d3l_small": [1, 2, 3, 5],
    "tus_small": [1, 2, 3, 5],
    "santos_small": [1, 2, 3],
}


def _accuracy(rankings, benchmark_data, k_values):
    ground_truth = {q: benchmark_data.ground_truth[q] for q in benchmark_data.query_tables}
    return average_precision_recall_at_k(rankings, ground_truth, k_values)


def test_fig5_union_search_accuracy(discovery_workloads, profiled_workloads, benchmark):
    rows = []
    mean_precision = {"KGLiDS": [], "Starmie": [], "SANTOS": []}
    for style, k_values in ACCURACY_SETTINGS.items():
        workload = discovery_workloads[style]
        kglids = KGLiDSDiscovery()
        kglids.preprocess(profiled_workloads[style])
        starmie = StarmieUnionSearch(training_epochs=5)
        starmie.preprocess(workload.lake)
        santos = SantosUnionSearch()
        santos.preprocess(workload.lake)
        system_rankings = {
            "KGLiDS": rankings_for_benchmark(kglids, workload),
            "Starmie": baseline_rankings(starmie, workload),
            "SANTOS": baseline_rankings(santos, workload),
        }
        for system_name, rankings in system_rankings.items():
            metrics = _accuracy(rankings, workload, k_values)
            for k, (precision, recall) in metrics.items():
                rows.append([style, system_name, k, round(precision, 3), round(recall, 3)])
            mean_precision[system_name].append(np.mean([p for p, _ in metrics.values()]))
    print()
    print(
        format_report_table(
            ["benchmark", "system", "k", "precision@k", "recall@k"],
            rows,
            title="Figure 5: unionable-table discovery accuracy",
        )
    )

    # Shape assertion: averaged over benchmarks and k, KGLiDS is at least as
    # accurate as both baselines.
    kglids_mean = np.mean(mean_precision["KGLiDS"])
    assert kglids_mean >= np.mean(mean_precision["Starmie"]) - 0.05
    assert kglids_mean >= np.mean(mean_precision["SANTOS"]) - 0.05
    assert kglids_mean > 0.5

    # Benchmarked operation: ranking all queries of the TUS-style benchmark.
    kglids = KGLiDSDiscovery()
    kglids.preprocess(profiled_workloads["tus_small"])
    benchmark(lambda: rankings_for_benchmark(kglids, discovery_workloads["tus_small"]))
