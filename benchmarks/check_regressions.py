#!/usr/bin/env python
"""Compare freshly emitted ``BENCH_*.json`` files against committed baselines.

Perf benches write machine-readable ``BENCH_*.json`` files next to this
script; committed snapshots of the same files live in ``baselines/``.  This
checker recursively collects every dimensionless ``*speedup*`` / ``*recall*``
metric (and boolean invariants like ``graphs_identical``) from both versions
and exits
non-zero when a fresh metric regresses more than the tolerance (default 20%)
below its baseline — so construction / query speedups regress loudly instead
of silently rotting.

Absolute wall-clock seconds are deliberately *not* compared: they vary with
the host machine, while speedup ratios (measured within one run) are stable.

Usage::

    python benchmarks/check_regressions.py              # 20% tolerance
    python benchmarks/check_regressions.py --tolerance 0.1
    python benchmarks/check_regressions.py --strict     # missing fresh files fail

``run_all.py`` invokes this after the smoke suite, so a full-size bench rerun
that regresses (or a bench that stops emitting its JSON) fails CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Tuple

BENCH_DIR = Path(__file__).resolve().parent
BASELINE_DIR = BENCH_DIR / "baselines"
DEFAULT_TOLERANCE = 0.20


def _numeric_metrics(payload, prefix: str = "") -> Iterator[Tuple[str, float]]:
    """Yield ``(dotted.path, value)`` for every comparable metric in a report.

    Comparable metrics are numbers under a key containing ``speedup`` or
    ``recall`` (dimensionless, host-independent, where lower is strictly
    worse — which is why ``pruning_ratio`` is excluded: a lower ratio means
    *more* pruning) and booleans (invariants that must not flip to
    ``False``).
    """
    if isinstance(payload, dict):
        for key, value in payload.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, bool):
                yield path, float(value)
            elif isinstance(value, (int, float)) and any(
                token in str(key).lower() for token in ("speedup", "recall", "identical")
            ):
                yield path, float(value)
            elif isinstance(value, (dict, list)):
                yield from _numeric_metrics(value, path)
    elif isinstance(payload, list):
        for position, value in enumerate(payload):
            if isinstance(value, (dict, list)):
                yield from _numeric_metrics(value, f"{prefix}[{position}]")


def compare_report(
    fresh: Dict, baseline: Dict, tolerance: float
) -> List[Tuple[str, float, float]]:
    """``(metric, baseline_value, fresh_value)`` for every regressed metric."""
    fresh_metrics = dict(_numeric_metrics(fresh))
    regressions: List[Tuple[str, float, float]] = []
    for metric, baseline_value in _numeric_metrics(baseline):
        fresh_value = fresh_metrics.get(metric)
        if fresh_value is None:
            # Queries/sections may legitimately come and go between runs
            # (e.g. a degenerate graph has no similarity edges to query).
            continue
        if "speedup" in metric.lower() and baseline_value < 1.0:
            # A sub-1.0 speedup is not a win being protected — it is timing
            # noise on a sub-millisecond query; comparing it would flake.
            continue
        floor = baseline_value * (1.0 - tolerance)
        if fresh_value < floor:
            regressions.append((metric, baseline_value, fresh_value))
    return regressions


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    parser.add_argument("--fresh-dir", type=Path, default=BENCH_DIR)
    parser.add_argument("--baseline-dir", type=Path, default=BASELINE_DIR)
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail when a baselined BENCH file is missing from the fresh dir",
    )
    args = parser.parse_args(argv)

    baselines = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"no baselines under {args.baseline_dir}", file=sys.stderr)
        return 2

    failures = 0
    for baseline_path in baselines:
        fresh_path = args.fresh_dir / baseline_path.name
        if not fresh_path.exists():
            message = f"{baseline_path.name}: no freshly emitted file"
            if args.strict:
                print(f"FAIL {message}", file=sys.stderr)
                failures += 1
            else:
                print(f"skip {message}")
            continue
        fresh = json.loads(fresh_path.read_text())
        baseline = json.loads(baseline_path.read_text())
        regressions = compare_report(fresh, baseline, args.tolerance)
        if regressions:
            failures += 1
            print(f"FAIL {baseline_path.name}:", file=sys.stderr)
            for metric, baseline_value, fresh_value in regressions:
                print(
                    f"  {metric}: {fresh_value:g} < {baseline_value:g} "
                    f"(-{(1 - fresh_value / baseline_value) * 100:.0f}%, "
                    f"tolerance {args.tolerance * 100:.0f}%)",
                    file=sys.stderr,
                )
        else:
            print(f"ok   {baseline_path.name}")
    if failures:
        print(f"{failures} benchmark file(s) regressed", file=sys.stderr)
        return 1
    print("no perf regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
