"""Benchmark — the lake crawler: continuous ingestion under chaos.

Models the workload the crawler subsystem exists for: a directory lake
that keeps *drifting* (tables mutate, arrive and vanish between scan
passes) while the crawler discovers the changes, diffs them against what
it already governed, and feeds the governor service.

Two runs of the identical drift script are timed:

* **clean** — a plain :class:`DirectorySource`; every load succeeds.
* **chaos** — the same source wrapped in :class:`ChaosSource` firing the
  full fault matrix at low, seeded rates (truncated reads, permission
  errors, malformed rows, slow reads, source flaps, phantom deletes).
  Faults cost retries, backoff waits and breaker trips; the headline
  question is how much crawl throughput survives.

Reported metrics:

* ``clean_tables_per_min`` / ``chaos_tables_per_min`` — governed table
  events (submit + refresh + retract) per minute of crawl time;
* ``chaos_throughput_ratio`` — chaos / clean (informational: not named
  ``*speedup*`` on purpose, the gated form is the boolean below);
* ``chaos_within_tolerance`` — ratio >= 0.75, the ISSUE acceptance bound
  (chaos throughput within 25% of fault-free);
* ``graphs_identical_clean`` / ``graphs_identical_chaos`` — each run's
  final governed graph is byte-identical to a clean one-shot
  ``KGGovernor.add_data_lake`` of the end-state directory, i.e. neither
  incremental crawling nor injected faults leave any residue.

Both booleans are gated by ``check_regressions.py``.  Results are written
to ``benchmarks/BENCH_crawler.json``.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_crawler.py --tables 24

or as a pytest smoke test (small sizes, used by ``run_all.py``)::

    PYTHONPATH=src python -m pytest benchmarks/bench_crawler.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import tempfile
import time
from pathlib import Path
from typing import Dict, List

from repro.crawler import ChaosConfig, ChaosSource, DirectorySource, LakeCrawler
from repro.datagen import generate_discovery_benchmark
from repro.eval import format_report_table
from repro.kg import GovernorService, KGGovernor
from repro.rdf.serialize import serialize_nquads
from repro.tabular import DataLake, Table, write_csv

RESULT_PATH = Path(__file__).parent / "BENCH_crawler.json"

# Low per-fault rates: chaos should *stress* the crawl, not drown it —
# the acceptance bound is throughput within 25% of fault-free.
CHAOS_RATES = dict(
    truncate_rate=0.02,
    permission_rate=0.02,
    malformed_rate=0.02,
    slow_rate=0.03,
    flap_rate=0.02,
    delete_rate=0.02,
    slow_seconds=0.01,
)


def _bench_tables(num_tables: int, rows: int, seed: int) -> List[Table]:
    """Deterministic overlapping-schema tables from the datagen benchmark."""
    partitions = 4 if num_tables >= 16 else 2
    base_tables = (num_tables + partitions - 1) // partitions
    benchmark = generate_discovery_benchmark(
        "tus_small", seed=seed, base_tables=base_tables, partitions=partitions, rows=rows
    )
    return benchmark.lake.tables()[:num_tables]


def _write_initial_lake(root: Path, tables: List[Table]) -> None:
    for table in tables:
        write_csv(table, root / (table.dataset or "loose") / f"{table.name}.csv")


def _drift_round(root: Path, rng: random.Random, round_index: int, extras: List[Table]) -> int:
    """Mutate / add / delete files; returns the number of events applied."""
    files = sorted(root.rglob("*.csv"))
    events = 0
    # Mutate: append one deterministic row to a few tables.
    for path in rng.sample(files, k=min(3, len(files))):
        with path.open("r", encoding="utf-8") as handle:
            width = len(handle.readline().rstrip("\n").split(","))
        with path.open("a", encoding="utf-8") as handle:
            handle.write(",".join([f"{round_index}.5"] * width) + "\n")
        events += 1
    # Add: bring one reserved table into the lake.
    if extras:
        table = extras.pop()
        write_csv(
            table, root / (table.dataset or "loose") / f"{table.name}_r{round_index}.csv"
        )
        events += 1
    # Delete: one table leaves (not on the first round — keep the lake big).
    files = sorted(root.rglob("*.csv"))
    if round_index > 0 and len(files) > 4:
        files[rng.randrange(len(files))].unlink()
        events += 1
    return events


def _crawl_scenario(
    root: Path,
    tables: List[Table],
    extras: List[Table],
    drift_rounds: int,
    drift_seed: int,
    chaos: bool,
    chaos_seed: int,
) -> Dict:
    """Run the drift script against a fresh crawler; time the crawl work."""
    _write_initial_lake(root, [table.copy() for table in tables])
    source = DirectorySource(root, name="bench")
    chaos_source = None
    if chaos:
        chaos_source = ChaosSource(source, ChaosConfig(seed=chaos_seed, **CHAOS_RATES))
        source = chaos_source
    service = GovernorService()
    crawler = LakeCrawler(
        service,
        [source],
        scan_interval=0.01,
        load_timeout=5.0,
        scan_timeout=5.0,
        max_load_retries=3,
        backoff_base=0.005,
        backoff_cap=0.05,
        backoff_seed=chaos_seed,
        breaker_threshold=4,
        breaker_reset=0.02,
        poison_after=10_000,  # chaos faults are transient, never poison
    )
    rng = random.Random(drift_seed)

    def crawl_until_idle(max_passes: int = 200) -> None:
        for _ in range(max_passes):
            crawler.scan_once()
            if crawler.stats()["idle"]:
                return

    started = time.perf_counter()
    crawl_until_idle()
    for round_index in range(drift_rounds):
        _drift_round(root, rng, round_index, extras)
        crawl_until_idle()
    if chaos_source is not None:
        chaos_source.calm()
    crawl_until_idle()
    elapsed = time.perf_counter() - started

    stats = crawler.stats()
    totals = stats["totals"]
    events = totals["submitted"] + totals["refreshed"] + totals["retracted"]
    crawled_graph = serialize_nquads(service.governor.storage.graph)
    crawler.close()
    service.close()

    one_shot = KGGovernor()
    one_shot.add_data_lake(DataLake.from_directory(root))
    graphs_identical = crawled_graph == serialize_nquads(one_shot.storage.graph)
    one_shot.close()
    service.governor.close()

    return {
        "seconds": elapsed,
        "events": events,
        "tables_per_min": (events / elapsed * 60.0) if elapsed > 0 else 0.0,
        "passes": stats["passes"],
        "graphs_identical": graphs_identical,
        "totals": totals,
        "breaker_trips": sum(
            entry["breaker_trips"] for entry in stats["sources"].values()
        ),
        "chaos_fired": dict(chaos_source.stats.fired) if chaos_source else {},
    }


def run_benchmark(
    num_tables: int, rows: int, drift_rounds: int, seed: int = 7
) -> Dict:
    tables = _bench_tables(num_tables + drift_rounds, rows, seed)
    initial, extras = tables[:num_tables], tables[num_tables:]
    # Warm process-wide caches (word vectors, NER) off the clock.
    KGGovernor().add_data_lake(_as_lake(tables[:2]))

    runs = {}
    for label, with_chaos in (("clean", False), ("chaos", True)):
        workdir = Path(tempfile.mkdtemp(prefix=f"bench_crawler_{label}_"))
        try:
            runs[label] = _crawl_scenario(
                workdir / "lake",
                initial,
                list(extras),
                drift_rounds,
                drift_seed=seed,
                chaos=with_chaos,
                chaos_seed=seed + 1,
            )
        finally:
            shutil.rmtree(workdir, ignore_errors=True)

    clean, chaos = runs["clean"], runs["chaos"]
    ratio = (
        chaos["tables_per_min"] / clean["tables_per_min"]
        if clean["tables_per_min"] > 0
        else 0.0
    )
    return {
        "config": {
            "num_tables": num_tables,
            "rows": rows,
            "drift_rounds": drift_rounds,
            "seed": seed,
            "chaos_rates": CHAOS_RATES,
            "cpu_count": os.cpu_count(),
        },
        "clean_seconds": round(clean["seconds"], 4),
        "chaos_seconds": round(chaos["seconds"], 4),
        "clean_tables_per_min": round(clean["tables_per_min"], 2),
        "chaos_tables_per_min": round(chaos["tables_per_min"], 2),
        "clean_events": clean["events"],
        "chaos_events": chaos["events"],
        "chaos_throughput_ratio": round(ratio, 3),
        "chaos_within_tolerance": ratio >= 0.75,
        "graphs_identical_clean": clean["graphs_identical"],
        "graphs_identical_chaos": chaos["graphs_identical"],
        "chaos_detail": {
            "passes": chaos["passes"],
            "breaker_trips": chaos["breaker_trips"],
            "retries": chaos["totals"]["retries"],
            "load_failures": chaos["totals"]["load_failures"],
            "faults_fired": chaos["chaos_fired"],
        },
    }


def _as_lake(tables: List[Table]) -> DataLake:
    lake = DataLake("bench_crawler_warm")
    for table in tables:
        lake.add_table(table.dataset, table.copy())
    return lake


def print_report(report: Dict) -> None:
    config = report["config"]
    detail = report["chaos_detail"]
    rows = [
        ["clean crawl (s)", report["clean_seconds"], ""],
        ["chaos crawl (s)", report["chaos_seconds"], ""],
        ["clean tables/min", report["clean_tables_per_min"], ""],
        [
            "chaos tables/min",
            report["chaos_tables_per_min"],
            report["chaos_throughput_ratio"],
        ],
        ["chaos retries", detail["retries"], ""],
        ["chaos breaker trips", detail["breaker_trips"], ""],
    ]
    print(
        format_report_table(
            ["metric", "value", "ratio"],
            rows,
            title=f"Lake crawler bench ({config['num_tables']} tables, "
            f"{config['drift_rounds']} drift rounds)",
        )
    )
    print(
        f"chaos throughput ratio {report['chaos_throughput_ratio']} "
        f"(within 25% tolerance: {report['chaos_within_tolerance']}); "
        f"graphs identical clean/chaos: {report['graphs_identical_clean']}/"
        f"{report['graphs_identical_chaos']}; faults fired: {detail['faults_fired']}"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tables", type=int, default=24)
    parser.add_argument("--rows", type=int, default=50)
    parser.add_argument("--drift-rounds", type=int, default=3)
    parser.add_argument("--output", type=Path, default=RESULT_PATH)
    args = parser.parse_args()
    if args.tables < 4:
        parser.error("--tables must be >= 4 (drift deletes need slack)")
    report = run_benchmark(args.tables, args.rows, args.drift_rounds)
    print_report(report)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")


# ------------------------------------------------------------ pytest smoke
def test_crawler_smoke():
    """Smoke configuration: the crawl must stay correct; throughput bars are
    held by the committed full-size BENCH_crawler.json via
    check_regressions.py (booleans), not by this noise-prone small run.
    """
    num_tables = 6 if os.environ.get("REPRO_BENCH_SMOKE") else 10
    report = run_benchmark(num_tables=num_tables, rows=30, drift_rounds=2)
    assert report["graphs_identical_clean"]
    assert report["graphs_identical_chaos"]
    assert report["clean_events"] >= num_tables
    assert report["chaos_events"] >= num_tables
    # Loose smoke floor: chaos at these rates must not halve throughput.
    assert report["chaos_throughput_ratio"] >= 0.5


if __name__ == "__main__":
    main()
