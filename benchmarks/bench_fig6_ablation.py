"""Figure 6 — Ablation of the KGLiDS discovery configuration (TUS-style lake).

Four configurations are compared, as in the paper:

* **KGLiDS** — label similarity + fine-grained CoLR content similarity;
* **Fine-Grained (No Subsampling)** — content similarity only, embedding the
  full columns instead of the 10% sample;
* **Fine-Grained** — content similarity only, with subsampling;
* **Coarse-Grained** — content similarity only with the three coarse-grained
  embedding models (numeric / string / other).

Expected shape: the full configuration is the most accurate; fine-grained
content-only remains competitive; coarse-grained is clearly worse; and
subsampling does not change accuracy materially while reducing profiling time.
"""

import time

import numpy as np
import pytest

from _helpers import KGLiDSDiscovery, rankings_for_benchmark
from repro.embeddings import CoarseGrainedModelSet
from repro.eval import average_precision_recall_at_k, format_report_table
from repro.kg.dataset_graph import DataGlobalSchemaBuilder
from repro.profiler import DataProfiler

K_VALUES = [1, 2, 3, 5]


def _evaluate(profiles, workload, use_label):
    discovery = KGLiDSDiscovery(DataGlobalSchemaBuilder(use_label_similarity=use_label))
    discovery.preprocess(profiles)
    rankings = rankings_for_benchmark(discovery, workload)
    ground_truth = {q: workload.ground_truth[q] for q in workload.query_tables}
    return average_precision_recall_at_k(rankings, ground_truth, K_VALUES)


def test_fig6_ablation(discovery_workloads, profiled_workloads, benchmark):
    workload = discovery_workloads["tus_small"]
    configurations = {}

    fine_profiles = profiled_workloads["tus_small"]
    configurations["KGLiDS (CoLR + label)"] = _evaluate(fine_profiles, workload, use_label=True)
    configurations["Fine-Grained"] = _evaluate(fine_profiles, workload, use_label=False)

    started = time.perf_counter()
    no_subsample_profiles = DataProfiler(sample_fraction=1.0, min_sample_size=10**6).profile_data_lake(
        workload.lake
    )
    no_subsample_time = time.perf_counter() - started
    configurations["Fine-Grained (No Subsampling)"] = _evaluate(
        no_subsample_profiles, workload, use_label=False
    )

    started = time.perf_counter()
    subsample_profiles = DataProfiler(sample_fraction=0.1, min_sample_size=20).profile_data_lake(
        workload.lake
    )
    subsample_time = time.perf_counter() - started
    coarse_profiles = DataProfiler(colr_models=CoarseGrainedModelSet()).profile_data_lake(workload.lake)
    configurations["Coarse-Grained"] = _evaluate(coarse_profiles, workload, use_label=False)

    rows = []
    mean_precision = {}
    for name, metrics in configurations.items():
        for k, (precision, recall) in metrics.items():
            rows.append([name, k, round(precision, 3), round(recall, 3)])
        mean_precision[name] = np.mean([p for p, _ in metrics.values()])
    rows.append(["profiling time: 10% subsample (s)", "-", round(subsample_time, 2), "-"])
    rows.append(["profiling time: full columns (s)", "-", round(no_subsample_time, 2), "-"])
    print()
    print(
        format_report_table(
            ["configuration", "k", "precision@k", "recall@k"],
            rows,
            title="Figure 6: ablation on the TUS-style benchmark",
        )
    )

    # Shape assertions mirroring the paper's findings.
    assert mean_precision["KGLiDS (CoLR + label)"] >= mean_precision["Fine-Grained"] - 1e-9
    assert mean_precision["Fine-Grained"] >= mean_precision["Coarse-Grained"] - 0.05
    no_subsampling_gap = abs(
        mean_precision["Fine-Grained"] - mean_precision["Fine-Grained (No Subsampling)"]
    )
    assert no_subsampling_gap <= 0.25

    benchmark.pedantic(
        lambda: _evaluate(fine_profiles, workload, use_label=True), rounds=1, iterations=1
    )
