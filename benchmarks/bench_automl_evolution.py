"""Benchmark — evolutionary AutoML with KG priors vs budgeted random search.

Scenario: a lake is governed end-to-end (tables + a Kaggle-style pipeline
corpus), a :class:`LiDSClient` fronts the resulting graph, and for every
held-out AutoML dataset two searches run at the **same evaluation budget**
(in full-evaluation cost units; the evolutionary loop charges subsample
screens at their fraction and is hard-capped so it can never outspend the
baseline):

* ``evolution`` — the GOLEM-style pipeline-graph optimizer seeded and biased
  by SPARQL-harvested KG priors (the default ``LiDSClient.automl`` strategy);
* ``random`` — the deduped budgeted random search over bare estimator
  configurations (``strategy="random"``).

Reported gates (all booleans are regression-checked):

* ``evolution_matches_or_beats_random`` — mean best-F1 parity-or-win at the
  equal budget;
* ``priors_informed`` — the prior book actually harvested usage evidence
  from the governed pipeline graph;
* ``equal_budget_respected`` — neither strategy overdrew the budget;
* ``deterministic.identical_across_runs`` / ``identical_across_backends`` —
  the same seed yields byte-identical best genome and score on repeat runs
  and across the serial / threads / processes executor backends.

Fitness-cache hit counters and multi-fidelity promotion stats are reported
alongside.  Results go to ``benchmarks/BENCH_automl.json`` (gated against
``baselines/BENCH_automl.json`` by ``check_regressions.py``).  Run
standalone::

    PYTHONPATH=src python benchmarks/bench_automl_evolution.py --tables 200

or as a pytest smoke test (small sizes, used by ``run_all.py --smoke``)::

    PYTHONPATH=src python -m pytest benchmarks/bench_automl_evolution.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.automl import KGpipAutoML
from repro.datagen import (
    generate_discovery_benchmark,
    generate_pipeline_corpus,
    generate_transformation_datasets,
)
from repro.eval import format_report_table
from repro.interfaces import LiDSClient
from repro.kg.governor import KGGovernor
from repro.parallel import JobExecutor

RESULT_PATH = Path(__file__).parent / "BENCH_automl.json"

#: Mean-F1 slack under which "matches or beats" holds (two searches tying
#: within a point of F1 are a tie, not a loss).
PARITY_SLACK = 0.01


def govern_lake(num_tables: int, rows: int, seed: int) -> LiDSClient:
    """A LiDSClient over a governed lake: tables plus a pipeline corpus."""
    partitions = 5 if num_tables >= 25 else 3
    base_tables = (num_tables + partitions - 1) // partitions
    benchmark = generate_discovery_benchmark(
        "tus_small", seed=seed, base_tables=base_tables, partitions=partitions, rows=rows
    )
    corpus = generate_pipeline_corpus(
        benchmark.lake, pipelines_per_table=2, seed=seed + 1
    )
    governor = KGGovernor()
    governor.bootstrap(lake=benchmark.lake, scripts=corpus)
    return LiDSClient(governor)


def _search(
    client: LiDSClient,
    dataset,
    strategy: str,
    budget: int,
    cv: int,
    seed: int,
    executor: JobExecutor = None,
):
    searcher = KGpipAutoML(
        storage=client.storage,
        profiler=client.governor.profiler,
        colr_models=client.governor.colr_models,
        use_lids_priors=True,
        random_state=seed,
        executor=executor or JobExecutor(),
    )
    return searcher.search(
        dataset.table,
        dataset.target,
        time_budget_seconds=None,
        max_evaluations=budget,
        cv=cv,
        strategy=strategy,
    )


def compare_strategies(
    client: LiDSClient, datasets: List, budget: int, cv: int, seed: int
) -> Dict:
    """Evolution-with-priors vs deduped random at one shared budget."""
    rows = []
    differences = []
    budget_ok = True
    cache_totals = {"hits": 0, "misses": 0, "entries": 0}
    fidelity_totals = {"screen_evaluations": 0, "full_evaluations": 0, "promotions": 0}
    duplicates_skipped = 0
    for dataset in datasets:
        evolution = _search(client, dataset, "evolution", budget, cv, seed)
        random_baseline = _search(client, dataset, "random", budget, cv, seed)
        difference = evolution.best_score - random_baseline.best_score
        differences.append(difference)
        budget_ok &= evolution.evaluations_spent <= budget + 1e-9
        budget_ok &= random_baseline.evaluations_spent <= budget + 1e-9
        for key in cache_totals:
            cache_totals[key] += evolution.cache_stats.get(key, 0)
        for key in fidelity_totals:
            fidelity_totals[key] += evolution.fidelity_stats.get(key, 0)
        duplicates_skipped += random_baseline.duplicate_samples
        rows.append(
            {
                "dataset": f"{dataset.dataset_id} - {dataset.name}",
                "task": dataset.task,
                "evolution_f1": round(evolution.best_score, 4),
                "random_f1": round(random_baseline.best_score, 4),
                "difference": round(difference, 4),
                "evolution_spent": evolution.evaluations_spent,
                "random_spent": random_baseline.evaluations_spent,
                "generations": evolution.generations_run,
                "stopped_because": evolution.stopped_because,
                "best_estimator": (evolution.best_estimator_name or "").split(".")[-1],
                "best_genome": evolution.best_genome,
            }
        )
    evolution_mean = float(np.mean([row["evolution_f1"] for row in rows]))
    random_mean = float(np.mean([row["random_f1"] for row in rows]))
    wins_or_ties = sum(1 for diff in differences if diff >= -PARITY_SLACK)
    return {
        "datasets": rows,
        "evolution_mean_f1": round(evolution_mean, 4),
        "random_mean_f1": round(random_mean, 4),
        "mean_difference": round(evolution_mean - random_mean, 4),
        "wins_or_ties": wins_or_ties,
        "evolution_matches_or_beats_random": bool(
            evolution_mean >= random_mean - PARITY_SLACK
        ),
        "equal_budget_respected": bool(budget_ok),
        "cache": cache_totals,
        "fidelity": fidelity_totals,
        "random_duplicates_skipped": duplicates_skipped,
    }


def check_determinism(
    client: LiDSClient, dataset, budget: int, cv: int, seed: int
) -> Dict:
    """Same seed ⇒ identical best genome/score across runs and backends."""
    reference = _search(client, dataset, "evolution", budget, cv, seed)
    repeat = _search(client, dataset, "evolution", budget, cv, seed)
    identical_runs = (
        reference.best_genome == repeat.best_genome
        and reference.best_score == repeat.best_score
    )
    identical_backends = True
    for backend in ("threads", "processes"):
        executor = JobExecutor(backend=backend, max_workers=4)
        result = _search(client, dataset, "evolution", budget, cv, seed, executor)
        identical_backends &= (
            result.best_genome == reference.best_genome
            and result.best_score == reference.best_score
        )
    return {
        "identical_across_runs": bool(identical_runs),
        "identical_across_backends": bool(identical_backends),
        "best_score": round(reference.best_score, 6),
        "best_genome": reference.best_genome,
    }


# --------------------------------------------------------------------- main
def run_benchmark(
    num_tables: int,
    rows: int,
    num_datasets: int,
    dataset_rows: int,
    budget: int,
    cv: int,
    seed: int = 11,
) -> Dict:
    started = time.perf_counter()
    client = govern_lake(num_tables, rows, seed)
    # Skew + scale-spread datasets: the regime where searching pipeline
    # *structure* (imputer / scaler / feature nodes), not just estimator
    # configurations, actually moves F1.
    datasets = generate_transformation_datasets(count=num_datasets, base_rows=dataset_rows)
    book = client.kgpip.prior_book()
    report = {
        "config": {
            "num_tables": num_tables,
            "rows": rows,
            "num_datasets": num_datasets,
            "dataset_rows": dataset_rows,
            "budget": budget,
            "cv": cv,
            "seed": seed,
        },
        "priors_informed": bool(book.informed),
        "prior_estimator_ranking": book.estimator_ranking()[:5],
    }
    report.update(compare_strategies(client, datasets, budget, cv, seed))
    report["deterministic"] = check_determinism(client, datasets[0], budget, cv, seed)
    report["elapsed_seconds"] = round(time.perf_counter() - started, 2)
    client.close()
    return report


def print_report(report: Dict) -> None:
    rows = [
        [
            entry["dataset"],
            entry["task"],
            entry["evolution_f1"],
            entry["random_f1"],
            entry["difference"],
            entry["generations"],
            entry["best_estimator"],
        ]
        for entry in report["datasets"]
    ]
    rows.append(
        [
            "mean",
            "-",
            report["evolution_mean_f1"],
            report["random_mean_f1"],
            report["mean_difference"],
            "-",
            "-",
        ]
    )
    print(
        format_report_table(
            ["dataset", "task", "evolution F1", "random F1", "diff", "gens", "best estimator"],
            rows,
            title=(
                f"Evolutionary AutoML vs random at budget "
                f"{report['config']['budget']} ({report['config']['num_tables']}-table lake)"
            ),
        )
    )
    cache, fidelity = report["cache"], report["fidelity"]
    print(
        f"priors informed: {report['priors_informed']} "
        f"(top estimators: {', '.join(n.split('.')[-1] for n in report['prior_estimator_ranking'][:3])})"
    )
    print(
        f"fitness cache: {cache['hits']} hits / {cache['misses']} misses "
        f"({cache['entries']} entries); multi-fidelity: "
        f"{fidelity['screen_evaluations']} screens, {fidelity['full_evaluations']} fulls, "
        f"{fidelity['promotions']} promotions; random dedup skipped "
        f"{report['random_duplicates_skipped']} duplicate samples"
    )
    deterministic = report["deterministic"]
    print(
        f"deterministic: runs={deterministic['identical_across_runs']} "
        f"backends={deterministic['identical_across_backends']}; "
        f"equal budget respected: {report['equal_budget_respected']}"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tables", type=int, default=200)
    parser.add_argument("--rows", type=int, default=40)
    parser.add_argument("--datasets", type=int, default=6)
    parser.add_argument("--dataset-rows", type=int, default=140)
    parser.add_argument("--budget", type=int, default=10)
    parser.add_argument("--cv", type=int, default=3)
    parser.add_argument("--output", type=Path, default=RESULT_PATH)
    args = parser.parse_args()
    report = run_benchmark(
        args.tables, args.rows, args.datasets, args.dataset_rows, args.budget, args.cv
    )
    print_report(report)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")


# ------------------------------------------------------------ pytest smoke
def test_automl_evolution_smoke():
    """Smoke configuration: every boolean gate must hold at toy sizes."""
    num_tables = 10 if os.environ.get("REPRO_BENCH_SMOKE") else 16
    report = run_benchmark(
        num_tables=num_tables,
        rows=30,
        num_datasets=3,
        dataset_rows=110,
        budget=8,
        cv=2,
    )
    assert report["priors_informed"]
    assert report["evolution_matches_or_beats_random"]
    assert report["equal_budget_respected"]
    assert report["deterministic"]["identical_across_runs"]
    assert report["deterministic"]["identical_across_backends"]
    assert report["cache"]["hits"] > 0
    assert report["fidelity"]["promotions"] > 0


if __name__ == "__main__":
    main()
