"""Benchmark — dictionary-encoded terms + vectorized batched SPARQL executor.

Measures what the columnar executor buys on a governed lake:

* **Vectorized vs batched vs tuple vs seed evaluation**: discovery-style
  multi-pattern queries over a ~200-table governed lake, run by the
  vectorized executor (the default: numpy id-space collation + memoized
  filter pushdown), the scalar batched hash-join executor
  (``vectorized=False``), the previous tuple-at-a-time executor
  (``batched=False``) and the seed written-order path (``optimize=False``).
  All four must return identical rows (modulo order); the headline
  ``multi_pattern.speedup_vs_tuple`` is the default executor's win over the
  tuple engine, and ``aggregate_heavy.speedup_vs_batched`` isolates what the
  numpy GROUP BY / ORDER BY / DISTINCT collation adds over the scalar
  batched executor on dashboard-style aggregate queries.
* **Backend parity**: the same queries over the lake saved to sqlite and
  reopened must match the in-memory rows byte-for-byte (modulo order) — ids
  assigned by the persistent term dictionary round-trip.
* **Memory**: retained bytes of the id-encoded storage (int-triple indexes +
  one shared term dictionary) versus a seed-style term-triple store with
  per-graph term objects (how the pre-dictionary sqlite reload materialized
  terms) — the string-dedup RSS drop.

Results are written to ``benchmarks/BENCH_sparql.json`` (gated against
``baselines/BENCH_sparql.json`` by ``check_regressions.py``).  Run standalone::

    PYTHONPATH=src python benchmarks/bench_sparql_engine.py --tables 200

or as a pytest smoke test (small sizes, used by ``run_all.py --smoke``)::

    PYTHONPATH=src python -m pytest benchmarks/bench_sparql_engine.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import tempfile
import time
import tracemalloc
from collections import defaultdict
from pathlib import Path
from typing import Dict, List

from repro.datagen import generate_discovery_benchmark
from repro.eval import format_report_table
from repro.kg.governor import KGGovernor
from repro.rdf import QuadStore
from repro.sparql import SPARQLEngine

RESULT_PATH = Path(__file__).parent / "BENCH_sparql.json"

#: Discovery-style governance queries.  ``multi_pattern`` marks the queries
#: counted into the headline join speedup (2+ triple patterns).
QUERIES: Dict[str, Dict] = {
    "tables": {
        "multi_pattern": False,
        "sparql": "SELECT ?t WHERE { ?t a kglids:Table }",
    },
    "columns_of_table": {
        "multi_pattern": True,
        "sparql": """
            SELECT ?col ?name WHERE {
                ?col kglids:hasName ?name .
                ?col a kglids:Column .
                ?col kglids:isPartOf ?table .
                ?table kglids:hasName "table_0_0" .
            }
        """,
    },
    "joined_metadata": {
        "multi_pattern": True,
        "sparql": """
            SELECT ?col ?colname ?tablename WHERE {
                ?col kglids:hasName ?colname .
                ?col a kglids:Column .
                ?col kglids:isPartOf ?table .
                ?table kglids:hasName ?tablename .
                ?table kglids:isPartOf ?dataset .
                ?dataset kglids:hasName "economics_0" .
            }
        """,
    },
    "lake_metadata": {
        "multi_pattern": True,
        "sparql": """
            SELECT ?col ?colname ?tablename WHERE {
                ?col kglids:hasName ?colname .
                ?col a kglids:Column .
                ?col kglids:isPartOf ?table .
                ?table kglids:hasName ?tablename .
            }
        """,
    },
    "similar_pairs_with_names": {
        "multi_pattern": True,
        # The seed written-order path would evaluate the two hasName joins
        # binding-at-a-time over ~90k similarity rows without a memo —
        # minutes per run at 200 tables.  Seed-semantics parity for this
        # shape is pinned by tests/test_sparql_batched.py instead.
        "time_naive": False,
        "sparql": """
            SELECT ?n1 ?n2 ?score WHERE {
                << ?c1 kglids:hasContentSimilarity ?c2 >> kglids:withCertainty ?score .
                ?c1 kglids:hasName ?n1 .
                ?c2 kglids:hasName ?n2 .
            }
        """,
    },
    "similarity_neighborhood": {
        "multi_pattern": True,
        # Written-order evaluation puts the quoted pattern after ?c1's
        # binding with no pushdown: a full annotation scan per row
        # (~1.4e8 candidate visits at 200 tables).  Parity vs the seed path
        # is pinned by the randomized suite at tractable sizes.
        "time_naive": False,
        "sparql": """
            SELECT ?t ?c2 ?score WHERE {
                ?c1 kglids:isPartOf ?t .
                << ?c1 kglids:hasContentSimilarity ?c2 >> kglids:withCertainty ?score .
                ?c2 a kglids:Column .
            }
        """,
    },
    "type_histogram": {
        "multi_pattern": True,
        "sparql": """
            SELECT ?type (COUNT(?col) AS ?n) WHERE {
                ?col a kglids:Column .
                ?col kglids:hasFineGrainedType ?type .
            } GROUP BY ?type ORDER BY ?type
        """,
    },
    # --- aggregate-heavy dashboard set: many result rows, collation-bound.
    # These isolate the vectorized GROUP BY / ORDER BY / DISTINCT tail, so
    # they count into ``aggregate_heavy.speedup_vs_batched`` rather than the
    # join-headline multi-pattern total.
    "type_dashboard": {
        "multi_pattern": False,
        "aggregate": True,
        "sparql": """
            SELECT ?type (COUNT(?col) AS ?n) (COUNT(DISTINCT ?table) AS ?tables)
            WHERE {
                ?col a kglids:Column .
                ?col kglids:hasFineGrainedType ?type .
                ?col kglids:isPartOf ?table .
            } GROUP BY ?type ORDER BY DESC(?n) ?type
        """,
    },
    "table_width_dashboard": {
        "multi_pattern": False,
        "aggregate": True,
        "sparql": """
            SELECT ?table (COUNT(?col) AS ?cols) WHERE {
                ?col a kglids:Column .
                ?col kglids:isPartOf ?table .
            } GROUP BY ?table ORDER BY DESC(?cols) ?table
        """,
    },
    "similarity_dashboard": {
        "multi_pattern": False,
        "aggregate": True,
        "time_naive": False,
        "sparql": """
            SELECT ?c1 (COUNT(?c2) AS ?n) (AVG(?score) AS ?mean)
                   (SUM(?score) AS ?total) WHERE {
                << ?c1 kglids:hasContentSimilarity ?c2 >> kglids:withCertainty ?score .
            } GROUP BY ?c1 ORDER BY DESC(?mean) ?c1
        """,
    },
    "strong_similarity_profile": {
        "multi_pattern": False,
        "aggregate": True,
        "time_naive": False,
        # Single-variable FILTER below the aggregate: exercises the memoized
        # filter pushdown (the report's ``filter_memo`` counters come from
        # the distinct-score verdicts cached here).
        "sparql": """
            SELECT ?c1 (COUNT(?c2) AS ?n) WHERE {
                << ?c1 kglids:hasContentSimilarity ?c2 >> kglids:withCertainty ?score .
                FILTER(?score >= 0.9)
            } GROUP BY ?c1 ORDER BY DESC(?n) ?c1
        """,
    },
    "ordered_column_names": {
        "multi_pattern": False,
        "aggregate": True,
        "sparql": """
            SELECT ?col ?name WHERE {
                ?col a kglids:Column .
                ?col kglids:hasName ?name .
            } ORDER BY ?name ?col
        """,
    },
    "distinct_similar_names": {
        "multi_pattern": False,
        "aggregate": True,
        "time_naive": False,
        "sparql": """
            SELECT DISTINCT ?n1 ?n2 WHERE {
                << ?c1 kglids:hasContentSimilarity ?c2 >> kglids:withCertainty ?score .
                ?c1 kglids:hasName ?n1 .
                ?c2 kglids:hasName ?n2 .
            }
        """,
    },
    "union_name_profile": {
        "multi_pattern": False,
        "aggregate": True,
        "sparql": """
            SELECT ?x ?name WHERE {
                { ?x a kglids:Table . ?x kglids:hasName ?name . }
                UNION { ?x a kglids:Column . ?x kglids:hasName ?name . }
            } ORDER BY ?name ?x
        """,
    },
}


def _govern_lake(num_tables: int, rows: int, seed: int) -> KGGovernor:
    partitions = 5 if num_tables >= 25 else 3
    base_tables = (num_tables + partitions - 1) // partitions
    benchmark = generate_discovery_benchmark(
        "tus_small", seed=seed, base_tables=base_tables, partitions=partitions, rows=rows
    )
    lake = benchmark.lake
    governor = KGGovernor()
    for table in lake.tables()[:num_tables]:
        governor.add_table(table, dataset_name=table.dataset)
    return governor


def _value_key(value) -> str:
    # SUM/AVG add floats in row order; a reopened sqlite store iterates
    # annotation rows differently than the in-memory build, so cross-backend
    # totals agree only up to float-addition reassociation.  12 significant
    # digits masks that last-ulp wobble while still catching real drift.
    if isinstance(value, float):
        return format(value, ".12g")
    return str(value)


def _rows_key(result) -> List:
    return sorted(
        tuple(sorted((key, _value_key(value)) for key, value in row.items()))
        for row in result.rows
    )


# ------------------------------------------------------------------- timing
def time_engines(store: QuadStore, repetitions: int) -> Dict:
    """Per-query latency of the vectorized / batched / tuple / seed paths."""
    engines = {
        "vectorized": SPARQLEngine(store),
        "batched": SPARQLEngine(store, vectorized=False),
        "tuple": SPARQLEngine(store, batched=False),
        "naive": SPARQLEngine(store, optimize=False),
    }
    results: Dict[str, Dict] = {}
    identical = True
    for name, spec in QUERIES.items():
        labels = ["vectorized", "batched", "tuple"]
        if spec.get("time_naive", True):
            labels.append("naive")
        keys = {}
        timings = {}
        for label in labels:
            engine = engines[label]
            # The parity evaluation doubles as the warm-up; the timing is
            # the median of the remaining samples (single runs are dominated
            # by allocator/GC noise at 100k-row results).  The seed path
            # gets exactly one sample — it is context, not the headline.
            started = time.perf_counter()
            result = engine.select(spec["sparql"])
            warmup = time.perf_counter() - started
            keys[label] = _rows_key(result)
            samples = []
            for _ in range(repetitions if label != "naive" else 0):
                started = time.perf_counter()
                engine.select(spec["sparql"])
                samples.append(time.perf_counter() - started)
            samples.sort()
            timings[label] = samples[len(samples) // 2] if samples else warmup
        if len({str(rows) for rows in keys.values()}) != 1:
            identical = False
        entry = {
            "rows": len(keys["vectorized"]),
            "multi_pattern": spec["multi_pattern"],
            "aggregate_heavy": spec.get("aggregate", False),
            "seconds": {label: round(value, 6) for label, value in timings.items()},
            "speedup_vs_tuple": round(timings["tuple"] / timings["vectorized"], 2)
            if timings["vectorized"] > 0
            else 0.0,
            "speedup_vs_batched": round(timings["batched"] / timings["vectorized"], 2)
            if timings["vectorized"] > 0
            else 0.0,
        }
        if "naive" in timings:
            entry["speedup_vs_naive"] = (
                round(timings["naive"] / timings["vectorized"], 2)
                if timings["vectorized"] > 0
                else 0.0
            )
        results[name] = entry

    def _totals(flag: str) -> Dict[str, float]:
        totals: Dict[str, float] = defaultdict(float)
        for entry in results.values():
            if not entry[flag]:
                continue
            for label, value in entry["seconds"].items():
                totals[label] += value
        return totals

    join_totals = _totals("multi_pattern")
    multi_pattern = {
        "seconds": {label: round(value, 6) for label, value in join_totals.items()},
        "speedup_vs_tuple": round(join_totals["tuple"] / join_totals["vectorized"], 2)
        if join_totals["vectorized"] > 0
        else 0.0,
    }
    aggregate_totals = _totals("aggregate_heavy")
    aggregate_speedup = (
        round(aggregate_totals["batched"] / aggregate_totals["vectorized"], 2)
        if aggregate_totals["vectorized"] > 0
        else 0.0
    )
    aggregate_heavy = {
        "seconds": {label: round(value, 6) for label, value in aggregate_totals.items()},
        "speedup_vs_batched": aggregate_speedup,
        "speedup_vs_tuple": round(
            aggregate_totals["tuple"] / aggregate_totals["vectorized"], 2
        )
        if aggregate_totals["vectorized"] > 0
        else 0.0,
        "vectorized_at_least_3x": bool(aggregate_speedup >= 3.0),
    }
    return {
        "queries": results,
        "multi_pattern": multi_pattern,
        "aggregate_heavy": aggregate_heavy,
        "results_identical_across_engines": identical,
    }


def check_backend_parity(governor: KGGovernor) -> bool:
    """Save to sqlite, reopen, and compare every query's rows."""
    directory = Path(tempfile.mkdtemp(prefix="bench_sparql_"))
    try:
        governor.save(directory)
        reopened = QuadStore.sqlite(directory / "graph.sqlite3")
        memory_engine = SPARQLEngine(governor.storage.graph)
        sqlite_engine = SPARQLEngine(reopened)
        identical = all(
            _rows_key(memory_engine.select(spec["sparql"]))
            == _rows_key(sqlite_engine.select(spec["sparql"]))
            for spec in QUERIES.values()
        )
        reopened.close()
        return identical
    finally:
        shutil.rmtree(directory, ignore_errors=True)


# ------------------------------------------------------------------- memory
def measure_memory(store: QuadStore) -> Dict:
    """Retained bytes and durable bytes: id-encoded vs seed-style storage.

    Both builds materialize the full index structure (positional + partial
    quoted-triple indexes + per-predicate cardinality statistics) from the
    same durable text rows.  The seed-style build replays what the
    pre-dictionary sqlite reload kept: term-object triples with a *per-graph*
    term cache, so a term shared by N graphs existed N times.  The id build
    replays the current storage: one shared dictionary plus int-triple
    indexes.  ``disk`` compares the two sqlite layouts on the same quads:
    three N-Triples text columns per row (pre-dictionary) vs a ``terms``
    table plus three-int rows — the string-dedup win is mostly *there* (every
    URI used to be spelled out once per referencing triple, per index row).
    """
    import sqlite3

    from collections import defaultdict as _defaultdict

    from repro.rdf.graph_index import GraphIndex
    from repro.rdf.terms import QuotedTriple, TermDictionary, parse_term, term_n3

    # The durable representation both builds start from.
    shards = {
        graph: [
            (term_n3(t.subject), term_n3(t.predicate), term_n3(t.object))
            for t in store.triples(graph=graph)
        ]
        for graph in store.graphs()
    }

    def build_seed_style():
        """PR-3-equivalent reload: term triples, term-keyed indexes + stats."""
        graphs = {}
        for graph, rows in shards.items():
            cache: Dict[str, object] = {}
            triples = set()
            by_subject = _defaultdict(set)
            by_predicate = _defaultdict(set)
            by_object = _defaultdict(set)
            by_quoted_subject = _defaultdict(set)
            by_quoted_object = _defaultdict(set)
            stats: Dict[object, Dict[str, Dict]] = {}
            for row in rows:
                terms = []
                for text in row:
                    term = cache.get(text)
                    if term is None:
                        term = cache[text] = parse_term(text)
                    terms.append(term)
                triple = tuple(terms)
                triples.add(triple)
                by_subject[triple[0]].add(triple)
                by_predicate[triple[1]].add(triple)
                by_object[triple[2]].add(triple)
                if isinstance(triple[0], QuotedTriple):
                    by_quoted_subject[triple[0].subject].add(triple)
                    by_quoted_object[triple[0].object].add(triple)
                entry = stats.setdefault(triple[1], {"subjects": {}, "objects": {}})
                entry["subjects"][triple[0]] = entry["subjects"].get(triple[0], 0) + 1
                entry["objects"][triple[2]] = entry["objects"].get(triple[2], 0) + 1
            graphs[graph] = (
                triples,
                by_subject,
                by_predicate,
                by_object,
                by_quoted_subject,
                by_quoted_object,
                stats,
            )
        return graphs

    def build_id_style():
        """Current reload: one shared dictionary, id-triple GraphIndexes."""
        dictionary = TermDictionary()
        graphs = {}
        for graph, rows in shards.items():
            index = GraphIndex(dictionary)
            for row in rows:
                index.add(
                    (
                        dictionary.encode(parse_term(row[0])),
                        dictionary.encode(parse_term(row[1])),
                        dictionary.encode(parse_term(row[2])),
                    )
                )
            graphs[graph] = index
        return dictionary, graphs

    def retained_bytes(build):
        tracemalloc.start()
        baseline = tracemalloc.get_traced_memory()[0]
        kept = build()
        retained = tracemalloc.get_traced_memory()[0] - baseline
        tracemalloc.stop()
        del kept
        return retained

    seed_bytes = retained_bytes(build_seed_style)
    id_bytes = retained_bytes(build_id_style)

    # Durable footprint of the same quads under both sqlite layouts.
    directory = Path(tempfile.mkdtemp(prefix="bench_sparql_disk_"))
    try:
        text_path = directory / "text.sqlite3"
        connection = sqlite3.connect(str(text_path))
        for position, rows in enumerate(shards.values()):
            connection.execute(
                f"CREATE TABLE quads_{position} (s TEXT, p TEXT, o TEXT,"
                " PRIMARY KEY (s, p, o)) WITHOUT ROWID"
            )
            connection.execute(
                f"CREATE INDEX quads_{position}_p ON quads_{position} (p)"
            )
            connection.executemany(
                f"INSERT OR IGNORE INTO quads_{position} VALUES (?, ?, ?)", rows
            )
        connection.commit()
        connection.close()
        text_disk = text_path.stat().st_size

        id_path = directory / "ids.sqlite3"
        connection = sqlite3.connect(str(id_path))
        dictionary: Dict[str, int] = {}
        connection.execute("CREATE TABLE terms (id INTEGER PRIMARY KEY, n3 TEXT)")
        for position, rows in enumerate(shards.values()):
            connection.execute(
                f"CREATE TABLE quads_{position} (s INTEGER, p INTEGER, o INTEGER,"
                " PRIMARY KEY (s, p, o)) WITHOUT ROWID"
            )
            connection.execute(
                f"CREATE INDEX quads_{position}_p ON quads_{position} (p)"
            )
            id_rows = []
            for row in rows:
                ids = []
                for term_text in row:
                    term_id = dictionary.get(term_text)
                    if term_id is None:
                        term_id = dictionary[term_text] = len(dictionary) + 1
                        connection.execute(
                            "INSERT INTO terms VALUES (?, ?)", (term_id, term_text)
                        )
                    ids.append(term_id)
                id_rows.append(tuple(ids))
            connection.executemany(
                f"INSERT OR IGNORE INTO quads_{position} VALUES (?, ?, ?)", id_rows
            )
        connection.commit()
        connection.close()
        id_disk = id_path.stat().st_size
    finally:
        shutil.rmtree(directory, ignore_errors=True)

    return {
        "resident": {
            "seed_style_bytes": seed_bytes,
            "id_encoded_bytes": id_bytes,
            "seed_to_id_ratio": round(seed_bytes / id_bytes, 3) if id_bytes else 0.0,
        },
        "disk": {
            "text_shard_bytes": text_disk,
            "id_shard_bytes": id_disk,
            "text_to_id_ratio": round(text_disk / id_disk, 3) if id_disk else 0.0,
        },
        "num_terms": len(store.dictionary),
        "num_term_slots": sum(3 * len(rows) for rows in shards.values()),
    }


# --------------------------------------------------------------------- main
def run_benchmark(num_tables: int, rows: int, repetitions: int, seed: int = 7) -> Dict:
    governor = _govern_lake(num_tables, rows, seed)
    store = governor.storage.graph
    report = {
        "config": {
            "num_tables": num_tables,
            "rows": rows,
            "repetitions": repetitions,
            "seed": seed,
            "num_triples": store.num_triples(),
        }
    }
    report.update(time_engines(store, repetitions))
    report["results_identical_across_backends"] = check_backend_parity(governor)
    report["memory"] = measure_memory(store)
    engine = SPARQLEngine(store)
    for spec in QUERIES.values():
        engine.select(spec["sparql"])
    report["memo"] = engine.memo_counters()
    report["filter_memo"] = engine.filter_memo_counters()
    return report


def print_report(report: Dict) -> None:
    rows = []
    for name, entry in report["queries"].items():
        marker = " *" if entry["multi_pattern"] else (" +" if entry["aggregate_heavy"] else "")
        rows.append(
            [
                f"{name}{marker}",
                entry["seconds"].get("naive", "-"),
                entry["seconds"]["tuple"],
                entry["seconds"]["batched"],
                entry["seconds"]["vectorized"],
                entry["speedup_vs_tuple"],
                entry["speedup_vs_batched"],
            ]
        )
    rows.append(
        [
            "multi-pattern total",
            report["multi_pattern"]["seconds"].get("naive", "-"),
            report["multi_pattern"]["seconds"]["tuple"],
            report["multi_pattern"]["seconds"]["batched"],
            report["multi_pattern"]["seconds"]["vectorized"],
            report["multi_pattern"]["speedup_vs_tuple"],
            "-",
        ]
    )
    rows.append(
        [
            "aggregate-heavy total",
            report["aggregate_heavy"]["seconds"].get("naive", "-"),
            report["aggregate_heavy"]["seconds"]["tuple"],
            report["aggregate_heavy"]["seconds"]["batched"],
            report["aggregate_heavy"]["seconds"]["vectorized"],
            report["aggregate_heavy"]["speedup_vs_tuple"],
            report["aggregate_heavy"]["speedup_vs_batched"],
        ]
    )
    print(
        format_report_table(
            [
                "query (* join, + aggregate)",
                "naive (s)",
                "tuple (s)",
                "batched (s)",
                "vector (s)",
                "x vs tuple",
                "x vs batched",
            ],
            rows,
            title=f"SPARQL executor bench ({report['config']['num_tables']} tables, "
            f"{report['config']['num_triples']} triples)",
        )
    )
    memory = report["memory"]
    print(
        f"identical rows: engines={report['results_identical_across_engines']} "
        f"backends={report['results_identical_across_backends']}"
    )
    print(
        f"resident: seed-style {memory['resident']['seed_style_bytes'] / 1e6:.1f}MB vs "
        f"id-encoded {memory['resident']['id_encoded_bytes'] / 1e6:.1f}MB "
        f"({memory['resident']['seed_to_id_ratio']}x); "
        f"disk: text shards {memory['disk']['text_shard_bytes'] / 1e6:.1f}MB vs "
        f"id shards {memory['disk']['id_shard_bytes'] / 1e6:.1f}MB "
        f"({memory['disk']['text_to_id_ratio']}x; {memory['num_terms']} distinct terms "
        f"for {memory['num_term_slots']} term slots)"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tables", type=int, default=200)
    parser.add_argument("--rows", type=int, default=40)
    parser.add_argument("--repetitions", type=int, default=5)
    parser.add_argument("--output", type=Path, default=RESULT_PATH)
    args = parser.parse_args()
    report = run_benchmark(args.tables, args.rows, args.repetitions)
    print_report(report)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")


# ------------------------------------------------------------ pytest smoke
def test_sparql_engine_smoke():
    """Smoke configuration: parity must hold; the vectorized executor must
    win on the multi-pattern total even at toy sizes.  The 3x aggregate
    target only shows at full scale (collation is a small slice of toy
    runs), so here the aggregate set is held to parity plus no collapse."""
    num_tables = 16 if os.environ.get("REPRO_BENCH_SMOKE") else 24
    report = run_benchmark(num_tables=num_tables, rows=30, repetitions=2)
    assert report["results_identical_across_engines"]
    assert report["results_identical_across_backends"]
    assert report["multi_pattern"]["speedup_vs_tuple"] > 1.0
    assert report["aggregate_heavy"]["seconds"]["vectorized"] > 0.0
    assert report["memory"]["disk"]["text_to_id_ratio"] > 1.0


if __name__ == "__main__":
    main()
