"""Table 6 — Data transformation accuracy: baseline vs AutoLearn vs KGLiDS.

Each dataset is transformed by AutoLearn (distance-correlation feature
generation, under a time budget) and by KGLiDS' recommended scaling + unary
transformations; a random-forest classifier is then trained with
cross-validation on the untransformed baseline and on both transformed
versions.  Expected shape: KGLiDS matches or exceeds AutoLearn while never
timing out; AutoLearn times out on the widest datasets.
"""

import pytest

from _helpers import downstream_accuracy
from repro.baselines import AutoLearn
from repro.baselines.autolearn import AutoLearnTimeout
from repro.eval import format_report_table, measure_call

#: Per-dataset AutoLearn time budget in seconds (stands in for the paper's 3h).
AUTOLEARN_BUDGET_SECONDS = 1.5


def test_table6_transformation_accuracy(bootstrapped_platform, transformation_datasets, benchmark):
    rows = []
    kglids_scores, autolearn_scores, baseline_scores, timeouts = [], [], [], 0
    for dataset in transformation_datasets:
        baseline_accuracy = downstream_accuracy(dataset.table, dataset.target)
        baseline_scores.append(baseline_accuracy)

        autolearn = AutoLearn(time_budget_seconds=AUTOLEARN_BUDGET_SECONDS)
        autolearn_run = measure_call(
            lambda table=dataset.table, target=dataset.target: autolearn.transform(table, target)
        )
        if autolearn_run.failed:
            autolearn_accuracy = None
            timeouts += 1
        else:
            autolearn_accuracy = downstream_accuracy(autolearn_run.result, dataset.target)
            autolearn_scores.append(autolearn_accuracy)

        recommendation = bootstrapped_platform.recommend_transformations(
            dataset.table, target=dataset.target
        )
        transformed = bootstrapped_platform.apply_transformations(
            recommendation, dataset.table, target=dataset.target
        )
        kglids_accuracy = downstream_accuracy(transformed, dataset.target)
        kglids_scores.append(kglids_accuracy)

        rows.append(
            [
                f"{dataset.dataset_id} - {dataset.name}",
                dataset.table.num_columns - 1,
                round(baseline_accuracy, 3),
                "TO" if autolearn_accuracy is None else round(autolearn_accuracy, 3),
                round(kglids_accuracy, 3),
                recommendation.scaler,
            ]
        )
    print()
    print(
        format_report_table(
            ["dataset", "features", "baseline", "AutoLearn", "KGLiDS", "KGLiDS scaler"],
            rows,
            title="Table 6: accuracy for data transformation",
        )
    )

    # Shape assertions: KGLiDS completes everything; its average accuracy is
    # competitive with the baseline and with AutoLearn where AutoLearn finished.
    assert len(kglids_scores) == len(transformation_datasets)
    mean_kglids = sum(kglids_scores) / len(kglids_scores)
    mean_baseline = sum(baseline_scores) / len(baseline_scores)
    assert mean_kglids >= mean_baseline - 0.1
    if autolearn_scores:
        assert mean_kglids >= (sum(autolearn_scores) / len(autolearn_scores)) - 0.1

    smallest = transformation_datasets[0]
    benchmark.pedantic(
        lambda: bootstrapped_platform.recommend_transformations(smallest.table, target=smallest.target),
        rounds=1,
        iterations=1,
    )
