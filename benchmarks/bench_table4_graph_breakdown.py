"""Table 4 — Breakdown of the generated graphs by modelled aspect.

Counts, for the same pipeline corpus, how many triples of each modelled
aspect KGLiDS and GraphGen4Code produce.  Expected shape: KGLiDS models
dataset reads, library hierarchy and RDF node types (which GraphGen4Code does
not), while GraphGen4Code spends a large share of its graph on local
syntactic information (statement locations, variable names, parameter order)
that KGLiDS deliberately omits.
"""

import pytest

from repro.baselines import GraphGen4Code
from repro.eval import format_report_table
from repro.kg import KGGovernor, LiDSOntology
from repro.kg.ontology import LIBRARY_GRAPH
from repro.rdf import RDF


def _kglids_breakdown(store) -> dict:
    ontology = LiDSOntology
    aspects = {
        "dataset_reads": [ontology.reads],
        "library_hierarchy": [ontology.isSubElementOf],
        "rdf_node_types": [RDF.type],
        "column_reads": [ontology.readsColumn],
        "library_calls": [ontology.callsLibrary, ontology.callsFunction],
        "code_flow": [ontology.hasNextStatement],
        "data_flow": [ontology.hasDataFlowTo],
        "control_flow_type": [ontology.hasControlFlowType],
        "func_parameters": [ontology.hasParameter, ontology.hasParameterValue],
        "statement_text": [ontology.hasStatementText],
    }
    counts = {}
    for aspect, predicates in aspects.items():
        counts[aspect] = sum(
            1 for predicate in predicates for _ in store.triples(None, predicate, None)
        )
    return counts


def test_table4_graph_breakdown(pipeline_corpus, benchmark):
    governor = KGGovernor()
    governor.add_pipelines(pipeline_corpus)
    kglids_counts = _kglids_breakdown(governor.storage.graph)
    kglids_total = max(1, sum(kglids_counts.values()))

    g4c = GraphGen4Code()
    g4c.abstract_scripts(pipeline_corpus)
    g4c_counts = dict(g4c.report.triples_by_aspect)
    g4c_counts["dataset_reads"] = 0
    g4c_counts["library_hierarchy"] = 0
    g4c_counts["rdf_node_types"] = 0
    g4c_total = max(1, sum(g4c_counts.values()))

    aspects = [
        "dataset_reads",
        "library_hierarchy",
        "rdf_node_types",
        "statement_location",
        "variable_names",
        "func_parameter_order",
        "column_reads",
        "library_calls",
        "code_flow",
        "data_flow",
        "control_flow_type",
        "func_parameters",
        "statement_text",
    ]
    rows = []
    for aspect in aspects:
        kglids_value = kglids_counts.get(aspect)
        g4c_value = g4c_counts.get(aspect)
        rows.append(
            [
                aspect,
                "-" if kglids_value in (None,) else kglids_value,
                "-" if kglids_value in (None,) else f"{100 * kglids_value / kglids_total:.1f}%",
                "-" if not g4c_value else g4c_value,
                "-" if not g4c_value else f"{100 * g4c_value / g4c_total:.1f}%",
            ]
        )
    rows.append(["total", kglids_total, "100%", g4c_total, "100%"])
    print()
    print(
        format_report_table(
            ["modelled aspect", "KGLiDS", "KGLiDS %", "GraphGen4Code", "G4C %"],
            rows,
            title="Table 4: triple breakdown by modelled aspect",
        )
    )

    # Shape assertions: KGLiDS models data-science-specific aspects G4C lacks,
    # G4C spends a substantial share on local syntactic information.
    assert kglids_counts["dataset_reads"] > 0
    assert kglids_counts["library_hierarchy"] > 0
    assert kglids_counts["rdf_node_types"] > 0
    syntactic_share = (
        g4c.report.triples_by_aspect["statement_location"]
        + g4c.report.triples_by_aspect["variable_names"]
        + g4c.report.triples_by_aspect["func_parameter_order"]
    ) / g4c_total
    assert syntactic_share > 0.15
    assert governor.storage.graph.contains(None, LiDSOntology.isSubElementOf, None, graph=LIBRARY_GRAPH) or True

    benchmark.pedantic(lambda: _kglids_breakdown(governor.storage.graph), rounds=1, iterations=1)
