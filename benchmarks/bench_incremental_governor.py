"""Benchmark — incremental KG construction and index-aware SPARQL latency.

Measures the two hot paths this repo optimizes beyond the paper's tables:

* **Incremental adds**: governing N tables one `add_table` at a time with the
  incremental governor (new x existing similarity only, vectorized kernels)
  versus the seed behaviour (full schema rebuild over all accumulated
  profiles on every add, per-pair Python similarity workers).
* **SPARQL evaluation**: a set of discovery-style queries with the
  index-aware planner (selectivity reordering + RDF-star lookup pushdown +
  lookup memoization) versus naive written-order evaluation.

Results are written to ``benchmarks/BENCH_incremental.json`` so the perf
trajectory stays visible across PRs.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_incremental_governor.py --tables 50

or as a pytest smoke test (small sizes, used by ``run_all.py``)::

    PYTHONPATH=src python -m pytest benchmarks/bench_incremental_governor.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path
from typing import Dict, List, Tuple

from repro.datagen import generate_discovery_benchmark
from repro.eval import format_report_table
from repro.kg.dataset_graph import DataGlobalSchemaBuilder
from repro.kg.governor import KGGovernor
from repro.profiler import DataProfiler
from repro.rdf import QuadStore
from repro.sparql import SPARQLEngine
from repro.tabular import Table

RESULT_PATH = Path(__file__).parent / "BENCH_incremental.json"

#: Discovery-style queries of increasing join complexity.  They are written
#: in a natural "most general pattern first" order, which is exactly where
#: written-order evaluation loses to the selectivity-ordered planner.
SPARQL_QUERIES: Dict[str, str] = {
    "tables": "SELECT ?t WHERE { ?t a kglids:Table }",
    "columns_of_table": """
        SELECT ?col ?name WHERE {
            ?col kglids:hasName ?name .
            ?col a kglids:Column .
            ?col kglids:isPartOf ?table .
            ?table kglids:hasName "table_0_0" .
        }
    """,
    "similar_columns": """
        SELECT ?c1 ?c2 ?score WHERE {
            ?c1 kglids:isPartOf ?table .
            ?table kglids:hasName "table_0_0" .
            << ?c1 kglids:hasContentSimilarity ?c2 >> kglids:withCertainty ?score .
        }
    """,
    "joined_metadata": """
        SELECT ?col ?colname ?tablename WHERE {
            ?col kglids:hasName ?colname .
            ?col a kglids:Column .
            ?col kglids:isPartOf ?table .
            ?table kglids:hasName ?tablename .
            ?table kglids:isPartOf ?dataset .
            ?dataset kglids:hasName "economics_0" .
        }
    """,
    "type_histogram": """
        SELECT ?type (COUNT(?col) AS ?n) WHERE {
            ?col a kglids:Column .
            ?col kglids:hasFineGrainedType ?type .
        } GROUP BY ?type ORDER BY ?type
    """,
}


def _generate_tables(num_tables: int, rows: int, seed: int) -> List[Table]:
    """``num_tables`` partitioned tables with overlapping schemas."""
    partitions = 5 if num_tables >= 25 else 3
    base_tables = (num_tables + partitions - 1) // partitions
    benchmark = generate_discovery_benchmark(
        "tus_small", seed=seed, base_tables=base_tables, partitions=partitions, rows=rows
    )
    return benchmark.lake.tables()[:num_tables]


# ----------------------------------------------------------------- governor
def time_incremental_adds(tables: List[Table]) -> Tuple[KGGovernor, List[float]]:
    """Per-add wall time of the incremental governor."""
    governor = KGGovernor()
    per_add: List[float] = []
    for table in tables:
        started = time.perf_counter()
        governor.add_table(table, dataset_name=table.dataset)
        per_add.append(time.perf_counter() - started)
    return governor, per_add


def time_seed_behavior_adds(tables: List[Table]) -> List[float]:
    """Per-add wall time of the seed behaviour.

    The seed ``add_data_lake`` profiled the new table and then re-ran the
    full ``DataGlobalSchemaBuilder.build`` over *all* accumulated profiles
    with the per-pair Python similarity workers; this loop reproduces that.
    """
    profiler = DataProfiler()
    builder = DataGlobalSchemaBuilder(vectorized=False)
    store = QuadStore()
    profiles = []
    per_add: List[float] = []
    for table in tables:
        started = time.perf_counter()
        profiles.append(profiler.profile_table(table))
        builder.build(profiles, store)
        per_add.append(time.perf_counter() - started)
    return per_add


def check_graphs_identical(tables: List[Table], incremental: KGGovernor) -> bool:
    """One-shot bootstrap over the same tables must equal incremental adds."""
    from repro.tabular import DataLake

    lake = DataLake("bench_check")
    for table in tables:
        lake.add_table(table.dataset, table)
    bootstrap = KGGovernor()
    bootstrap.add_data_lake(lake)

    def snapshot(store: QuadStore):
        return {graph: frozenset(store.triples(graph=graph)) for graph in store.graphs()}

    return snapshot(bootstrap.storage.graph) == snapshot(incremental.storage.graph)


# ------------------------------------------------------------------- sparql
def _score_lookup_query(store: QuadStore) -> str:
    """The certainty read-back query for a real similarity edge in ``store``.

    Discovery reads edge scores constantly; with the planner off, every
    binding re-scans the annotation index instead of hitting the quoted-triple
    hash entry.
    """
    from repro.kg.ontology import DATASET_GRAPH, LiDSOntology

    for triple in store.triples(
        None, LiDSOntology.hasContentSimilarity, None, graph=DATASET_GRAPH
    ):
        subject = triple.subject
        return f"""
            SELECT ?c2 ?score WHERE {{
                <{subject}> kglids:hasContentSimilarity ?c2 .
                << <{subject}> kglids:hasContentSimilarity ?c2 >> kglids:withCertainty ?score .
            }}
        """
    return None  # degenerate graphs (a single table) have no edges


def time_sparql(store: QuadStore, repetitions: int) -> Dict[str, Dict[str, float]]:
    """Average per-query latency with and without the index-aware planner."""
    optimized_engine = SPARQLEngine(store)
    naive_engine = SPARQLEngine(store, optimize=False)
    queries = dict(SPARQL_QUERIES)
    score_lookup = _score_lookup_query(store)
    if score_lookup is not None:
        queries["score_lookup"] = score_lookup
    results: Dict[str, Dict[str, float]] = {}
    for name, query in queries.items():
        rows_optimized = sorted(map(str, optimized_engine.select(query).rows))
        rows_naive = sorted(map(str, naive_engine.select(query).rows))
        assert rows_optimized == rows_naive, f"planner changed semantics of {name!r}"
        timings = {}
        for label, engine in (("optimized", optimized_engine), ("naive", naive_engine)):
            started = time.perf_counter()
            for _ in range(repetitions):
                engine.select(query)
            timings[label] = (time.perf_counter() - started) / repetitions
        timings["speedup"] = (
            timings["naive"] / timings["optimized"] if timings["optimized"] > 0 else 0.0
        )
        results[name] = timings
    return results


# --------------------------------------------------------------------- main
def run_benchmark(
    num_tables: int, rows: int, repetitions: int, seed: int = 7
) -> Dict:
    tables = _generate_tables(num_tables, rows, seed)
    # Warm the process-wide word-model / NER caches so neither timed loop
    # pays one-off cache misses the other then benefits from.
    for table in tables:
        DataProfiler().profile_table(table)
    governor, incremental_seconds = time_incremental_adds(tables)
    seed_seconds = time_seed_behavior_adds(tables)
    identical = check_graphs_identical(tables, governor)
    sparql = time_sparql(governor.storage.graph, repetitions)

    total_incremental = sum(incremental_seconds)
    total_seed = sum(seed_seconds)
    report = {
        "config": {"num_tables": len(tables), "rows": rows, "repetitions": repetitions, "seed": seed},
        "incremental": {
            "per_add_seconds": [round(s, 5) for s in incremental_seconds],
            "total_seconds": round(total_incremental, 4),
        },
        "seed_behavior": {
            "per_add_seconds": [round(s, 5) for s in seed_seconds],
            "total_seconds": round(total_seed, 4),
        },
        "construction_speedup": round(total_seed / total_incremental, 2)
        if total_incremental > 0
        else 0.0,
        "graphs_identical": identical,
        "num_triples": governor.storage.graph.num_triples(),
        "sparql": {
            name: {key: round(value, 6) for key, value in timings.items()}
            for name, timings in sparql.items()
        },
    }
    multi_pattern = [name for name in sparql if name != "tables"]
    naive_total = sum(sparql[name]["naive"] for name in multi_pattern)
    optimized_total = sum(sparql[name]["optimized"] for name in multi_pattern)
    report["sparql_multi_pattern_speedup"] = (
        round(naive_total / optimized_total, 2) if optimized_total > 0 else 0.0
    )
    return report


def print_report(report: Dict) -> None:
    config = report["config"]
    rows = [
        ["construction total (s)",
         report["seed_behavior"]["total_seconds"],
         report["incremental"]["total_seconds"],
         report["construction_speedup"]],
        ["last add (s)",
         report["seed_behavior"]["per_add_seconds"][-1],
         report["incremental"]["per_add_seconds"][-1],
         round(
             report["seed_behavior"]["per_add_seconds"][-1]
             / max(1e-9, report["incremental"]["per_add_seconds"][-1]),
             2,
         )],
    ]
    for name, timings in report["sparql"].items():
        rows.append(
            [f"sparql {name} (s)", timings["naive"], timings["optimized"], timings["speedup"]]
        )
    print(
        format_report_table(
            ["metric", "seed / naive", "incremental / indexed", "speedup"],
            rows,
            title=f"Incremental governor bench ({config['num_tables']} tables)",
        )
    )
    print(f"graphs identical: {report['graphs_identical']}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tables", type=int, default=50)
    parser.add_argument("--rows", type=int, default=60)
    parser.add_argument("--repetitions", type=int, default=5)
    parser.add_argument("--output", type=Path, default=RESULT_PATH)
    args = parser.parse_args()
    if args.tables < 2:
        parser.error("--tables must be >= 2 (similarity needs at least one table pair)")
    report = run_benchmark(args.tables, args.rows, args.repetitions)
    print_report(report)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")


# ------------------------------------------------------------ pytest smoke
def test_incremental_governor_smoke():
    """Smoke configuration: incrementality must win and preserve the graph."""
    num_tables = 8 if os.environ.get("REPRO_BENCH_SMOKE") else 12
    report = run_benchmark(num_tables=num_tables, rows=40, repetitions=2)
    assert report["graphs_identical"]
    assert report["construction_speedup"] > 1.0
    for name, timings in report["sparql"].items():
        assert timings["optimized"] > 0.0, name


if __name__ == "__main__":
    main()
