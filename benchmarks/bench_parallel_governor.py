"""Benchmark — multi-core governance: process pools, ANN pruning, planner stats.

Measures the three governance multipliers this PR adds on top of the
incremental/vectorized construction of ``bench_incremental_governor.py``:

* **Executor backends**: profiling + KG construction of the same lake under
  the ``serial``, ``threads`` and ``processes`` backends (the process pool
  loads the CoLR/word models once per worker and ships tables in chunks),
  against the seed per-pair serial baseline.  All three backends must
  produce identical graphs.
* **ANN candidate pruning**: exact full-matrix content similarity versus
  ``FlatIndex`` top-k pruned scoring on wide fine-grained type groups, with
  the achieved pruning ratio and edge recall.
* **Statistics-driven SPARQL**: the planner backed by live per-predicate
  cardinality statistics and partial quoted-triple indexes versus naive
  written-order evaluation — including a one-side-bound RDF-star pattern
  that previously had to scan every annotation.

Results are written to ``benchmarks/BENCH_parallel.json``.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_parallel_governor.py --tables 50

or as a pytest smoke test (small sizes, used by ``run_all.py``)::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel_governor.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.datagen import generate_discovery_benchmark
from repro.eval import format_report_table
from repro.kg.dataset_graph import DataGlobalSchemaBuilder
from repro.kg.governor import KGGovernor
from repro.kg.ontology import DATASET_GRAPH, LiDSOntology
from repro.parallel import JobExecutor
from repro.profiler import DataProfiler
from repro.rdf import QuadStore
from repro.sparql import SPARQLEngine
from repro.tabular import DataLake, Table

RESULT_PATH = Path(__file__).parent / "BENCH_parallel.json"

BACKENDS = ("serial", "threads", "processes")

#: Discovery-style queries; ``quoted_one_side`` is appended at runtime with a
#: real edge subject so the partial quoted-triple index has work to do.
SPARQL_QUERIES: Dict[str, str] = {
    "joined_metadata": """
        SELECT ?col ?colname ?tablename WHERE {
            ?col kglids:hasName ?colname .
            ?col a kglids:Column .
            ?col kglids:isPartOf ?table .
            ?table kglids:hasName ?tablename .
            ?table kglids:isPartOf ?dataset .
            ?dataset kglids:hasName "economics_0" .
        }
    """,
    "type_histogram": """
        SELECT ?type (COUNT(?col) AS ?n) WHERE {
            ?col a kglids:Column .
            ?col kglids:hasFineGrainedType ?type .
        } GROUP BY ?type ORDER BY ?type
    """,
}


def _generate_lake(num_tables: int, rows: int, seed: int) -> DataLake:
    """A lake of ``num_tables`` partitioned tables with overlapping schemas."""
    partitions = 5 if num_tables >= 25 else 3
    base_tables = (num_tables + partitions - 1) // partitions
    benchmark = generate_discovery_benchmark(
        "tus_small", seed=seed, base_tables=base_tables, partitions=partitions, rows=rows
    )
    tables = benchmark.lake.tables()[:num_tables]
    lake = DataLake("bench_parallel")
    for table in tables:
        lake.add_table(table.dataset, table)
    return lake


def _snapshot(store: QuadStore):
    return {graph: frozenset(store.triples(graph=graph)) for graph in store.graphs()}


# ----------------------------------------------------------------- backends
def time_backends(lake: DataLake, workers: int) -> Dict[str, Dict]:
    """Full profiling + construction wall time per executor backend."""
    results: Dict[str, Dict] = {}
    snapshots = {}
    for backend in BACKENDS:
        executor = JobExecutor(backend=backend, max_workers=workers)
        governor = KGGovernor(executor=executor)
        started = time.perf_counter()
        report = governor.add_data_lake(lake)
        elapsed = time.perf_counter() - started
        snapshots[backend] = _snapshot(governor.storage.graph)
        results[backend] = {
            "seconds": round(elapsed, 4),
            "num_triples": governor.storage.graph.num_triples(),
            "num_similarity_edges": report.num_similarity_edges,
            "num_columns_profiled": report.num_columns_profiled,
            "process_fallback": executor.last_fallback_reason,
        }
    results["identical_graphs"] = all(
        snapshots[backend] == snapshots["serial"] for backend in BACKENDS
    )
    return results


def time_seed_baseline(lake: DataLake) -> float:
    """Governing the lake with the seed behaviour (the PR-1 bench baseline).

    The seed ``add_data_lake`` profiled each table serially and re-ran the
    full ``DataGlobalSchemaBuilder.build`` over *all* accumulated profiles
    with the per-pair Python similarity workers on every add; this loop
    reproduces that, matching ``bench_incremental_governor.py``.
    """
    profiler = DataProfiler()
    builder = DataGlobalSchemaBuilder(vectorized=False)
    store = QuadStore()
    profiles = []
    started = time.perf_counter()
    for table in lake.tables():
        profiles.append(profiler.profile_table(table))
        builder.build(profiles, store)
    return time.perf_counter() - started


# -------------------------------------------------------------- ANN pruning
def time_ann_pruning(lake: DataLake, repetitions: int) -> Dict:
    """Exact vs ANN-pruned content similarity over the same profiles."""
    profiles = DataProfiler().profile_data_lake(lake)
    # The partitioned synthetic lake is pathologically self-similar (every
    # column has dozens of near-duplicates above theta), so full recall
    # needs a generous top-k; sparser real lakes prune far harder at the
    # same recall (see tests/test_parallel_governor.py).
    group_threshold, top_k = 32, 48
    exact_builder = DataGlobalSchemaBuilder(ann_prune=False)
    pruned_builder = DataGlobalSchemaBuilder(
        ann_prune=True, ann_group_threshold=group_threshold, ann_top_k=top_k
    )
    timings = {}
    for label, builder in (("exact", exact_builder), ("pruned", pruned_builder)):
        started = time.perf_counter()
        for _ in range(repetitions):
            builder.reset_pruning_stats()
            edges = builder.compute_incremental_similarities(profiles, ())
        timings[label] = (time.perf_counter() - started) / repetitions
        timings[f"{label}_edges"] = edges

    def content_pairs(edges):
        return {(e.column_a, e.column_b) for e in edges if e.kind == "content"}

    exact_pairs = content_pairs(timings.pop("exact_edges"))
    pruned_pairs = content_pairs(timings.pop("pruned_edges"))
    recall = len(pruned_pairs & exact_pairs) / len(exact_pairs) if exact_pairs else 1.0
    return {
        "exact_seconds": round(timings["exact"], 5),
        "pruned_seconds": round(timings["pruned"], 5),
        "speedup": round(timings["exact"] / timings["pruned"], 2)
        if timings["pruned"] > 0
        else 0.0,
        "group_threshold": group_threshold,
        "pruned_groups": pruned_builder.pruning_stats["pruned_groups"],
        "pruning_ratio": round(pruned_builder.last_pruning_ratio, 4),
        "num_exact_content_edges": len(exact_pairs),
        "edge_recall": round(recall, 4),
    }


# ------------------------------------------------------------------- sparql
def _quoted_one_side_query(store: QuadStore) -> Optional[str]:
    """A one-side-bound RDF-star query for a real similarity edge.

    Only the inner subject is bound — without the partial quoted-triple
    index, answering this means scanning every annotation triple.
    """
    for triple in store.triples(
        None, LiDSOntology.hasContentSimilarity, None, graph=DATASET_GRAPH
    ):
        return f"""
            SELECT ?c2 ?score WHERE {{
                << <{triple.subject}> kglids:hasContentSimilarity ?c2 >> kglids:withCertainty ?score .
            }}
        """
    return None


def time_sparql(store: QuadStore, repetitions: int) -> Dict[str, Dict[str, float]]:
    """Per-query latency: statistics-driven planner vs naive evaluation."""
    optimized_engine = SPARQLEngine(store)
    naive_engine = SPARQLEngine(store, optimize=False)
    queries = dict(SPARQL_QUERIES)
    quoted = _quoted_one_side_query(store)
    if quoted is not None:
        queries["quoted_one_side"] = quoted
    results: Dict[str, Dict[str, float]] = {}
    for name, query in queries.items():
        rows_optimized = sorted(map(str, optimized_engine.select(query).rows))
        rows_naive = sorted(map(str, naive_engine.select(query).rows))
        assert rows_optimized == rows_naive, f"planner changed semantics of {name!r}"
        timings = {}
        for label, engine in (("optimized", optimized_engine), ("naive", naive_engine)):
            started = time.perf_counter()
            for _ in range(repetitions):
                engine.select(query)
            timings[label] = (time.perf_counter() - started) / repetitions
        timings["speedup"] = (
            timings["naive"] / timings["optimized"] if timings["optimized"] > 0 else 0.0
        )
        results[name] = {key: round(value, 6) for key, value in timings.items()}
    return results


# --------------------------------------------------------------------- main
def run_benchmark(
    num_tables: int, rows: int, repetitions: int, workers: int = 4, seed: int = 7
) -> Dict:
    lake = _generate_lake(num_tables, rows, seed)
    # Warm process-wide caches (word model vectors, NER) so the first timed
    # backend doesn't pay one-off misses the others then benefit from.
    DataProfiler().profile_data_lake(lake)
    backends = time_backends(lake, workers=workers)
    seed_seconds = time_seed_baseline(lake)
    ann = time_ann_pruning(lake, repetitions)
    sparql = time_sparql(_reference_store(lake), repetitions)
    report = {
        "config": {
            "num_tables": len(lake.tables()),
            "rows": rows,
            "repetitions": repetitions,
            "workers": workers,
            "seed": seed,
            "cpu_count": os.cpu_count(),
        },
        "backends": backends,
        "seed_baseline_seconds": round(seed_seconds, 4),
        # Headline: the full pipeline (vectorized kernels + process fan-out)
        # governing the lake end to end, against the seed behaviour (per-add
        # full rebuild with per-pair Python similarity — the same baseline
        # bench_incremental_governor.py uses).  On multi-core hosts the
        # processes row additionally beats the serial row ~linearly.
        "construction_speedup": round(
            seed_seconds / backends["processes"]["seconds"], 2
        )
        if backends["processes"]["seconds"] > 0
        else 0.0,
        "best_backend_speedup": round(
            max(
                seed_seconds / backends[backend]["seconds"]
                for backend in BACKENDS
                if backends[backend]["seconds"] > 0
            ),
            2,
        ),
        "ann_pruning": ann,
        "sparql": sparql,
    }
    multi = list(sparql)
    naive_total = sum(sparql[name]["naive"] for name in multi)
    optimized_total = sum(sparql[name]["optimized"] for name in multi)
    report["sparql_overall_speedup"] = (
        round(naive_total / optimized_total, 2) if optimized_total > 0 else 0.0
    )
    return report


def _reference_store(lake: DataLake) -> QuadStore:
    """The LiDS graph of the lake (serial backend) for the SPARQL section."""
    governor = KGGovernor()
    governor.add_data_lake(lake)
    return governor.storage.graph


def print_report(report: Dict) -> None:
    config = report["config"]
    rows = [["seed per-pair baseline (s)", report["seed_baseline_seconds"], "", ""]]
    for backend in BACKENDS:
        data = report["backends"][backend]
        rows.append(
            [
                f"{backend} (s)",
                data["seconds"],
                data["num_similarity_edges"],
                round(report["seed_baseline_seconds"] / data["seconds"], 2)
                if data["seconds"]
                else "",
            ]
        )
    ann = report["ann_pruning"]
    rows.append(
        ["ann exact vs pruned (s)", ann["exact_seconds"], ann["pruned_seconds"], ann["speedup"]]
    )
    for name, timings in report["sparql"].items():
        rows.append(
            [f"sparql {name} (s)", timings["naive"], timings["optimized"], timings["speedup"]]
        )
    print(
        format_report_table(
            ["metric", "baseline / naive", "optimized", "speedup"],
            rows,
            title=f"Parallel governor bench ({config['num_tables']} tables, "
            f"{config['workers']} workers)",
        )
    )
    print(f"identical graphs across backends: {report['backends']['identical_graphs']}")
    print(
        f"construction speedup (processes vs seed baseline): {report['construction_speedup']}x; "
        f"ANN pruning ratio {ann['pruning_ratio']}, edge recall {ann['edge_recall']}"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tables", type=int, default=50)
    parser.add_argument("--rows", type=int, default=60)
    parser.add_argument("--repetitions", type=int, default=5)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--output", type=Path, default=RESULT_PATH)
    args = parser.parse_args()
    if args.tables < 2:
        parser.error("--tables must be >= 2 (similarity needs at least one table pair)")
    report = run_benchmark(args.tables, args.rows, args.repetitions, workers=args.workers)
    print_report(report)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")


# ------------------------------------------------------------ pytest smoke
def test_parallel_governor_smoke():
    """Smoke configuration: backends agree and the optimized stack wins.

    At smoke scale the process pool's startup overhead can exceed the tiny
    workload, so the speedup floor is asserted on the best backend; the
    committed full-size run pins the processes-backend headline.
    """
    num_tables = 6 if os.environ.get("REPRO_BENCH_SMOKE") else 10
    report = run_benchmark(num_tables=num_tables, rows=40, repetitions=2, workers=2)
    assert report["backends"]["identical_graphs"]
    assert report["best_backend_speedup"] > 1.0
    assert report["construction_speedup"] > 0.0
    assert report["ann_pruning"]["edge_recall"] >= 0.9
    for name, timings in report["sparql"].items():
        assert timings["optimized"] > 0.0, name


if __name__ == "__main__":
    main()
