#!/usr/bin/env python
"""Run every ``bench_*.py`` in a small smoke configuration.

Each benchmark file is executed in its own pytest process with
``REPRO_BENCH_SMOKE=1`` set (benchmarks that support it shrink their
workloads further).  Any exception, assertion failure or collection error
fails the run, so perf-harness rot is caught even when the individual
benches are not part of tier-1.

Usage::

    python benchmarks/run_all.py            # all benches
    python benchmarks/run_all.py --smoke    # same (smoke mode is the default)
    python benchmarks/run_all.py fig4 table2  # substring filters
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent


def main(argv: list) -> int:
    filters = []
    for token in argv:
        # ``--smoke`` is accepted for explicitness (e.g. in CI invocations)
        # even though the smoke configuration is already the default here.
        if token == "--smoke":
            continue
        if token.startswith("--"):
            print(f"unknown option {token!r}", file=sys.stderr)
            return 2
        filters.append(token.lower())
    paths = sorted(BENCH_DIR.glob("bench_*.py"))
    if filters:
        paths = [p for p in paths if any(token in p.name.lower() for token in filters)]
    if not paths:
        print("no benchmarks matched", file=sys.stderr)
        return 2

    env = dict(os.environ)
    env["REPRO_BENCH_SMOKE"] = "1"
    src = str(BENCH_DIR.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src

    failures = []
    for path in paths:
        started = time.perf_counter()
        print(f"== {path.name}", flush=True)
        result = subprocess.run(
            [sys.executable, "-m", "pytest", str(path), "-q", "-x", "--no-header"],
            env=env,
            cwd=str(BENCH_DIR.parent),
        )
        elapsed = time.perf_counter() - started
        status = "ok" if result.returncode == 0 else f"FAILED (exit {result.returncode})"
        print(f"   {status} in {elapsed:.1f}s", flush=True)
        if result.returncode != 0:
            failures.append(path.name)

    print()
    print(f"{len(paths) - len(failures)}/{len(paths)} benchmarks passed")
    if failures:
        print("failed:", ", ".join(failures), file=sys.stderr)
        return 1

    # Perf-trend gate: compare the BENCH_*.json files sitting in the bench
    # dir (refreshed by any full-size rerun) against the committed baselines;
    # >20% regression on a speedup metric fails the run.
    print("== check_regressions.py", flush=True)
    result = subprocess.run(
        [sys.executable, str(BENCH_DIR / "check_regressions.py")],
        env=env,
        cwd=str(BENCH_DIR.parent),
    )
    if result.returncode != 0:
        print("perf regression check failed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
