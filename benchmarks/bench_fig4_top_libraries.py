"""Figure 4 — Top-10 libraries used across the pipeline corpus.

Regenerates the library-usage ranking by number of distinct pipelines calling
each library, computed with the same SPARQL aggregate query the
``get_top_k_library_used`` interface issues.  The expected shape: pandas is
used by nearly every pipeline, matplotlib comes second, sklearn covers about
half the corpus, and the long tail (plotly, scipy, xgboost, wordcloud,
IPython, nltk, statsmodels) follows.
"""

import pytest

from repro.eval import format_report_table


def test_fig4_top_libraries(bootstrapped_platform, pipeline_corpus, benchmark):
    result = bootstrapped_platform.get_top_k_library_used(10)
    rows = [
        [rank + 1, row["library_name"], row["num_pipelines"]]
        for rank, row in enumerate(result.iter_rows())
    ]
    print()
    print(
        format_report_table(
            ["rank", "library", "pipelines"],
            rows,
            title=f"Figure 4: top libraries across {len(pipeline_corpus)} pipelines",
        )
    )

    counts = dict(zip(result.column("library_name"), result.column("num_pipelines")))
    # Shape assertions mirroring the paper's ranking.
    assert counts.get("pandas", 0) == max(counts.values())
    assert counts.get("pandas", 0) >= counts.get("sklearn", 0)
    assert counts.get("matplotlib", 0) >= counts.get("plotly", 0)
    assert counts.get("sklearn", 0) > 0

    benchmark(lambda: bootstrapped_platform.get_top_k_library_used(10))
