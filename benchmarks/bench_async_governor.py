"""Benchmark — the queued governor service: throughput and reader latency.

Models the workload the service API exists for: many clients each submit a
single table, while discovery readers keep querying the LiDS graph.

* **Ingestion throughput** — the 50-table lake is governed three ways:
  synchronously per table (one blocking ``add_data_lake`` per client
  request — the pre-service behaviour under this workload), synchronously
  as one bulk lake (the best case a blocking API can reach), and through
  ``GovernorService.submit_table`` (per-client submissions the scheduler
  coalesces into micro-batches).  The headline ``ingest_speedup_vs_sync``
  compares the service against the per-table synchronous path; all three
  runs must produce byte-identical graphs (``graphs_identical``).
* **Undo-log overhead** — the transactional write path records an inverse
  for every mutation so a failing batch rolls back instead of committing a
  torn prefix.  A write-heavy store-level loop (batched adds + removes)
  runs with the undo log on and off (best-of-N each);
  ``undo_log.overhead_ratio`` is their quotient and
  ``undo_log.overhead_within_bound`` asserts it stays under 10%, while
  ``undo_log.rollback_identical`` checks an aborted batch leaves the store
  byte-identical.  Both booleans are gated by ``check_regressions.py``.
* **Reader latency during ingestion** — a *second* service run (fresh
  governor) ingests the same lake while reader threads run discovery
  queries (``get_unionable_tables`` + a metadata join) and record per-query
  latency; p50/p95 quantify how long the commit batches make readers wait.
  The same queries on the idle, fully-governed graph give the baseline.
  Latency is measured in its own phase because hot-loop readers contend on
  the GIL: mixing them into the throughput phase would charge the service
  for CPU the blocking baselines never share (a blocking governor cannot
  serve readers mid-ingest at all — that is the point of the service).

Results are written to ``benchmarks/BENCH_async.json``.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_async_governor.py --tables 50

or as a pytest smoke test (small sizes, used by ``run_all.py``)::

    PYTHONPATH=src python -m pytest benchmarks/bench_async_governor.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, List

from repro.datagen import generate_discovery_benchmark
from repro.eval import format_report_table
from repro.interfaces import LiDSClient
from repro.kg import GovernorService, KGGovernor
from repro.rdf import Literal, QuadStore, URIRef
from repro.rdf.serialize import serialize_nquads
from repro.tabular import DataLake

RESULT_PATH = Path(__file__).parent / "BENCH_async.json"

METADATA_QUERY = """
    SELECT ?col ?colname ?tablename WHERE {
        ?col kglids:hasName ?colname .
        ?col a kglids:Column .
        ?col kglids:isPartOf ?table .
        ?table kglids:hasName ?tablename .
    }
"""


def _generate_lake(num_tables: int, rows: int, seed: int) -> DataLake:
    """A lake of ``num_tables`` partitioned tables with overlapping schemas."""
    partitions = 5 if num_tables >= 25 else 3
    base_tables = (num_tables + partitions - 1) // partitions
    benchmark = generate_discovery_benchmark(
        "tus_small", seed=seed, base_tables=base_tables, partitions=partitions, rows=rows
    )
    tables = benchmark.lake.tables()[:num_tables]
    lake = DataLake("bench_async")
    for table in tables:
        lake.add_table(table.dataset, table)
    return lake


def _quantile(samples: List[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _reader_loop(
    client: LiDSClient,
    probe: tuple,
    stop: threading.Event,
    latencies: List[float],
    errors: List[BaseException],
) -> None:
    dataset, table = probe
    while not stop.is_set():
        started = time.perf_counter()
        try:
            client.get_unionable_tables(dataset, table)
            client.storage.query(METADATA_QUERY)
        except BaseException as error:  # pragma: no cover - failure path
            errors.append(error)
            return
        latencies.append(time.perf_counter() - started)


def _undo_write_workload(store: QuadStore, batches: int, triples: int) -> None:
    """A write-heavy batched loop: adds, annotations and removes."""
    for batch in range(batches):
        graph = URIRef(f"http://bench.local/graph/{batch % 4}")
        with store.write_batch():
            for index in range(triples):
                subject = URIRef(f"http://bench.local/s{index % 48}")
                predicate = URIRef(f"http://bench.local/p{index % 7}")
                store.add(subject, predicate, Literal(f"{batch}:{index}"), graph=graph)
            for index in range(0, triples, 8):
                store.remove(
                    URIRef(f"http://bench.local/s{index % 48}"),
                    URIRef(f"http://bench.local/p{index % 7}"),
                    Literal(f"{batch}:{index}"),
                    graph=graph,
                )


def measure_undo_overhead(
    batches: int = 30, triples: int = 150, repeats: int = 5
) -> Dict:
    """Time the batched write loop with the undo log on vs off (best-of-N).

    Best-of-N is noise-robust: the minimum of repeated single-threaded runs
    converges on the true cost, while means drag in scheduler hiccups.
    """
    best = {}
    for enabled in (False, True):
        best[enabled] = float("inf")
        for _ in range(repeats):
            store = QuadStore()
            store.undo_enabled = enabled
            started = time.perf_counter()
            _undo_write_workload(store, batches, triples)
            best[enabled] = min(best[enabled], time.perf_counter() - started)

    # Rollback invariant: an aborted batch leaves the store byte-identical.
    store = QuadStore()
    _undo_write_workload(store, batches=2, triples=50)
    before = serialize_nquads(store)
    try:
        with store.write_batch():
            _undo_write_workload(store, batches=1, triples=50)
            raise RuntimeError("bench abort")
    except RuntimeError:
        pass
    rollback_identical = serialize_nquads(store) == before

    overhead_ratio = best[True] / best[False] if best[False] > 0 else 1.0
    return {
        "with_undo_seconds": round(best[True], 4),
        "without_undo_seconds": round(best[False], 4),
        "overhead_ratio": round(overhead_ratio, 4),
        "overhead_within_bound": overhead_ratio < 1.10,
        "rollback_identical": rollback_identical,
    }


def run_benchmark(num_tables: int, rows: int, readers: int, seed: int = 7) -> Dict:
    lake = _generate_lake(num_tables, rows, seed)
    # Warm process-wide caches (word model vectors, NER) so no timed run
    # pays one-off misses the others skip.
    KGGovernor().add_data_lake(_generate_lake(2, rows, seed + 1))

    # ------------------------------------------- sync baseline: per table
    started = time.perf_counter()
    per_table = KGGovernor()
    for table in lake.tables():
        single = DataLake("bench_async")
        single.add_table(table.dataset, table)
        per_table.add_data_lake(single)
    sync_per_table_seconds = time.perf_counter() - started

    # ------------------------------------------- sync baseline: bulk lake
    started = time.perf_counter()
    bulk = KGGovernor()
    bulk.add_data_lake(_generate_lake(num_tables, rows, seed))
    sync_bulk_seconds = time.perf_counter() - started

    # ------------------------------------------- service ingestion throughput
    service = GovernorService()
    started = time.perf_counter()
    tickets = [
        service.submit_table(table, table.dataset)
        for table in _generate_lake(num_tables, rows, seed).tables()
    ]
    for ticket in tickets:
        ticket.result(timeout=600)
    async_seconds = time.perf_counter() - started
    stats = dict(service.stats)
    throughput_graph = serialize_nquads(service.governor.storage.graph)
    service.close()
    service.governor.close()

    # ------------------------------------------- reader latency during ingest
    probe = (lake.tables()[0].dataset, lake.tables()[0].name)
    latency_service = GovernorService()
    client = LiDSClient(latency_service)
    stop = threading.Event()
    latencies: List[float] = []
    errors: List[BaseException] = []
    reader_threads = [
        threading.Thread(
            target=_reader_loop, args=(client, probe, stop, latencies, errors)
        )
        for _ in range(readers)
    ]
    for thread in reader_threads:
        thread.start()
    started = time.perf_counter()
    tickets = [
        latency_service.submit_table(table, table.dataset)
        for table in _generate_lake(num_tables, rows, seed).tables()
    ]
    for ticket in tickets:
        ticket.result(timeout=600)
    async_with_readers_seconds = time.perf_counter() - started
    stop.set()
    for thread in reader_threads:
        thread.join()

    # ------------------------------------------- idle reader baseline
    idle_stop = threading.Event()
    idle_latencies: List[float] = []
    idle_thread = threading.Thread(
        target=_reader_loop, args=(client, probe, idle_stop, idle_latencies, errors)
    )
    idle_thread.start()
    time.sleep(min(1.0, async_seconds / 4 + 0.1))
    idle_stop.set()
    idle_thread.join()

    graphs_identical = (
        throughput_graph
        == serialize_nquads(latency_service.governor.storage.graph)
        == serialize_nquads(per_table.storage.graph)
        == serialize_nquads(bulk.storage.graph)
    )
    latency_service.close()

    report = {
        "config": {
            "num_tables": len(lake.tables()),
            "rows": rows,
            "readers": readers,
            "seed": seed,
            "cpu_count": os.cpu_count(),
        },
        "sync_per_table_seconds": round(sync_per_table_seconds, 4),
        "sync_bulk_seconds": round(sync_bulk_seconds, 4),
        "async_seconds": round(async_seconds, 4),
        "async_with_readers_seconds": round(async_with_readers_seconds, 4),
        "async_tables_per_second": round(num_tables / async_seconds, 2)
        if async_seconds > 0
        else 0.0,
        # Headline: the service (per-client submissions, coalesced into
        # micro-batches) vs the blocking per-client path on the same lake.
        "ingest_speedup_vs_sync": round(sync_per_table_seconds / async_seconds, 2)
        if async_seconds > 0
        else 0.0,
        # Informational: how close the coalesced stream gets to the bulk
        # one-shot ideal (not named *speedup*: values near 1.0 are expected
        # and would only gate on noise).
        "throughput_vs_bulk_ratio": round(sync_bulk_seconds / async_seconds, 3)
        if async_seconds > 0
        else 0.0,
        "scheduler": {
            "batches": stats["batches"],
            "coalesced": stats["coalesced"],
            "submitted": stats["submitted"],
        },
        "readers": {
            "queries_during_ingestion": len(latencies),
            "errors": len(errors),
            "p50_ms_during_ingestion": round(_quantile(latencies, 0.50) * 1000, 2),
            "p95_ms_during_ingestion": round(_quantile(latencies, 0.95) * 1000, 2),
            "p50_ms_idle": round(_quantile(idle_latencies, 0.50) * 1000, 2),
            "p95_ms_idle": round(_quantile(idle_latencies, 0.95) * 1000, 2),
        },
        "graphs_identical": graphs_identical,
        "undo_log": measure_undo_overhead(),
    }
    per_table.close()
    bulk.close()
    return report


def print_report(report: Dict) -> None:
    config = report["config"]
    readers = report["readers"]
    rows = [
        ["sync per-table govern (s)", report["sync_per_table_seconds"], ""],
        ["sync bulk govern (s)", report["sync_bulk_seconds"], ""],
        [
            "service submit_table x N (s)",
            report["async_seconds"],
            report["ingest_speedup_vs_sync"],
        ],
        [
            "service ingest + hot readers (s)",
            report["async_with_readers_seconds"],
            "",
        ],
        ["reader p50 during ingest (ms)", readers["p50_ms_during_ingestion"], ""],
        ["reader p95 during ingest (ms)", readers["p95_ms_during_ingestion"], ""],
        ["reader p50 idle (ms)", readers["p50_ms_idle"], ""],
        ["reader p95 idle (ms)", readers["p95_ms_idle"], ""],
        [
            "undo-log overhead (x, on/off)",
            report["undo_log"]["overhead_ratio"],
            "",
        ],
    ]
    print(
        format_report_table(
            ["metric", "value", "speedup"],
            rows,
            title=f"Async governor bench ({config['num_tables']} tables, "
            f"{config['readers']} readers)",
        )
    )
    print(
        f"ingest speedup vs per-table sync {report['ingest_speedup_vs_sync']}x; "
        f"bulk ratio {report['throughput_vs_bulk_ratio']}; graphs identical: "
        f"{report['graphs_identical']}; reader errors: {readers['errors']}; "
        f"undo overhead {report['undo_log']['overhead_ratio']}x "
        f"(rollback identical: {report['undo_log']['rollback_identical']})"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tables", type=int, default=50)
    parser.add_argument("--rows", type=int, default=60)
    parser.add_argument("--readers", type=int, default=2)
    parser.add_argument("--output", type=Path, default=RESULT_PATH)
    args = parser.parse_args()
    if args.tables < 2:
        parser.error("--tables must be >= 2 (similarity needs at least one table pair)")
    report = run_benchmark(args.tables, args.rows, args.readers)
    print_report(report)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")


# ------------------------------------------------------------ pytest smoke
def test_async_governor_smoke():
    """Smoke configuration: queued ingestion must not lose to blocking calls.

    The acceptance bar (ingestion throughput >= the synchronous path on a
    50-table lake) is held by the committed full-size BENCH_async.json via
    check_regressions.py; the smoke sizes only assert correctness plus a
    loose throughput floor robust to CI noise.
    """
    num_tables = 10 if os.environ.get("REPRO_BENCH_SMOKE") else 16
    report = run_benchmark(num_tables=num_tables, rows=40, readers=2)
    assert report["graphs_identical"]
    assert report["readers"]["errors"] == 0
    assert report["readers"]["queries_during_ingestion"] > 0
    assert report["ingest_speedup_vs_sync"] >= 0.8
    assert report["scheduler"]["coalesced"] > 0
    assert report["undo_log"]["rollback_identical"]
    # The full-size baseline pins < 1.10; the smoke bar only catches gross
    # regressions (an accidental O(n) cost in the undo path).
    assert report["undo_log"]["overhead_ratio"] < 1.5


if __name__ == "__main__":
    main()
