"""Table 3 — LiDS graph vs GraphGen4Code graph: size and analysis time.

Abstracts the same pipeline corpus with the KGLiDS pipeline abstraction and
with the GraphGen4Code-style general-purpose abstraction, then compares the
number of triples, unique nodes, serialized size and analysis time.  Expected
shape: the GraphGen4Code graph is several times larger and slower to produce.
"""

import time

import pytest

from repro.baselines import GraphGen4Code
from repro.eval import format_report_table
from repro.kg import KGGovernor


def test_table3_graph_size_and_time(pipeline_corpus, benchmark):
    governor = KGGovernor()
    started = time.perf_counter()
    governor.add_pipelines(pipeline_corpus)
    kglids_seconds = time.perf_counter() - started
    kglids_stats = governor.storage.graph.statistics()
    kglids_bytes = governor.storage.graph.estimated_size_bytes()

    g4c = GraphGen4Code()
    started = time.perf_counter()
    g4c_store = g4c.abstract_scripts(pipeline_corpus)
    g4c_seconds = time.perf_counter() - started
    g4c_stats = g4c_store.statistics()
    g4c_bytes = g4c_store.estimated_size_bytes()

    rows = [
        ["No. triples", kglids_stats["num_triples"], g4c_stats["num_triples"]],
        ["No. unique nodes", kglids_stats["num_unique_nodes"], g4c_stats["num_unique_nodes"]],
        ["No. unique edge types", kglids_stats["num_unique_predicates"], g4c_stats["num_unique_predicates"]],
        ["Serialized size (KB)", round(kglids_bytes / 1024, 1), round(g4c_bytes / 1024, 1)],
        ["Analysis time (s)", round(kglids_seconds, 2), round(g4c_seconds, 2)],
    ]
    print()
    print(
        format_report_table(
            [f"statistic ({len(pipeline_corpus)} pipelines)", "KGLiDS", "GraphGen4Code"],
            rows,
            title="Table 3: pipeline-graph size and analysis time",
        )
    )

    # Shape: the general-purpose graph is substantially larger.
    assert g4c_stats["num_triples"] > 1.5 * kglids_stats["num_triples"]
    assert g4c_stats["num_unique_nodes"] > kglids_stats["num_unique_nodes"]

    # Benchmarked operation: KGLiDS abstraction of the corpus.
    benchmark.pedantic(
        lambda: KGGovernor().add_pipelines(pipeline_corpus), rounds=1, iterations=1
    )
