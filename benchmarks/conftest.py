"""Shared benchmark workloads.

Each paper experiment runs over a laptop-scale rendition of its workload:
the four discovery benchmarks, the Kaggle-style pipeline corpus, and the
cleaning / transformation / AutoML dataset collections.  Everything is
session-scoped so the individual benches stay fast.
"""

from __future__ import annotations

import pytest

from repro.datagen import (
    generate_automl_datasets,
    generate_cleaning_datasets,
    generate_discovery_benchmark,
    generate_pipeline_corpus,
    generate_transformation_datasets,
)
from repro.interfaces import KGLiDS
from repro.profiler import DataProfiler

#: Scaled-down renditions of the paper's four discovery benchmarks.
DISCOVERY_STYLES = {
    "d3l_small": dict(base_tables=4, partitions=4, rows=100, seed=1),
    "tus_small": dict(base_tables=5, partitions=4, rows=80, seed=2),
    "santos_small": dict(base_tables=3, partitions=3, rows=70, seed=3),
    "santos_large": dict(base_tables=7, partitions=5, rows=90, seed=4),
}

#: (N query tables considered, k values) per benchmark — the paper's settings
#: scaled to the generated lake sizes.
ACCURACY_SETTINGS = {
    "d3l_small": [1, 2, 3, 5],
    "tus_small": [1, 2, 3, 5],
    "santos_small": [1, 2, 3],
}


@pytest.fixture(scope="session")
def discovery_workloads():
    """style -> DiscoveryBenchmark for all four benchmark styles."""
    return {
        style: generate_discovery_benchmark(style, **config)
        for style, config in DISCOVERY_STYLES.items()
    }


@pytest.fixture(scope="session")
def profiled_workloads(discovery_workloads):
    """style -> list[TableProfile] using the default profiler."""
    profiler = DataProfiler()
    return {
        style: profiler.profile_data_lake(benchmark.lake)
        for style, benchmark in discovery_workloads.items()
    }


@pytest.fixture(scope="session")
def pipeline_corpus(discovery_workloads):
    """The Kaggle-style pipeline corpus over the TUS-style lake."""
    return generate_pipeline_corpus(
        discovery_workloads["tus_small"].lake, pipelines_per_table=3, seed=5
    )


@pytest.fixture(scope="session")
def bootstrapped_platform(discovery_workloads, pipeline_corpus):
    """A KGLiDS platform bootstrapped over the TUS-style lake + corpus."""
    return KGLiDS.bootstrap(
        lake=discovery_workloads["tus_small"].lake, scripts=pipeline_corpus, train_models=True
    )


@pytest.fixture(scope="session")
def cleaning_datasets():
    """The Table 5 workload: 10 datasets with nulls, the last 3 much larger."""
    return generate_cleaning_datasets(count=10, base_rows=80)


@pytest.fixture(scope="session")
def transformation_datasets():
    """The Table 6 workload: 10 datasets with skewed / badly-scaled features."""
    return generate_transformation_datasets(count=10, base_rows=80)


@pytest.fixture(scope="session")
def automl_datasets():
    """The Figure 9 workload: a binary/multiclass mix."""
    return generate_automl_datasets(count=8, base_rows=110)
