"""Figure 9 — AutoML F1 difference: Pip_LiDS vs Pip_G4C.

For every AutoML dataset, the KGpip search runs twice under the same budget:
once seeded with the hyperparameter values recorded in the LiDS graph
(``Pip_LiDS``) and once uninformed (``Pip_G4C``, the GraphGen4Code-based
configuration whose graph lacks parameter names).  The figure reports the
per-dataset F1 difference; the expected shape is that ``Pip_LiDS`` wins on
most datasets and on the mean.

Re-hosted on :class:`~repro.interfaces.api.LiDSClient`: the informed search
is the client's own ``automl(...)`` entry point, while the uninformed run
uses a ``KGpipAutoML`` with ``use_lids_priors=False`` over the same storage.
Both searches pin ``strategy="random"`` so that — exactly as in the paper's
figure — the *only* difference is the recorded hyperparameter values; the
evolution-vs-random comparison lives in ``bench_automl_evolution.py``.  The
timing probe at the end runs the client's default (evolutionary) strategy.
"""

import numpy as np
import pytest

from repro.automl import KGpipAutoML
from repro.eval import format_report_table
from repro.interfaces import LiDSClient

SEARCH_BUDGET_SECONDS = 20.0
MAX_EVALUATIONS = 4


def test_fig9_automl_lids_vs_g4c(bootstrapped_platform, automl_datasets, benchmark):
    client = LiDSClient(bootstrapped_platform.governor)
    rows = []
    differences = []
    for dataset in automl_datasets:
        uninformed = KGpipAutoML(
            storage=client.storage,
            profiler=client.governor.profiler,
            colr_models=client.governor.colr_models,
            use_lids_priors=False,
            random_state=7,
        )
        client.kgpip.random_state = 7
        lids_result = client.automl(
            dataset.table, dataset.target, strategy="random",
            time_budget_seconds=SEARCH_BUDGET_SECONDS,
            max_evaluations=MAX_EVALUATIONS, cv=2,
        )
        g4c_result = uninformed.search(
            dataset.table, dataset.target, strategy="random",
            time_budget_seconds=SEARCH_BUDGET_SECONDS,
            max_evaluations=MAX_EVALUATIONS, cv=2,
        )
        difference = lids_result.best_score - g4c_result.best_score
        differences.append(difference)
        rows.append(
            [
                f"{dataset.dataset_id} - {dataset.name}",
                dataset.task,
                round(lids_result.best_score, 3),
                round(g4c_result.best_score, 3),
                round(difference, 3),
                lids_result.best_estimator_name.split(".")[-1],
            ]
        )
    rows.append(
        ["mean", "-", "-", "-", round(float(np.mean(differences)), 3), "-"]
    )
    print()
    print(
        format_report_table(
            ["dataset", "task", "Pip_LiDS F1", "Pip_G4C F1", "difference", "best estimator"],
            rows,
            title="Figure 9: F1 difference between Pip_LiDS and Pip_G4C",
        )
    )

    # Shape assertions: under the same budget the LiDS-informed search is at
    # least as good on average and wins (or effectively ties) on at least
    # half of the datasets.
    assert float(np.mean(differences)) >= -0.02
    wins_or_ties = sum(1 for difference in differences if difference >= -0.01)
    assert wins_or_ties >= len(differences) / 2

    smallest = automl_datasets[0]
    benchmark.pedantic(
        lambda: client.automl(
            smallest.table, smallest.target, time_budget_seconds=5.0, max_evaluations=2, cv=2
        ),
        rounds=1,
        iterations=1,
    )
