"""Figure 8 — Data transformation execution time and memory vs dataset size.

Measures, per transformation dataset (sorted by size), the wall-clock time
and peak Python memory of AutoLearn and of KGLiDS' recommendation +
application.  Expected shape: AutoLearn's cost grows quickly with the number
of rows and features (it is quadratic in features and builds pairwise
distance matrices), while KGLiDS stays nearly flat.
"""

import numpy as np
import pytest

from repro.baselines import AutoLearn
from repro.eval import format_report_table, measure_call


def test_fig8_transformation_time_and_memory(bootstrapped_platform, transformation_datasets, benchmark):
    datasets = sorted(transformation_datasets, key=lambda d: d.size_cells)
    rows = []
    kglids_time, autolearn_time = [], []
    kglids_memory, autolearn_memory = [], []
    for dataset in datasets:
        autolearn_run = measure_call(
            lambda table=dataset.table, target=dataset.target: AutoLearn().transform(table, target)
        )
        kglids_run = measure_call(
            lambda table=dataset.table, target=dataset.target: bootstrapped_platform.apply_transformations(
                bootstrapped_platform.recommend_transformations(table, target=target), table, target=target
            )
        )
        if not autolearn_run.failed:
            autolearn_time.append(autolearn_run.elapsed_seconds)
            autolearn_memory.append(autolearn_run.peak_memory_mb)
        kglids_time.append(kglids_run.elapsed_seconds)
        kglids_memory.append(kglids_run.peak_memory_mb)
        rows.append(
            [
                dataset.dataset_id,
                dataset.size_cells,
                round(autolearn_run.elapsed_seconds, 2),
                round(autolearn_run.peak_memory_mb, 2),
                round(kglids_run.elapsed_seconds, 2),
                round(kglids_run.peak_memory_mb, 2),
            ]
        )
    print()
    print(
        format_report_table(
            ["dataset", "cells", "AutoLearn time (s)", "AutoLearn mem (MB)", "KGLiDS time (s)", "KGLiDS mem (MB)"],
            rows,
            title="Figure 8: transformation time and memory vs dataset size",
        )
    )

    # Shape assertions: AutoLearn's memory grows markedly with dataset size
    # (its pairwise distance matrices), while KGLiDS' footprint grows more
    # slowly and stays small in absolute terms.
    if len(autolearn_memory) >= 3:
        autolearn_growth = autolearn_memory[-1] / max(autolearn_memory[0], 0.05)
        kglids_growth = kglids_memory[-1] / max(kglids_memory[0], 0.05)
        assert autolearn_growth >= kglids_growth
        assert autolearn_time[-1] >= autolearn_time[0]
    assert max(kglids_memory) < 32.0

    smallest = datasets[0]
    benchmark.pedantic(
        lambda: bootstrapped_platform.recommend_transformations(smallest.table, target=smallest.target),
        rounds=1,
        iterations=1,
    )
