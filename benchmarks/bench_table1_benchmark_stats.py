"""Table 1 — Data discovery benchmark statistics.

Regenerates the benchmark-statistics table: number of tables, query tables,
average unionable tables per query, average rows per table, total columns and
the fine-grained type breakdown produced by the KGLiDS profiler.
"""

import pytest

from repro.eval import format_report_table
from repro.profiler import DataProfiler
from repro.types import FINE_GRAINED_TYPES


def test_table1_benchmark_statistics(discovery_workloads, profiled_workloads, benchmark):
    rows = []
    for style, workload in discovery_workloads.items():
        profiles = profiled_workloads[style]
        stats = DataProfiler.lake_statistics(profiles)
        row = [
            style,
            workload.num_tables,
            len(workload.query_tables),
            round(workload.average_unionable_per_query(), 1),
            round(stats["avg_rows_per_table"], 1),
            stats["total_columns"],
        ] + [stats[f"{type_name}_cols"] for type_name in FINE_GRAINED_TYPES]
        rows.append(row)
    headers = [
        "benchmark",
        "tables",
        "query tables",
        "avg unionable",
        "avg rows",
        "columns",
    ] + list(FINE_GRAINED_TYPES)
    print()
    print(format_report_table(headers, rows, title="Table 1: discovery benchmark statistics"))

    # Sanity: every column is assigned exactly one fine-grained type.
    for style, profiles in profiled_workloads.items():
        stats = DataProfiler.lake_statistics(profiles)
        assert sum(stats[f"{t}_cols"] for t in FINE_GRAINED_TYPES) == stats["total_columns"]

    # The benchmarked operation: profiling the smallest lake.
    profiler = DataProfiler()
    smallest = discovery_workloads["santos_small"].lake
    benchmark.pedantic(lambda: profiler.profile_data_lake(smallest), rounds=1, iterations=1)
