"""Figure 7 — Data cleaning execution time and memory vs dataset size.

Measures, per cleaning dataset (sorted by size), the wall-clock time and peak
Python memory of HoloClean and of KGLiDS' on-demand recommendation +
application.  Expected shape: HoloClean's time and memory grow with the
dataset (running out of memory on the largest ones), while KGLiDS' stay
nearly flat because its models operate on fixed-size embeddings.
"""

import numpy as np
import pytest

from repro.baselines import HoloCleanAimnet
from repro.eval import format_report_table, measure_call

HOLOCLEAN_MEMORY_BUDGET_MB = 0.9


def test_fig7_cleaning_time_and_memory(bootstrapped_platform, cleaning_datasets, benchmark):
    datasets = sorted(cleaning_datasets, key=lambda d: d.size_cells)
    rows = []
    kglids_memory, holoclean_memory, holoclean_failures = [], [], 0
    kglids_time, holoclean_time = [], []
    for dataset in datasets:
        holoclean_run = measure_call(
            lambda table=dataset.table: HoloCleanAimnet().clean(table),
            memory_budget_mb=HOLOCLEAN_MEMORY_BUDGET_MB,
        )
        kglids_run = measure_call(
            lambda table=dataset.table: bootstrapped_platform.apply_cleaning_operations(
                bootstrapped_platform.recommend_cleaning_operations(table), table
            )
        )
        if holoclean_run.failed:
            holoclean_failures += 1
        else:
            holoclean_memory.append(holoclean_run.peak_memory_mb)
            holoclean_time.append(holoclean_run.elapsed_seconds)
        kglids_memory.append(kglids_run.peak_memory_mb)
        kglids_time.append(kglids_run.elapsed_seconds)
        rows.append(
            [
                dataset.dataset_id,
                dataset.size_cells,
                "OOM" if holoclean_run.failed else round(holoclean_run.elapsed_seconds, 2),
                "OOM" if holoclean_run.failed else round(holoclean_run.peak_memory_mb, 2),
                round(kglids_run.elapsed_seconds, 2),
                round(kglids_run.peak_memory_mb, 2),
            ]
        )
    print()
    print(
        format_report_table(
            ["dataset", "cells", "HoloClean time (s)", "HoloClean mem (MB)", "KGLiDS time (s)", "KGLiDS mem (MB)"],
            rows,
            title="Figure 7: cleaning time and memory vs dataset size",
        )
    )

    assert not any(np.isnan(kglids_memory))
    # HoloClean exceeds its memory budget on the largest datasets while
    # KGLiDS completes all of them within a small bounded footprint.
    assert holoclean_failures >= 1
    assert max(kglids_memory) < 32.0
    # HoloClean memory grows with dataset size on the datasets it completes.
    if len(holoclean_memory) >= 3:
        assert holoclean_memory[-1] >= holoclean_memory[0]

    smallest = datasets[0]
    benchmark.pedantic(
        lambda: bootstrapped_platform.recommend_cleaning_operations(smallest.table),
        rounds=1,
        iterations=1,
    )
