"""Table 2 — Preprocessing and average query time for union search.

Compares SANTOS, Starmie and KGLiDS on every discovery benchmark.  The
expected shape (the paper's result): KGLiDS has the lowest preprocessing and
query times, Starmie sits in between (its per-lake embedding training
dominates preprocessing), and SANTOS is slowest because it works at value
granularity both offline and per query.
"""

import time

import pytest

from _helpers import KGLiDSDiscovery
from repro.baselines import SantosUnionSearch, StarmieUnionSearch
from repro.eval import format_report_table
from repro.profiler import DataProfiler


def _time_system(preprocess, query_fn, queries):
    started = time.perf_counter()
    preprocess()
    preprocessing_seconds = time.perf_counter() - started
    started = time.perf_counter()
    for query in queries:
        query_fn(query)
    query_seconds = (time.perf_counter() - started) / max(1, len(queries))
    return preprocessing_seconds, query_seconds


def test_table2_preprocessing_and_query_time(discovery_workloads, profiled_workloads, benchmark):
    rows = []
    summary = {}
    for style, workload in discovery_workloads.items():
        queries = workload.query_tables
        query_tables = [workload.lake.table(*query) for query in queries]

        santos = SantosUnionSearch()
        santos_pre, santos_query = _time_system(
            lambda: santos.preprocess(workload.lake),
            lambda table: santos.query(table, k=10),
            query_tables,
        )
        starmie = StarmieUnionSearch(training_epochs=10)
        starmie_pre, starmie_query = _time_system(
            lambda: starmie.preprocess(workload.lake),
            lambda table: starmie.query(table, k=10),
            query_tables,
        )
        profiler = DataProfiler()
        kglids = KGLiDSDiscovery()
        started = time.perf_counter()
        profiles = profiler.profile_data_lake(workload.lake)
        kglids.preprocess(profiles)
        kglids_pre = time.perf_counter() - started
        started = time.perf_counter()
        for query in queries:
            kglids.query(query, k=10)
        kglids_query = (time.perf_counter() - started) / max(1, len(queries))

        summary[style] = {
            "santos": (santos_pre, santos_query),
            "starmie": (starmie_pre, starmie_query),
            "kglids": (kglids_pre, kglids_query),
        }
        rows.append([style, "preprocessing (s)", round(santos_pre, 3), round(starmie_pre, 3), round(kglids_pre, 3)])
        rows.append([style, "avg query (s)", round(santos_query, 4), round(starmie_query, 4), round(kglids_query, 4)])

    print()
    print(
        format_report_table(
            ["benchmark", "phase", "SANTOS", "Starmie", "KGLiDS"],
            rows,
            title="Table 2: preprocessing and average query time",
        )
    )

    # Shape assertions: KGLiDS answers union queries faster than both
    # baselines on every benchmark (its queries read materialized scores,
    # while SANTOS re-compares value pairs and Starmie probes the ANN index).
    # The paper's preprocessing ordering (SANTOS slowest by far) does not
    # fully reproduce at laptop scale because the offline gazetteer KB is
    # tiny compared to YAGO — see EXPERIMENTS.md for the discussion.
    for style, timings in summary.items():
        assert timings["kglids"][1] <= timings["santos"][1]
        assert timings["kglids"][1] <= timings["starmie"][1]

    # Benchmarked operation: a single KGLiDS union query on the largest lake.
    profiles = profiled_workloads["santos_large"]
    discovery = KGLiDSDiscovery()
    discovery.preprocess(profiles)
    query = discovery_workloads["santos_large"].query_tables[0]
    benchmark(lambda: discovery.query(query, k=10))
