"""Shared helpers for the benchmark harness."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence, Tuple

from repro.datagen.data_lake import DiscoveryBenchmark
from repro.kg.dataset_graph import DataGlobalSchemaBuilder
from repro.ml import RandomForestClassifier
from repro.ml.model_selection import cross_val_accuracy, cross_val_f1
from repro.profiler.profile import TableProfile
from repro.rdf import QuadStore
from repro.tabular import Table

TableKey = Tuple[str, str]


class KGLiDSDiscovery:
    """The discovery slice of KGLiDS: profile once, answer union queries fast.

    Preprocessing runs the profiler + Data Global Schema Builder; queries read
    the materialized unionability scores, which is why KGLiDS' query times in
    Table 2 are dominated by index lookups rather than value comparisons.
    """

    def __init__(self, builder: DataGlobalSchemaBuilder | None = None):
        self.builder = builder or DataGlobalSchemaBuilder()
        self._rankings: Dict[TableKey, List[TableKey]] = {}

    def preprocess(self, table_profiles: Sequence[TableProfile]) -> int:
        store = QuadStore()
        edges = self.builder.build(table_profiles, store)
        scores = self.builder.derive_table_relationships(table_profiles, edges)
        ranked: Dict[TableKey, List[Tuple[float, TableKey]]] = defaultdict(list)
        for (table_a, table_b, kind), score in scores.items():
            if kind != "unionable":
                continue
            key_a = tuple(table_a.split("/", 1))
            key_b = tuple(table_b.split("/", 1))
            ranked[key_a].append((score, key_b))
            ranked[key_b].append((score, key_a))
        self._rankings = {
            key: [candidate for _, candidate in sorted(candidates, reverse=True)]
            for key, candidates in ranked.items()
        }
        return len(self._rankings)

    def query(self, table_key: TableKey, k: int = 10) -> List[TableKey]:
        return self._rankings.get(table_key, [])[:k]


def rankings_for_benchmark(
    discovery: KGLiDSDiscovery, benchmark: DiscoveryBenchmark, k: int = 10
) -> Dict[TableKey, List[TableKey]]:
    """Ranked union candidates for every query table of a benchmark."""
    return {query: discovery.query(query, k=k) for query in benchmark.query_tables}


def baseline_rankings(system, benchmark: DiscoveryBenchmark, k: int = 10) -> Dict[TableKey, List[TableKey]]:
    """Ranked union candidates from a baseline system (already preprocessed)."""
    rankings = {}
    for query in benchmark.query_tables:
        ranked = system.query(benchmark.lake.table(*query), k=k)
        rankings[query] = [key for key, _ in ranked]
    return rankings


def downstream_f1(table: Table, target: str, seed: int = 0) -> float:
    """Cross-validated F1 of a random forest on the (cleaned) table — Table 5's metric."""
    X, _ = table.to_feature_matrix(target=target)
    y = table.target_vector(target)
    if len(y) < 6:
        return 0.0
    model = RandomForestClassifier(n_estimators=8, max_depth=8, random_state=seed)
    return cross_val_f1(model, X, y, cv=3, random_state=seed)


def downstream_accuracy(table: Table, target: str, seed: int = 0) -> float:
    """Cross-validated accuracy of a random forest — Table 6's metric."""
    X, _ = table.to_feature_matrix(target=target)
    y = table.target_vector(target)
    if len(y) < 6:
        return 0.0
    model = RandomForestClassifier(n_estimators=8, max_depth=8, random_state=seed)
    return cross_val_accuracy(model, X, y, cv=3, random_state=seed)
