"""Table 5 — Data cleaning F1: drop-nulls baseline vs HoloClean vs KGLiDS.

Each dataset is cleaned by the three approaches and a random-forest classifier
is trained on the result with cross-validation; the F1 score is the quality
measure of the cleaning (Section 6.3.1).  HoloClean runs under a memory
budget so that, as in the paper, it fails with OOM on the largest datasets
while KGLiDS' fixed-size-embedding approach still completes.
"""

import pytest

from _helpers import downstream_f1
from repro.baselines import HoloCleanAimnet
from repro.eval import format_report_table, measure_call

#: Simulated memory budget (MB of Python-allocated memory) for HoloClean,
#: standing in for the paper's 189 GB VM limit.  The three largest datasets
#: exceed it, reproducing the OOM failures of Table 5.
HOLOCLEAN_MEMORY_BUDGET_MB = 0.9


def test_table5_cleaning_f1(bootstrapped_platform, cleaning_datasets, benchmark):
    rows = []
    kglids_scores, holoclean_scores, oom_count = [], [], 0
    for dataset in cleaning_datasets:
        baseline_f1 = downstream_f1(dataset.table.drop_rows_with_missing(), dataset.target)

        holoclean_run = measure_call(
            lambda table=dataset.table: HoloCleanAimnet().clean(table),
            memory_budget_mb=HOLOCLEAN_MEMORY_BUDGET_MB,
        )
        if holoclean_run.failed:
            holoclean_f1 = None
            oom_count += 1
        else:
            holoclean_f1 = downstream_f1(holoclean_run.result, dataset.target)
            holoclean_scores.append(holoclean_f1)

        recommendations = bootstrapped_platform.recommend_cleaning_operations(dataset.table)
        cleaned = bootstrapped_platform.apply_cleaning_operations(recommendations, dataset.table)
        kglids_f1 = downstream_f1(cleaned, dataset.target)
        kglids_scores.append(kglids_f1)

        rows.append(
            [
                f"{dataset.dataset_id} - {dataset.name}",
                dataset.table.num_rows,
                round(baseline_f1, 3),
                "OOM" if holoclean_f1 is None else round(holoclean_f1, 3),
                round(kglids_f1, 3),
                recommendations[0][0],
            ]
        )
    print()
    print(
        format_report_table(
            ["dataset", "rows", "baseline (drop nulls)", "HoloClean", "KGLiDS", "KGLiDS operation"],
            rows,
            title="Table 5: F1 scores for data cleaning",
        )
    )

    # Shape assertions: KGLiDS completes every dataset with competitive F1,
    # HoloClean hits the memory budget on the largest datasets.
    assert len(kglids_scores) == len(cleaning_datasets)
    assert oom_count >= 1
    if holoclean_scores:
        mean_holoclean = sum(holoclean_scores) / len(holoclean_scores)
        mean_kglids_on_same = sum(kglids_scores[: len(holoclean_scores)]) / len(holoclean_scores)
        assert mean_kglids_on_same >= mean_holoclean - 0.1

    smallest = cleaning_datasets[0]
    benchmark.pedantic(
        lambda: bootstrapped_platform.apply_cleaning_operations(
            bootstrapped_platform.recommend_cleaning_operations(smallest.table), smallest.table
        ),
        rounds=1,
        iterations=1,
    )
