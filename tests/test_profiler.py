"""Unit tests for NER, fine-grained type inference, statistics and profiling."""

import json

import numpy as np
import pytest

from repro.profiler import (
    ColumnProfile,
    DataProfiler,
    FineGrainedTypeInferrer,
    NamedEntityRecognizer,
    collect_statistics,
)
from repro.tabular import Column, DataLake, Table
from repro.types import FINE_GRAINED_TYPES


class TestNER:
    def test_person_recognition(self):
        ner = NamedEntityRecognizer()
        assert ner.recognize("James Smith") == "PERSON"
        assert ner.recognize("Fatima Khan") == "PERSON"

    def test_location_recognition(self):
        ner = NamedEntityRecognizer()
        assert ner.recognize("Montreal") == "GPE"
        assert ner.recognize("Canada") == "GPE"

    def test_organization_and_language(self):
        ner = NamedEntityRecognizer()
        assert ner.recognize("Google") == "ORG"
        assert ner.recognize("French") == "LANGUAGE"

    def test_non_entities(self):
        ner = NamedEntityRecognizer(use_shape_heuristic=False)
        assert ner.recognize("X9-11") is None
        assert ner.recognize("the product was great") is None
        assert ner.recognize("") is None
        assert ner.recognize(None) is None

    def test_shape_heuristic(self):
        ner = NamedEntityRecognizer()
        assert ner.recognize("Zorblat Qixx") == "PROPER_NOUN"

    def test_entity_ratio(self):
        ner = NamedEntityRecognizer()
        assert ner.entity_ratio(["Montreal", "Cairo", "x9"]) == pytest.approx(2 / 3)
        assert ner.entity_ratio([]) == 0.0


class TestTypeInference:
    @pytest.fixture()
    def inferrer(self):
        return FineGrainedTypeInferrer()

    def test_int_and_float(self, inferrer):
        assert inferrer.infer(Column("a", list(range(20)))) == "int"
        assert inferrer.infer(Column("a", [1.5, 2.25, 3.75] * 5)) == "float"

    def test_boolean(self, inferrer):
        assert inferrer.infer(Column("a", [True, False] * 10)) == "boolean"
        assert inferrer.infer(Column("a", [0, 1, 1, 0] * 5)) == "boolean"
        assert inferrer.infer(Column("a", ["yes", "no"] * 10)) == "boolean"

    def test_date(self, inferrer):
        assert inferrer.infer(Column("a", ["2021-01-01", "2020-06-15"] * 6)) == "date"

    def test_named_entity(self, inferrer):
        values = ["James Smith", "Mary Johnson", "Montreal", "Canada"] * 5
        assert inferrer.infer(Column("a", values)) == "named_entity"

    def test_natural_language(self, inferrer):
        values = [
            "the product is excellent and I would recommend it",
            "poor quality do not buy this one at all",
        ] * 8
        assert inferrer.infer(Column("a", values)) == "natural_language"

    def test_generic_string(self, inferrer):
        assert inferrer.infer(Column("a", ["C85", "B42", "E12", "QX7"] * 5)) == "string"

    def test_empty_column_defaults_to_string(self, inferrer):
        assert inferrer.infer(Column("a", [None, None])) == "string"

    def test_all_types_are_known(self, inferrer):
        for values in ([1], [1.5], [True, False], ["2020-01-01"], ["James Smith"], ["x"]):
            assert inferrer.infer(Column("a", values * 10)) in FINE_GRAINED_TYPES


class TestStatistics:
    def test_numeric_statistics(self):
        stats = collect_statistics(Column("a", [1, 2, 3, None]), "int")
        assert stats.count == 4
        assert stats.missing_count == 1
        assert stats.minimum == 1 and stats.maximum == 3
        assert stats.mean == pytest.approx(2.0)
        assert stats.missing_ratio == pytest.approx(0.25)

    def test_boolean_statistics(self):
        stats = collect_statistics(Column("a", [True, True, False]), "boolean")
        assert stats.true_ratio == pytest.approx(2 / 3)

    def test_string_statistics(self):
        stats = collect_statistics(Column("a", ["ab", "abcd"]), "string")
        assert stats.average_length == pytest.approx(3.0)

    def test_to_dict_round_trip(self):
        stats = collect_statistics(Column("a", [1, 2]), "int")
        assert json.dumps(stats.to_dict())


class TestDataProfiler:
    def test_profile_column_fields(self, titanic_table):
        profiler = DataProfiler()
        profile = profiler.profile_column(titanic_table, titanic_table.column("Age"))
        assert profile.fine_grained_type == "int"
        assert profile.embedding.shape == (300,)
        assert profile.column_id == "titanic/train/Age"
        assert json.loads(profile.to_json())["column"] == "Age"

    def test_profile_table_types(self, titanic_table):
        profiler = DataProfiler()
        table_profile = profiler.profile_table(titanic_table)
        types = {p.column_name: p.fine_grained_type for p in table_profile.column_profiles}
        assert types["Name"] == "named_entity"
        assert types["Survived"] == "boolean"
        assert types["Embarked_date"] == "date"
        assert types["Cabin"] == "string"
        assert table_profile.embedding.shape == (1800,)

    def test_profile_data_lake_and_statistics(self, small_lake):
        profiler = DataProfiler()
        profiles = profiler.profile_data_lake(small_lake)
        assert len(profiles) == 2
        stats = DataProfiler.lake_statistics(profiles)
        assert stats["num_tables"] == 2
        assert stats["total_columns"] == small_lake.num_columns
        type_total = sum(stats[f"{type_name}_cols"] for type_name in FINE_GRAINED_TYPES)
        assert type_total == small_lake.num_columns

    def test_subsampling_fraction_controls_sample(self, titanic_table):
        full = DataProfiler(sample_fraction=1.0, min_sample_size=10_000)
        sampled = DataProfiler(sample_fraction=0.1, min_sample_size=2)
        profile_full = full.profile_column(titanic_table, titanic_table.column("Fare"))
        profile_sampled = sampled.profile_column(titanic_table, titanic_table.column("Fare"))
        assert profile_full.embedding.shape == profile_sampled.embedding.shape

    def test_type_breakdown_sums_to_columns(self, titanic_table):
        profiler = DataProfiler()
        table_profile = profiler.profile_table(titanic_table)
        breakdown = table_profile.type_breakdown()
        assert sum(breakdown.values()) == titanic_table.num_columns
