"""Unit tests for the classifier implementations."""

import numpy as np
import pytest

from repro.ml import (
    DecisionTreeClassifier,
    GaussianNB,
    GradientBoostingClassifier,
    KNeighborsClassifier,
    LinearRegression,
    LogisticRegression,
    RandomForestClassifier,
    RidgeRegression,
    accuracy_score,
    clone,
)
from repro.ml.tree import DecisionTreeRegressor


@pytest.fixture(scope="module")
def binary_data():
    rng = np.random.RandomState(0)
    X = np.vstack([rng.normal(0, 1, (40, 3)), rng.normal(3, 1, (40, 3))])
    y = np.array([0] * 40 + [1] * 40)
    return X, y


@pytest.fixture(scope="module")
def multiclass_data():
    rng = np.random.RandomState(1)
    X = np.vstack([rng.normal(i * 3, 0.8, (25, 2)) for i in range(3)])
    y = np.array([0] * 25 + [1] * 25 + [2] * 25)
    return X, y


ALL_CLASSIFIERS = [
    DecisionTreeClassifier(max_depth=5),
    RandomForestClassifier(n_estimators=5, max_depth=5),
    GradientBoostingClassifier(n_estimators=5, max_depth=2),
    LogisticRegression(max_iter=150),
    KNeighborsClassifier(n_neighbors=3),
    GaussianNB(),
]


class TestClassifiers:
    @pytest.mark.parametrize("estimator", ALL_CLASSIFIERS, ids=lambda e: type(e).__name__)
    def test_binary_separable(self, binary_data, estimator):
        X, y = binary_data
        model = clone(estimator).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.9

    @pytest.mark.parametrize("estimator", ALL_CLASSIFIERS, ids=lambda e: type(e).__name__)
    def test_multiclass_separable(self, multiclass_data, estimator):
        X, y = multiclass_data
        model = clone(estimator).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.85

    @pytest.mark.parametrize("estimator", ALL_CLASSIFIERS, ids=lambda e: type(e).__name__)
    def test_predict_proba_sums_to_one(self, binary_data, estimator):
        X, y = binary_data
        model = clone(estimator).fit(X, y)
        probabilities = model.predict_proba(X[:10])
        assert probabilities.shape == (10, 2)
        assert np.allclose(probabilities.sum(axis=1), 1.0, atol=1e-6)

    def test_string_labels_supported(self, binary_data):
        X, y = binary_data
        labels = np.where(y == 1, "yes", "no")
        model = RandomForestClassifier(n_estimators=3, max_depth=4).fit(X, labels)
        assert set(model.predict(X)) <= {"yes", "no"}

    def test_unfitted_raises(self, binary_data):
        X, _ = binary_data
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict(X)
        with pytest.raises(RuntimeError):
            LogisticRegression().predict(X)

    def test_score_method(self, binary_data):
        X, y = binary_data
        assert GaussianNB().fit(X, y).score(X, y) > 0.9


class TestParamsAndClone:
    def test_get_params(self):
        model = RandomForestClassifier(n_estimators=7)
        assert model.get_params()["n_estimators"] == 7

    def test_set_params_validates(self):
        model = RandomForestClassifier()
        with pytest.raises(ValueError):
            model.set_params(bogus=1)

    def test_clone_is_unfitted_copy(self, binary_data):
        X, y = binary_data
        model = DecisionTreeClassifier(max_depth=3).fit(X, y)
        copy = clone(model)
        assert copy.get_params()["max_depth"] == 3
        with pytest.raises(RuntimeError):
            copy.predict(X)

    def test_repr_contains_params(self):
        assert "n_neighbors=5" in repr(KNeighborsClassifier())


class TestRegressors:
    def test_linear_regression_recovers_coefficients(self):
        rng = np.random.RandomState(0)
        X = rng.normal(size=(100, 2))
        y = 3.0 * X[:, 0] - 2.0 * X[:, 1] + 5.0
        model = LinearRegression().fit(X, y)
        assert model.coef_ == pytest.approx([3.0, -2.0], abs=1e-6)
        assert model.intercept_ == pytest.approx(5.0, abs=1e-6)
        assert model.score(X, y) > 0.999

    def test_ridge_shrinks_towards_zero(self):
        rng = np.random.RandomState(0)
        X = rng.normal(size=(50, 1))
        y = 10.0 * X[:, 0]
        strong = RidgeRegression(alpha=1000.0).fit(X, y)
        weak = RidgeRegression(alpha=0.001).fit(X, y)
        assert abs(strong.coef_[0]) < abs(weak.coef_[0])

    def test_tree_regressor_fits_step_function(self):
        X = np.linspace(0, 1, 60).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(float) * 10.0
        model = DecisionTreeRegressor(max_depth=2).fit(X, y)
        predictions = model.predict(X)
        assert np.abs(predictions - y).mean() < 0.5
