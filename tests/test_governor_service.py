"""The governor service: queued ingestion, read views, concurrent safety.

Pins the contracts of the service-API redesign:

* ``submit_*`` returns tickets that resolve with merged ``GovernorReport``s,
  and a lake governed through the service is byte-identical to synchronous
  governing;
* the scheduler coalesces adjacent table submissions into micro-batches and
  the bounded queue applies back-pressure;
* ``GovernorReport.merge`` / ``__add__`` compose associatively;
* the store's read/write gate: write batches are atomic for readers, read
  views nest, upgrades raise instead of deadlocking;
* sqlite backends survive cross-thread use (ingest on the scheduler thread,
  read on the main thread);
* a concurrent stress run — readers hammering discovery queries while a
  50-table lake streams in — sees no torn reads and ends byte-identical to
  the synchronous graph;
* ``LiDSClient`` fronts live services and saved directories (read-only).
"""

from __future__ import annotations

import queue
import threading
import time

import numpy as np
import pytest

from repro.interfaces import KGLiDS, LiDSClient
from repro.kg import GovernorService, KGGovernor
from repro.kg.governor import GovernorReport
from repro.kg.linker import LinkReport
from repro.kg.ontology import DATASET_GRAPH
from repro.rdf import Literal, QuadStore, URIRef
from repro.rdf.serialize import serialize_nquads
from repro.tabular import DataLake, Table


def make_lake(num_tables: int, rows: int = 8, seed: int = 3, name: str = "svc") -> DataLake:
    """A small lake with overlapping schemas so similarity edges appear."""
    lake = DataLake(name)
    rng = np.random.RandomState(seed)
    for index in range(num_tables):
        dataset = f"ds{index % 3}"
        lake.add_table(
            dataset,
            Table.from_dict(
                f"table_{index}",
                {
                    "amount": list(rng.normal(100, 5, rows)),
                    "quantity": list(rng.randint(1, 50, rows)),
                    "region": ["north", "south", "east", "west"] * (rows // 4),
                },
            ),
        )
    return lake


def snapshot(store: QuadStore) -> str:
    return serialize_nquads(store)


@pytest.fixture
def service():
    service = GovernorService(max_batch_tables=8)
    yield service
    service.close()


# ---------------------------------------------------------------------------
# Tickets + byte identity
# ---------------------------------------------------------------------------
class TestSubmission:
    def test_lake_via_service_is_byte_identical_to_sync(self, service):
        sync = KGGovernor()
        sync_report = sync.add_data_lake(make_lake(6))
        ticket = service.submit_lake(make_lake(6))
        report = ticket.result(timeout=120)
        assert ticket.status == "done" and ticket.done()
        assert report.num_tables_profiled == sync_report.num_tables_profiled
        assert report.num_similarity_edges == sync_report.num_similarity_edges
        assert snapshot(service.governor.storage.graph) == snapshot(sync.storage.graph)

    def test_per_table_submissions_match_sync_one_shot(self, service):
        sync = KGGovernor()
        sync.add_data_lake(make_lake(6))
        tickets = [
            service.submit_table(table, table.dataset)
            for table in make_lake(6).tables()
        ]
        reports = [ticket.result(timeout=120) for ticket in tickets]
        assert sum(r is reports[0] for r in reports) >= 1
        assert snapshot(service.governor.storage.graph) == snapshot(sync.storage.graph)

    def test_coalesced_tickets_share_one_merged_batch_report(self, service):
        service.pause()
        tickets = [
            service.submit_table(table, table.dataset)
            for table in make_lake(4).tables()
        ]
        service.resume()
        reports = [ticket.result(timeout=120) for ticket in tickets]
        # All four submissions landed in one micro-batch: one shared report
        # covering the whole batch.
        assert all(report is reports[0] for report in reports)
        assert reports[0].num_tables_profiled == 4
        assert service.stats["batches"] == 1
        assert service.stats["coalesced"] == 3

    def test_batch_cap_limits_coalescing(self):
        with GovernorService(max_batch_tables=2) as service:
            service.pause()
            tickets = [
                service.submit_table(table, table.dataset)
                for table in make_lake(5).tables()
            ]
            service.resume()
            for ticket in tickets:
                ticket.result(timeout=120)
            assert service.stats["batches"] >= 3

    def test_ticket_result_timeout(self, service):
        service.pause()
        ticket = service.submit_lake(make_lake(2))
        with pytest.raises(TimeoutError):
            ticket.result(timeout=0.05)
        assert not ticket.done()
        service.resume()
        assert ticket.result(timeout=120).num_tables_profiled == 2

    def test_back_pressure_bounded_queue(self):
        with GovernorService(maxsize=2) as service:
            service.pause()
            # The paused scheduler may already hold one popped submission, so
            # at most maxsize + 1 submissions are accepted before the bounded
            # queue pushes back on the producer.
            with pytest.raises(queue.Full):
                for _ in range(4):
                    service.submit_lake(make_lake(2), timeout=0.05)
            service.resume()
            service.drain()

    def test_failed_batch_fails_tickets_but_not_service(self, service, monkeypatch):
        boom = RuntimeError("profiling exploded")

        def explode(lake):
            raise boom

        monkeypatch.setattr(service.governor, "add_data_lake", explode)
        ticket = service.submit_lake(make_lake(2))
        with pytest.raises(RuntimeError, match="profiling exploded"):
            ticket.result(timeout=120)
        assert ticket.status == "failed"
        assert ticket.exception() is boom
        monkeypatch.undo()
        # The scheduler survived and keeps processing.
        assert service.submit_lake(make_lake(2)).result(timeout=120).num_tables_profiled == 2

    def test_refresh_and_retract_submissions(self, service):
        lake = make_lake(3)
        service.submit_lake(lake).result(timeout=120)
        target = lake.tables()[0]
        modified = target.copy()
        modified.column("amount").values[:] = [
            value + 1.0 for value in modified.column("amount").values
        ]
        refresh_report = service.submit_refresh(modified, target.dataset).result(timeout=120)
        assert refresh_report.refreshed_tables == [f"{target.dataset}/{target.name}"]
        retract_report = service.submit_retract(target.dataset, target.name).result(timeout=120)
        assert retract_report.retracted_tables == [f"{target.dataset}/{target.name}"]
        # Retracting an unknown table resolves with an empty report.
        assert service.submit_retract("nope", "nothing").result(timeout=120).retracted_tables == []

    def test_close_drains_pending_work(self):
        service = GovernorService()
        tickets = [service.submit_lake(make_lake(3))]
        service.close()
        assert tickets[0].done()
        assert service.closed
        with pytest.raises(RuntimeError):
            service.submit_lake(make_lake(1))
        # The governor returns to direct synchronous operation.
        assert service.governor._service is None
        report = service.governor.add_data_lake(make_lake(4))
        assert report.num_tables_profiled == 1  # 3 of 4 already governed


# ---------------------------------------------------------------------------
# Sync shims
# ---------------------------------------------------------------------------
class TestSyncShims:
    def test_governor_sync_methods_route_through_queue(self, service):
        before = service.stats["submitted"]
        report = service.governor.add_data_lake(make_lake(3))
        assert report.num_tables_profiled == 3
        assert service.stats["submitted"] == before + 1

    def test_shimmed_graph_matches_direct_graph(self, service):
        sync = KGGovernor()
        sync.add_data_lake(make_lake(5, seed=9))
        service.governor.add_data_lake(make_lake(5, seed=9))
        assert snapshot(service.governor.storage.graph) == snapshot(sync.storage.graph)

    def test_sync_call_inside_read_view_raises_instead_of_deadlocking(self, service):
        with service.governor.storage.graph.read_view():
            with pytest.raises(RuntimeError, match="read view"):
                service.governor.add_data_lake(make_lake(1))
            with pytest.raises(RuntimeError, match="read view"):
                service.submit_lake(make_lake(1))

    def test_awaiting_ticket_inside_read_view_raises(self, service):
        service.pause()
        ticket = service.submit_lake(make_lake(1))
        with service.governor.storage.graph.read_view():
            with pytest.raises(RuntimeError, match="read view"):
                ticket.result(timeout=5)
            with pytest.raises(RuntimeError, match="read view"):
                ticket.wait(timeout=5)
            with pytest.raises(RuntimeError, match="read view"):
                service.drain()
        service.resume()
        assert ticket.result(timeout=120).num_tables_profiled == 1
        # A resolved ticket no longer blocks, so awaiting it in a view is fine.
        with service.governor.storage.graph.read_view():
            assert ticket.result().num_tables_profiled == 1

    def test_retract_shim_returns_bool(self, service):
        lake = make_lake(2)
        service.submit_lake(lake).result(timeout=120)
        table = lake.tables()[0]
        assert service.governor.retract_table(table.dataset, table.name) is True
        assert service.governor.retract_table(table.dataset, table.name) is False


# ---------------------------------------------------------------------------
# GovernorReport.merge
# ---------------------------------------------------------------------------
class TestGovernorReportMerge:
    @staticmethod
    def _report(n: int) -> GovernorReport:
        return GovernorReport(
            num_tables_profiled=n,
            num_columns_profiled=2 * n,
            num_pipelines_abstracted=n,
            num_similarity_edges=3 * n,
            refreshed_tables=[f"refreshed_{n}"],
            retracted_tables=[f"retracted_{n}"],
            link_reports=[LinkReport(pipeline_id=f"p{n}")],
        )

    def test_merge_is_associative(self):
        a, b, c = self._report(1), self._report(2), self._report(3)
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left == right
        assert left.num_tables_profiled == 6
        assert left.refreshed_tables == ["refreshed_1", "refreshed_2", "refreshed_3"]

    def test_merge_does_not_mutate_operands(self):
        a, b = self._report(1), self._report(2)
        merged = a + b
        assert a.num_tables_profiled == 1 and b.num_tables_profiled == 2
        assert a.refreshed_tables == ["refreshed_1"]
        merged.refreshed_tables.append("extra")
        assert "extra" not in a.refreshed_tables and "extra" not in b.refreshed_tables

    def test_empty_report_is_identity(self):
        a = self._report(4)
        assert GovernorReport().merge(a) == a == a.merge(GovernorReport())

    def test_sum_builds_on_radd(self):
        total = sum([self._report(1), self._report(2), self._report(3)])
        assert total.num_similarity_edges == 18
        assert total.link_reports[0].pipeline_id == "p1"


# ---------------------------------------------------------------------------
# The read/write gate
# ---------------------------------------------------------------------------
class TestReadWriteGate:
    def test_read_views_nest_and_report_version(self):
        store = QuadStore()
        with store.write_batch():
            store.add(URIRef("http://x/s"), URIRef("http://x/p"), Literal(1))
        with store.read_view() as outer:
            with store.read_view() as inner:
                assert inner.version == outer.version == store.commit_version
            assert not outer.changed

    def test_commit_version_moves_per_batch_not_per_triple(self):
        store = QuadStore()
        base = store.commit_version
        with store.write_batch():
            for index in range(5):
                store.add(URIRef(f"http://x/s{index}"), URIRef("http://x/p"), Literal(index))
        assert store.commit_version == base + 1
        store.add(URIRef("http://x/solo"), URIRef("http://x/p"), Literal(9))
        assert store.commit_version == base + 2

    def test_write_batch_inside_read_view_raises(self):
        store = QuadStore()
        with store.read_view():
            with pytest.raises(RuntimeError, match="read view"):
                with store.write_batch():
                    pass

    def test_writer_may_open_read_views(self):
        store = QuadStore()
        with store.write_batch():
            store.add(URIRef("http://x/s"), URIRef("http://x/p"), Literal(1))
            with store.read_view():
                assert store.num_triples() == 1

    def test_batches_are_atomic_for_concurrent_readers(self):
        """A reader never observes a strict subset of an open batch."""
        store = QuadStore()
        predicate = URIRef("http://x/p")
        batch_size = 50
        stop = threading.Event()
        torn = []

        def reader():
            while not stop.is_set():
                with store.read_view():
                    count = sum(1 for _ in store.triples(None, predicate, None))
                if count % batch_size:
                    torn.append(count)
                    return

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for batch in range(20):
            with store.write_batch():
                for index in range(batch_size):
                    store.add(
                        URIRef(f"http://x/s{batch}_{index}"),
                        predicate,
                        Literal(index),
                    )
                    if index == batch_size // 2:
                        time.sleep(0)  # encourage interleaving attempts
        stop.set()
        for thread in threads:
            thread.join()
        assert torn == []


# ---------------------------------------------------------------------------
# Sqlite thread affinity (regression)
# ---------------------------------------------------------------------------
class TestSqliteCrossThread:
    def test_ingest_on_scheduler_thread_read_on_main(self, tmp_path):
        """The seed backend bound its connection to the constructing thread.

        A governor service always writes from its scheduler thread while the
        store was opened on the main thread — without the shared-connection
        fix every flush raised ``sqlite3.ProgrammingError``.
        """
        from repro.kg.storage import KGLiDSStorage

        store = QuadStore.sqlite(tmp_path / "graph.sqlite3")
        governor = KGGovernor(storage=KGLiDSStorage(graph=store))
        with GovernorService(governor) as service:
            service.submit_lake(make_lake(4)).result(timeout=120)
            # Main-thread reads force lazy shard loads + flushes on the
            # connection the scheduler thread just wrote through.
            client = KGLiDS(governor)
            tables = client.query(
                "SELECT ?t WHERE { GRAPH <http://kglids.org/resource/data/graph/datasets>"
                " { ?t a kglids:Table . } }"
            )
            assert len(tables) == 4
        governor.close()

    def test_plain_store_cross_thread_write_then_read(self, tmp_path):
        store = QuadStore.sqlite(tmp_path / "g.sqlite3")
        errors = []

        def writer():
            try:
                with store.write_batch():
                    for index in range(100):
                        store.add(
                            URIRef(f"http://x/s{index}"),
                            URIRef("http://x/p"),
                            Literal(index),
                        )
            except BaseException as error:  # pragma: no cover - failure path
                errors.append(error)

        thread = threading.Thread(target=writer)
        thread.start()
        thread.join()
        assert errors == []
        assert store.num_triples() == 100
        # And the reverse: read (triggering count + flush) from a thread.
        def reader():
            try:
                assert len(list(store.triples(None, URIRef("http://x/p"), None))) == 100
            except BaseException as error:  # pragma: no cover - failure path
                errors.append(error)

        thread = threading.Thread(target=reader)
        thread.start()
        thread.join()
        assert errors == []
        store.close()

    def test_concurrent_readers_on_capped_backend(self, tmp_path):
        """LRU touches/evictions survive concurrent readers (regression).

        With ``max_resident_graphs`` every resident-graph read re-orders the
        LRU dict; two readers touching the same graph used to race the
        pop/reinsert pair into a ``KeyError``.
        """
        store = QuadStore.sqlite(tmp_path / "capped.sqlite3", max_resident_graphs=2)
        predicate = URIRef("http://x/p")
        for graph_index in range(6):
            with store.write_batch():
                for index in range(20):
                    store.add(
                        URIRef(f"http://x/s{index}"),
                        predicate,
                        Literal(index),
                        graph=URIRef(f"http://x/g{graph_index}"),
                    )
        errors = []

        def reader():
            try:
                for _ in range(20):
                    for graph_index in range(6):
                        graph = URIRef(f"http://x/g{graph_index}")
                        count = sum(1 for _ in store.triples(graph=graph))
                        assert count == 20, (graph_index, count)
            except BaseException as error:
                errors.append(error)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert store.backend.shard_evictions > 0
        store.close()


# ---------------------------------------------------------------------------
# Concurrent read/write stress
# ---------------------------------------------------------------------------
class TestConcurrentStress:
    def test_readers_stay_consistent_while_lake_streams_in(self):
        """Satellite: 50-table lake streamed in while readers hammer the API.

        Readers assert two invariants inside every read view: (a) queries
        never raise, (b) no torn reads — every table visible in the dataset
        graph has its full metadata applied (declared column count ==
        materialized column nodes), which cannot hold mid-batch because
        metadata for a batch's tables is written inside one commit batch.
        """
        num_tables = 50
        lake = make_lake(num_tables, rows=8, seed=21, name="stress")
        sync = KGGovernor()
        sync.add_data_lake(make_lake(num_tables, rows=8, seed=21, name="stress"))
        expected = snapshot(sync.storage.graph)

        service = GovernorService(max_batch_tables=4)
        client = LiDSClient(service)
        ingestion_done = threading.Event()
        failures = []
        observations = {"reads": 0, "tables_seen": 0}
        ontology = "http://kglids.org/ontology/"

        def reader(reader_id: int):
            try:
                while not ingestion_done.is_set():
                    with client.read_view():
                        declared = {
                            str(row["t"]): int(row["c"])
                            for row in client.storage.query(
                                "SELECT ?t ?c WHERE { GRAPH"
                                " <http://kglids.org/resource/data/graph/datasets> {"
                                " ?t a kglids:Table ."
                                f" ?t <{ontology}hasTotalColumns> ?c . }} }}"
                            ).rows
                        }
                        materialized = {}
                        for row in client.storage.query(
                            "SELECT ?t (COUNT(?col) AS ?n) WHERE { GRAPH"
                            " <http://kglids.org/resource/data/graph/datasets> {"
                            " ?col a kglids:Column ."
                            f" ?col <{ontology}isPartOf> ?t . }} }} GROUP BY ?t"
                        ).rows:
                            materialized[str(row["t"])] = int(row["n"])
                    if set(declared) != set(materialized):
                        raise AssertionError(
                            f"torn read: tables {set(declared) ^ set(materialized)}"
                        )
                    for table_node, declared_count in declared.items():
                        if materialized[table_node] != declared_count:
                            raise AssertionError(
                                f"torn read: {table_node} declares {declared_count}"
                                f" columns, sees {materialized[table_node]}"
                            )
                    observations["reads"] += 1
                    observations["tables_seen"] = max(
                        observations["tables_seen"], len(declared)
                    )
                    if reader_id == 0:
                        client.get_unionable_tables("ds0", "table_0")
            except BaseException as error:
                failures.append(error)

        readers = [threading.Thread(target=reader, args=(i,)) for i in range(3)]
        for thread in readers:
            thread.start()
        try:
            tickets = [
                service.submit_table(table, table.dataset) for table in lake.tables()
            ]
            for ticket in tickets:
                ticket.result(timeout=300)
        finally:
            ingestion_done.set()
            for thread in readers:
                thread.join()
            service.close()
        assert failures == []
        assert observations["reads"] > 0
        assert snapshot(service.governor.storage.graph) == expected


# ---------------------------------------------------------------------------
# LiDSClient
# ---------------------------------------------------------------------------
class TestLiDSClient:
    def test_fronts_live_service_and_plain_governor(self, service):
        service.submit_lake(make_lake(4)).result(timeout=120)
        for client in (LiDSClient(service), LiDSClient(service.governor)):
            assert client.service is service
            assert not client.read_only
            assert client.statistics()["num_graphs"] >= 2
            assert len(client.search_keywords(["table_0"])) == 1

    def test_rejects_unknown_sources(self):
        with pytest.raises(TypeError):
            LiDSClient("not-a-governor")

    def test_open_saved_directory_read_only(self, tmp_path, service):
        service.submit_lake(make_lake(5)).result(timeout=120)
        reference = snapshot(service.governor.storage.graph)
        service.governor.save(tmp_path / "lake")
        client = LiDSClient.open(tmp_path / "lake")
        try:
            assert client.read_only and client.service is None
            assert snapshot(client.storage.graph) == reference
            unionable = client.get_unionable_tables("ds0", "table_0")
            assert len(unionable) > 0
            with pytest.raises(PermissionError):
                client.governor.add_data_lake(make_lake(1))
            with pytest.raises(PermissionError):
                client.governor.retract_table("ds0", "table_0")
            with pytest.raises(PermissionError):
                GovernorService(client.governor)
        finally:
            client.close()

    def test_one_governor_one_service(self, service):
        with pytest.raises(ValueError):
            GovernorService(service.governor)

    def test_close_rejected_while_service_live(self, service):
        client = LiDSClient(service)
        with pytest.raises(RuntimeError, match="GovernorService"):
            client.close()
        service.close()
        client.close()  # fine once the scheduler is gone
