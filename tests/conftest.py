"""Shared fixtures: small synthetic workloads and a bootstrapped platform.

Expensive artifacts (the bootstrapped KGLiDS platform, profiled benchmark
lakes) are session-scoped so the integration tests stay fast.
"""

from __future__ import annotations

import pytest

from repro.datagen import generate_discovery_benchmark, generate_pipeline_corpus
from repro.interfaces import KGLiDS
from repro.tabular import DataLake, Table


@pytest.fixture()
def titanic_table() -> Table:
    """A small titanic-like table with mixed types and missing values."""
    return Table.from_dict(
        "train",
        {
            "Age": [22, 38, None, 35, 54, 2, 27, None, 14, 58],
            "Fare": [7.25, 71.28, 7.92, 53.1, 51.86, 21.07, 11.13, 30.07, 16.7, 26.55],
            "Sex": ["male", "female", "female", "male", "male", "female", "male", "female", "female", "male"],
            "Name": [
                "James Smith", "Mary Johnson", "Linda Brown", "Robert Jones", "David Garcia",
                "Susan Miller", "John Davis", "Barbara Wilson", "Karen Taylor", "Richard Moore",
            ],
            "Survived": [0, 1, 1, 1, 0, 1, 0, 1, 1, 0],
            "Embarked_date": [
                "1912-04-10", "1912-04-10", "1912-04-11", "1912-04-10", "1912-04-11",
                "1912-04-10", "1912-04-11", "1912-04-10", "1912-04-11", "1912-04-10",
            ],
            "Cabin": ["C85", "B28", "E46", "C123", "A6", "D33", "B42", "C148", "E12", "A7"],
        },
        dataset="titanic",
    )


@pytest.fixture()
def small_lake(titanic_table) -> DataLake:
    """A two-dataset lake: titanic plus a heart-disease-style dataset."""
    lake = DataLake("unit_test_lake")
    lake.add_table("titanic", titanic_table)
    heart = Table.from_dict(
        "heart",
        {
            "age": [63, 37, 41, 56, 57, 45, 68, 51],
            "sex": ["male", "female", "female", "male", "male", "female", "male", "male"],
            "chol": [233.0, 250.0, 204.0, 236.0, 354.0, 199.0, 274.0, 212.0],
            "target": [1, 1, 1, 1, 0, 0, 1, 0],
        },
        dataset="heart-uci",
    )
    lake.add_table("heart-uci", heart)
    return lake


@pytest.fixture(scope="session")
def tiny_benchmark():
    """A tiny discovery benchmark with ground truth (3 base tables x 3 partitions)."""
    return generate_discovery_benchmark("tus_small", seed=11, base_tables=3, partitions=3, rows=50)


@pytest.fixture(scope="session")
def bootstrapped_platform(tiny_benchmark) -> KGLiDS:
    """A KGLiDS platform bootstrapped over the tiny benchmark + pipeline corpus."""
    scripts = generate_pipeline_corpus(tiny_benchmark.lake, pipelines_per_table=2, seed=3)
    return KGLiDS.bootstrap(lake=tiny_benchmark.lake, scripts=scripts, train_models=True)


EXAMPLE_PIPELINE_SOURCE = """
import pandas as pd
import numpy as np
from sklearn.impute import SimpleImputer
from sklearn.preprocessing import StandardScaler
from sklearn.model_selection import train_test_split
from sklearn.ensemble import RandomForestClassifier
from sklearn.metrics import accuracy_score

df = pd.read_csv('titanic/train.csv')
X, y = df.drop('Survived', axis=1), df['Survived']
imputer = SimpleImputer(strategy='most_frequent')
X['Sex'] = imputer.fit_transform(X['Sex'])
scaler = StandardScaler()
X['NormalizedAge'] = scaler.fit_transform(X['Age'])
X_train, X_test, y_train, y_test = train_test_split(X, y, 0.2)
clf = RandomForestClassifier(50, max_depth=10)
clf.fit(X_train, y_train)
print(accuracy_score(y_test, clf.predict(X_test)))
"""


@pytest.fixture()
def example_pipeline_source() -> str:
    """The running-example pipeline of Figure 3."""
    return EXAMPLE_PIPELINE_SOURCE
