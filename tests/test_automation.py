"""Tests for the cleaning / transformation operations and GNN recommenders."""

import numpy as np
import pytest

from repro.automation import (
    CLEANING_OPERATIONS,
    SCALING_OPERATIONS,
    UNARY_OPERATIONS,
    CleaningRecommender,
    TransformationRecommender,
    apply_cleaning_operation,
    apply_scaling_operation,
    apply_unary_transformation,
)
from repro.automation.training_data import (
    CLEANING_CALL_TO_OPERATION,
    TrainingExample,
    build_training_graph,
    extract_operation_examples,
)
from repro.datagen import generate_classification_dataset
from repro.tabular import Table
from repro.types import COLR_TYPES


@pytest.fixture()
def dirty_table():
    table, _ = generate_classification_dataset(
        "dirty", n_rows=60, n_features=4, missing_rate=0.15, seed=5
    )
    return table


class TestCleaningOperations:
    @pytest.mark.parametrize("operation", CLEANING_OPERATIONS)
    def test_every_operation_removes_numeric_missing(self, dirty_table, operation):
        cleaned = apply_cleaning_operation(dirty_table, operation)
        assert cleaned.missing_cell_count() == 0
        assert cleaned.shape == dirty_table.shape
        # The original table is untouched.
        assert dirty_table.missing_cell_count() > 0

    def test_categorical_missing_filled_with_mode(self):
        table = Table.from_dict("t", {"cat": ["a", None, "a", "b"], "x": [1.0, 2.0, 3.0, 4.0]})
        cleaned = apply_cleaning_operation(table, "SimpleImputer")
        assert cleaned.column("cat").values[1] == "a"

    def test_unknown_operation_rejected(self, dirty_table):
        with pytest.raises(ValueError):
            apply_cleaning_operation(dirty_table, "MagicImputer")

    def test_fillna_uses_constant(self):
        table = Table.from_dict("t", {"x": [1.0, None, 3.0]})
        cleaned = apply_cleaning_operation(table, "Fillna", fill_value=-5.0)
        assert cleaned.column("x").values[1] == -5.0


class TestTransformationOperations:
    def test_standard_scaler_zero_mean(self):
        table = Table.from_dict("t", {"x": [1.0, 2.0, 3.0, 4.0], "y": [0, 1, 0, 1]})
        scaled = apply_scaling_operation(table, "StandardScaler", exclude=["y"])
        assert np.mean(scaled.column("x").values) == pytest.approx(0.0, abs=1e-9)
        assert scaled.column("y").values == [0, 1, 0, 1]

    def test_minmax_scaler_range(self):
        table = Table.from_dict("t", {"x": [10.0, 20.0, 30.0]})
        scaled = apply_scaling_operation(table, "MinMaxScaler")
        assert min(scaled.column("x").values) == pytest.approx(0.0)
        assert max(scaled.column("x").values) == pytest.approx(1.0)

    def test_scaling_preserves_missing(self):
        table = Table.from_dict("t", {"x": [1.0, None, 3.0]})
        scaled = apply_scaling_operation(table, "RobustScaler")
        assert scaled.column("x").values[1] is None

    def test_unary_log_and_sqrt(self):
        table = Table.from_dict("t", {"x": [0.0, 1.0, 10.0, 100.0]})
        logged = apply_unary_transformation(table, "x", "log")
        rooted = apply_unary_transformation(table, "x", "sqrt")
        assert max(logged.column("x").values) < 10.0
        assert max(rooted.column("x").values) == pytest.approx(10.0)
        assert apply_unary_transformation(table, "x", "none").column("x").values == table.column("x").values

    def test_unknown_operations_rejected(self):
        table = Table.from_dict("t", {"x": [1.0]})
        with pytest.raises(ValueError):
            apply_scaling_operation(table, "SuperScaler")
        with pytest.raises(ValueError):
            apply_unary_transformation(table, "x", "cube")


def _synthetic_examples(operations, dimensions, per_class=6, seed=0):
    rng = np.random.RandomState(seed)
    examples = []
    for class_index, operation in enumerate(operations):
        center = np.zeros(dimensions)
        center[class_index * 3 : class_index * 3 + 3] = 2.0
        for i in range(per_class):
            examples.append(
                TrainingExample(
                    node_id=f"table_{operation}_{i}",
                    embedding=center + rng.normal(scale=0.2, size=dimensions),
                    operation=operation,
                )
            )
    return examples


class TestTrainingDataExtraction:
    def test_build_training_graph_structure(self):
        examples = _synthetic_examples(CLEANING_OPERATIONS, 30)
        graph = build_training_graph(examples, CLEANING_OPERATIONS, 30)
        assert graph.num_nodes == len(examples) + len(CLEANING_OPERATIONS)
        assert graph.num_edges == len(examples)

    def test_empty_examples_rejected(self):
        with pytest.raises(ValueError):
            build_training_graph([], CLEANING_OPERATIONS, 10)

    def test_extract_from_bootstrapped_kg(self, bootstrapped_platform):
        examples = extract_operation_examples(
            bootstrapped_platform.storage, CLEANING_CALL_TO_OPERATION
        )
        # The synthetic pipeline corpus applies cleaning operations, so the
        # bootstrapped LiDS graph must yield training examples.
        assert len(examples) > 0
        assert all(example.embedding.shape == (1800,) for example in examples)


class TestRecommenders:
    def test_cleaning_recommender_learns_synthetic_mapping(self, dirty_table):
        recommender = CleaningRecommender(epochs=40)
        dimensions = recommender.feature_dimensions
        examples = _synthetic_examples(CLEANING_OPERATIONS, dimensions, per_class=5)
        recommender.train_from_examples(examples)
        ranked = recommender.recommend_cleaning_operations(dirty_table)
        assert len(ranked) == len(CLEANING_OPERATIONS)
        assert all(0.0 <= score <= 1.0 for _, score in ranked)
        names = [name for name, _ in ranked]
        assert set(names) == set(CLEANING_OPERATIONS)

    def test_cleaning_recommender_untrained_raises(self, dirty_table):
        with pytest.raises(RuntimeError):
            CleaningRecommender().recommend(dirty_table)

    def test_apply_cleaning_operations_uses_top_recommendation(self, dirty_table):
        cleaned = CleaningRecommender.apply_cleaning_operations([("SimpleImputer", 0.9)], dirty_table)
        assert cleaned.missing_cell_count() == 0
        untouched = CleaningRecommender.apply_cleaning_operations([], dirty_table)
        assert untouched.missing_cell_count() == dirty_table.missing_cell_count()

    def test_kg_trained_cleaning_recommender(self, bootstrapped_platform, dirty_table):
        recommendations = bootstrapped_platform.recommend_cleaning_operations(dirty_table)
        assert recommendations[0][0] in CLEANING_OPERATIONS
        cleaned = bootstrapped_platform.apply_cleaning_operations(recommendations, dirty_table)
        assert cleaned.missing_cell_count() == 0

    def test_transformation_recommender_end_to_end(self, bootstrapped_platform):
        table, target = generate_classification_dataset(
            "skewed", n_rows=60, n_features=4, skewed_features=2, scale_spread=50.0, seed=9
        )
        recommendation = bootstrapped_platform.recommend_transformations(table, target=target)
        assert recommendation.scaler in SCALING_OPERATIONS
        assert all(op in UNARY_OPERATIONS for op in recommendation.column_transforms.values())
        transformed = bootstrapped_platform.apply_transformations(recommendation, table, target=target)
        assert transformed.shape == table.shape
        assert ("table", recommendation.scaler) in recommendation.as_list()

    def test_transformation_recommender_untrained_raises(self):
        table, _ = generate_classification_dataset("t", n_rows=20, n_features=2, seed=1)
        with pytest.raises(RuntimeError):
            TransformationRecommender().recommend_transformations(table)

    def test_cleaning_embedding_prefers_columns_with_missing(self, dirty_table):
        recommender = CleaningRecommender()
        embedding = recommender.table_embedding(dirty_table)
        assert embedding.shape == (300 * len(COLR_TYPES),)
        assert np.any(embedding != 0.0)
