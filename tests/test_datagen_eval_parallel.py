"""Tests for the workload generators, evaluation helpers and the executor."""

import time

import pytest

from repro.datagen import (
    DOMAINS,
    generate_automl_datasets,
    generate_base_table,
    generate_classification_dataset,
    generate_cleaning_datasets,
    generate_discovery_benchmark,
    generate_pipeline_corpus,
    generate_transformation_datasets,
)
from repro.eval import (
    average_precision_recall_at_k,
    format_report_table,
    measure_call,
    precision_at_k,
    recall_at_k,
)
from repro.parallel import JobExecutor, map_jobs
from repro.pipelines import PipelineAbstractor


class TestBaseTables:
    def test_every_domain_generates(self):
        for domain in DOMAINS:
            table = generate_base_table(domain, f"{domain}_t", n_rows=30, seed=1)
            assert table.num_rows == 30
            assert table.num_columns == len(DOMAINS[domain])

    def test_unknown_domain_rejected(self):
        with pytest.raises(ValueError):
            generate_base_table("astrology", "t")

    def test_column_subset(self):
        table = generate_base_table("health", "h", n_rows=10, column_subset=["age", "sex"])
        assert table.column_names == ["age", "sex"]

    def test_generation_is_deterministic(self):
        a = generate_base_table("games", "g", n_rows=20, seed=5)
        b = generate_base_table("games", "g", n_rows=20, seed=5)
        assert a.to_dict() == b.to_dict()


class TestDiscoveryBenchmark:
    def test_ground_truth_matches_partitioning(self):
        benchmark = generate_discovery_benchmark("tus_small", seed=2, base_tables=3, partitions=3, rows=40)
        assert benchmark.num_tables == 9
        assert len(benchmark.query_tables) == 3
        for query in benchmark.query_tables:
            assert len(benchmark.ground_truth[query]) == 2
            assert query not in benchmark.ground_truth[query]
        assert benchmark.average_unionable_per_query() == pytest.approx(2.0)

    def test_hard_style_renames_columns(self):
        benchmark = generate_discovery_benchmark("d3l_small", seed=4, base_tables=2, partitions=4, rows=40)
        query = benchmark.query_tables[0]
        query_columns = set(benchmark.lake.table(*query).column_names)
        renamed = False
        for other in benchmark.ground_truth[query]:
            other_columns = set(benchmark.lake.table(*other).column_names)
            if other_columns - query_columns:
                renamed = True
        assert renamed

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError):
            generate_discovery_benchmark("mystery")


class TestPipelineCorpus:
    def test_corpus_size_and_metadata(self):
        benchmark = generate_discovery_benchmark("tus_small", seed=2, base_tables=2, partitions=2, rows=30)
        scripts = generate_pipeline_corpus(benchmark.lake, pipelines_per_table=3, seed=1)
        assert len(scripts) == benchmark.num_tables * 3
        assert all(script.dataset_name for script in scripts)
        assert any(script.task == "eda" for script in scripts)
        assert any(script.task == "classification" for script in scripts)

    def test_scripts_are_valid_python_and_abstractable(self):
        benchmark = generate_discovery_benchmark("tus_small", seed=2, base_tables=2, partitions=2, rows=30)
        scripts = generate_pipeline_corpus(benchmark.lake, pipelines_per_table=2, seed=1)
        abstractor = PipelineAbstractor()
        abstractions = abstractor.abstract_scripts(scripts[:6])
        assert all(abstraction.statements for abstraction in abstractions)
        assert all("pandas" in abstraction.libraries_used for abstraction in abstractions)


class TestTaskDatasets:
    def test_classification_dataset_shape_and_missing(self):
        table, target = generate_classification_dataset(
            "t", n_rows=50, n_features=3, missing_rate=0.2, categorical_features=2, seed=0
        )
        assert target == "target"
        assert table.num_rows == 50
        assert table.missing_cell_count() > 0
        assert len([c for c in table.column_names if c.startswith("category_")]) == 2

    def test_cleaning_datasets_sizes_increase(self):
        datasets = generate_cleaning_datasets(count=5, base_rows=40)
        assert len(datasets) == 5
        assert datasets[-1].size_cells > datasets[0].size_cells
        assert all(d.table.missing_cell_count() > 0 for d in datasets)

    def test_transformation_datasets_have_skew(self):
        datasets = generate_transformation_datasets(count=3, base_rows=40)
        assert len(datasets) == 3
        assert all(d.table.missing_cell_count() == 0 for d in datasets)

    def test_automl_datasets_mix_tasks(self):
        datasets = generate_automl_datasets(count=4, base_rows=40)
        assert {d.task for d in datasets} == {"binary", "multiclass"}


class TestDiscoveryMetrics:
    def test_precision_recall_at_k(self):
        ranked = ["a", "b", "c", "d"]
        relevant = {"a", "c", "x"}
        assert precision_at_k(ranked, relevant, 2) == pytest.approx(0.5)
        assert recall_at_k(ranked, relevant, 4) == pytest.approx(2 / 3)
        assert precision_at_k([], relevant, 3) == 0.0
        assert recall_at_k(ranked, set(), 3) == 0.0
        assert precision_at_k(ranked, relevant, 0) == 0.0

    def test_average_over_queries_penalizes_missing(self):
        rankings = {"q1": ["a", "b"]}
        ground_truth = {"q1": {"a"}, "q2": {"z"}}
        results = average_precision_recall_at_k(rankings, ground_truth, [1])
        precision, recall = results[1]
        assert precision == pytest.approx(0.5)
        assert recall == pytest.approx(0.5)


class TestMeasureAndReport:
    def test_measure_call_success(self):
        run = measure_call(lambda: sum(range(1000)))
        assert not run.failed
        assert run.result == sum(range(1000))
        assert run.elapsed_seconds >= 0.0
        assert run.peak_memory_mb >= 0.0

    def test_measure_call_exception(self):
        run = measure_call(lambda: 1 / 0)
        assert run.failed
        assert "ZeroDivisionError" in run.error

    def test_measure_call_simulated_oom(self):
        run = measure_call(lambda: [0] * 500_000, memory_budget_mb=0.001)
        assert run.failed
        assert "OOM" in run.error

    def test_format_report_table(self):
        text = format_report_table(["name", "value"], [["a", 1.23456], ["bbbb", 2]], title="T")
        assert "T" in text and "1.235" in text
        assert text.count("\n") >= 3


class TestParallelExecutor:
    def test_serial_and_threaded_map_agree(self):
        jobs = list(range(20))
        serial = JobExecutor("serial").map(lambda x: x * x, jobs)
        threaded = JobExecutor("threads", max_workers=4).map(lambda x: x * x, jobs)
        assert serial == threaded == [x * x for x in jobs]

    def test_map_partitions(self):
        executor = JobExecutor()
        results = executor.map_partitions(sum, list(range(10)), num_partitions=3)
        assert sum(results) == sum(range(10))
        assert executor.map_partitions(sum, [], num_partitions=3) == []

    def test_invalid_backend(self):
        with pytest.raises(ValueError):
            JobExecutor("gpu")

    def test_map_jobs_helper(self):
        assert map_jobs(len, ["ab", "c"]) == [2, 1]
