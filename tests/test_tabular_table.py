"""Unit tests for the Table container."""

import numpy as np
import pytest

from repro.tabular import Column, Table


@pytest.fixture()
def table() -> Table:
    return Table.from_dict(
        "demo",
        {
            "age": [20, 30, None, 50],
            "name": ["Ann", "Bob", "Cat", "Dan"],
            "income": [1000.0, 2000.0, 1500.0, None],
            "label": [0, 1, 0, 1],
        },
        dataset="demo_ds",
    )


class TestBasics:
    def test_shape(self, table):
        assert table.shape == (4, 4)
        assert len(table) == 4

    def test_column_access(self, table):
        assert table.column("age")[0] == 20
        assert table["name"].name == "name"
        assert "age" in table

    def test_missing_column_raises(self, table):
        with pytest.raises(KeyError):
            table.column("nope")

    def test_add_column_length_mismatch(self, table):
        with pytest.raises(ValueError):
            table.add_column(Column("extra", [1, 2]))

    def test_add_duplicate_column_raises(self, table):
        with pytest.raises(ValueError):
            table.add_column(Column("age", [1, 2, 3, 4]))

    def test_set_column_overwrites(self, table):
        table.set_column(Column("age", [1, 2, 3, 4]))
        assert table.column("age").values == [1, 2, 3, 4]

    def test_rename_column_preserves_order(self, table):
        table.rename_column("name", "full_name")
        assert table.column_names == ["age", "full_name", "income", "label"]

    def test_from_rows_parses(self):
        t = Table.from_rows("t", ["a", "b"], [["1", "x"], ["2", "y"]])
        assert t.column("a").values == [1, 2]


class TestSelectionAndRows:
    def test_select_and_drop(self, table):
        assert table.select(["age", "label"]).column_names == ["age", "label"]
        assert table.drop_columns(["age"]).column_names == ["name", "income", "label"]

    def test_take_rows_and_head(self, table):
        assert table.take_rows([3, 0]).column("age").values == [50, 20]
        assert table.head(2).num_rows == 2

    def test_sample_rows(self, table):
        assert table.sample_rows(2, seed=0).num_rows == 2
        assert table.sample_rows(100).num_rows == 4

    def test_drop_rows_with_missing(self, table):
        cleaned = table.drop_rows_with_missing()
        assert cleaned.num_rows == 2
        assert cleaned.missing_cell_count() == 0

    def test_row_and_iter_rows(self, table):
        assert table.row(0)["name"] == "Ann"
        assert len(list(table.iter_rows())) == 4

    def test_copy_independent(self, table):
        duplicate = table.copy()
        duplicate.set_column(Column("age", [0, 0, 0, 0]))
        assert table.column("age").values != [0, 0, 0, 0]


class TestFeatureEncoding:
    def test_feature_matrix_excludes_target(self, table):
        X, names = table.to_feature_matrix(target="label")
        assert X.shape[0] == 4
        assert all("label" not in name for name in names)

    def test_feature_matrix_fills_missing_with_mean(self, table):
        X, names = table.to_feature_matrix(target="label")
        age_index = names.index("age")
        assert np.isfinite(X[:, age_index]).all()

    def test_low_cardinality_strings_one_hot(self, table):
        _, names = table.to_feature_matrix(target="label")
        assert any(name.startswith("name=") for name in names)

    def test_high_cardinality_strings_frequency_encoded(self):
        t = Table.from_dict(
            "t", {"code": [f"c{i}" for i in range(30)], "y": [i % 2 for i in range(30)]}
        )
        _, names = t.to_feature_matrix(target="y", max_onehot_cardinality=5)
        assert "code#freq" in names

    def test_target_vector_label_encodes(self, table):
        y = table.target_vector("label")
        assert set(y.tolist()) == {0, 1}

    def test_target_vector_strings(self):
        t = Table.from_dict("t", {"y": ["cat", "dog", "cat"]})
        assert set(t.target_vector("y").tolist()) == {0, 1}

    def test_empty_feature_matrix(self):
        t = Table.from_dict("t", {"y": [1, 2]})
        X, names = t.to_feature_matrix(target="y")
        assert X.shape == (2, 0)
        assert names == []


class TestStats:
    def test_missing_cell_count(self, table):
        assert table.missing_cell_count() == 2
        assert set(table.columns_with_missing()) == {"age", "income"}

    def test_numeric_and_categorical_names(self, table):
        assert "age" in table.numeric_column_names()
        assert "name" in table.categorical_column_names()

    def test_estimated_size_positive(self, table):
        assert table.estimated_size_bytes() > 0
