"""Tests for the baseline systems (SANTOS, Starmie, GraphGen4Code, HoloClean, AutoLearn)."""

import numpy as np
import pytest

from repro.baselines import (
    AutoLearn,
    GraphGen4Code,
    HoloCleanAimnet,
    SantosUnionSearch,
    StarmieUnionSearch,
)
from repro.baselines.autolearn import AutoLearnTimeout, distance_correlation
from repro.baselines.graphgen4code import G4C_ASPECTS
from repro.datagen import generate_classification_dataset, generate_pipeline_corpus
from repro.tabular import Table


@pytest.fixture(scope="module")
def discovery_setup(request):
    from repro.datagen import generate_discovery_benchmark

    benchmark = generate_discovery_benchmark("tus_small", seed=7, base_tables=3, partitions=3, rows=50)
    return benchmark


class TestSantos:
    def test_preprocess_and_query(self, discovery_setup):
        santos = SantosUnionSearch()
        n_tables = santos.preprocess(discovery_setup.lake)
        assert n_tables == discovery_setup.num_tables
        assert santos.kb_size > 0
        query_key = discovery_setup.query_tables[0]
        query_table = discovery_setup.lake.table(*query_key)
        ranked = santos.query(query_table, k=5)
        assert ranked
        assert ranked[0][0] in discovery_setup.ground_truth[query_key]
        scores = [score for _, score in ranked]
        assert scores == sorted(scores, reverse=True)
        assert all(0.0 <= score <= 1.0 for score in scores)

    def test_query_never_returns_self(self, discovery_setup):
        santos = SantosUnionSearch()
        santos.preprocess(discovery_setup.lake)
        query_key = discovery_setup.query_tables[0]
        ranked = santos.query(discovery_setup.lake.table(*query_key), k=20)
        assert query_key not in [key for key, _ in ranked]


class TestStarmie:
    def test_preprocess_and_query(self, discovery_setup):
        starmie = StarmieUnionSearch(training_epochs=2)
        n_columns = starmie.preprocess(discovery_setup.lake)
        assert n_columns == discovery_setup.lake.num_columns
        query_key = discovery_setup.query_tables[0]
        ranked = starmie.query(discovery_setup.lake.table(*query_key), k=5)
        assert ranked
        assert ranked[0][0] in discovery_setup.ground_truth[query_key]

    def test_query_before_preprocess_raises(self, discovery_setup):
        starmie = StarmieUnionSearch()
        with pytest.raises(RuntimeError):
            starmie.query(discovery_setup.lake.tables()[0])


class TestGraphGen4Code:
    def test_graph_is_larger_and_more_verbose_than_lids(self, discovery_setup):
        from repro.kg import KGGovernor

        scripts = generate_pipeline_corpus(discovery_setup.lake, pipelines_per_table=1, seed=5)
        g4c = GraphGen4Code()
        g4c_store = g4c.abstract_scripts(scripts)
        governor = KGGovernor()
        governor.add_pipelines(scripts)
        lids_pipeline_triples = governor.storage.graph.num_triples()
        assert len(g4c_store) > lids_pipeline_triples
        assert g4c.report.num_pipelines == len(scripts)
        # The verbose aspects KGLiDS drops are present.
        assert g4c.report.triples_by_aspect["statement_location"] > 0
        assert g4c.report.triples_by_aspect["func_parameter_order"] > 0
        assert g4c.report.triples_by_aspect["variable_names"] > 0
        assert set(g4c.report.triples_by_aspect) == set(G4C_ASPECTS)

    def test_syntax_errors_are_skipped(self):
        from repro.pipelines import PipelineScript

        g4c = GraphGen4Code()
        store = g4c.abstract_scripts([PipelineScript("bad", "def broken(:\n")])
        assert len(store) == 0


class TestHoloClean:
    def test_repairs_all_missing_cells(self):
        table, _ = generate_classification_dataset("hc", n_rows=60, n_features=4, missing_rate=0.2, seed=2)
        cleaned = HoloCleanAimnet().clean(table)
        assert cleaned.missing_cell_count() == 0
        assert cleaned.shape == table.shape

    def test_observed_cells_untouched(self):
        table = Table.from_dict("t", {"a": [1.0, None, 3.0, 4.0], "b": ["x", "y", "x", None]})
        cleaned = HoloCleanAimnet().clean(table)
        assert cleaned.column("a").values[0] == 1.0
        assert cleaned.column("b").values[0] == "x"
        assert cleaned.missing_cell_count() == 0

    def test_categorical_prediction_uses_cooccurrence(self):
        # b is perfectly determined by a; the missing b cell should follow it.
        table = Table.from_dict(
            "t",
            {
                "a": ["r", "r", "r", "s", "s", "s", "r"],
                "b": ["red", "red", "red", "sun", "sun", "sun", None],
            },
        )
        cleaned = HoloCleanAimnet().clean(table)
        assert cleaned.column("b").values[6] == "red"


class TestAutoLearn:
    def test_distance_correlation_detects_dependence(self):
        rng = np.random.RandomState(0)
        x = rng.normal(size=120)
        assert distance_correlation(x, 2 * x + 1) > 0.9
        assert distance_correlation(x, x**2) > distance_correlation(x, rng.normal(size=120))

    def test_transform_adds_generated_features(self):
        table, target = generate_classification_dataset(
            "al", n_rows=80, n_features=4, seed=3, scale_spread=2.0
        )
        autolearn = AutoLearn(correlation_threshold=0.05)
        augmented = autolearn.transform(table, target)
        assert augmented.num_columns >= table.num_columns
        assert autolearn.report.correlated_pairs >= autolearn.report.linear_pairs

    def test_timeout_raises(self):
        table, target = generate_classification_dataset("al2", n_rows=150, n_features=8, seed=4)
        autolearn = AutoLearn(time_budget_seconds=0.0)
        with pytest.raises(AutoLearnTimeout):
            autolearn.transform(table, target)
