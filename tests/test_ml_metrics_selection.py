"""Unit tests for ML metrics and model selection."""

import numpy as np
import pytest

from repro.ml import (
    GaussianNB,
    KFold,
    LogisticRegression,
    accuracy_score,
    confusion_matrix,
    cross_val_score,
    f1_score,
    precision_score,
    recall_score,
    train_test_split,
)
from repro.ml.model_selection import cross_val_accuracy, cross_val_f1


class TestMetrics:
    def test_accuracy(self):
        assert accuracy_score([1, 0, 1], [1, 0, 0]) == pytest.approx(2 / 3)
        assert accuracy_score([], []) == 0.0

    def test_perfect_binary_f1(self):
        assert f1_score([1, 0, 1], [1, 0, 1]) == 1.0

    def test_binary_f1_against_known_value(self):
        # tp=1, fp=1, fn=1 -> precision=recall=0.5 -> f1=0.5
        assert f1_score([1, 0, 1, 0], [1, 1, 0, 0]) == pytest.approx(0.5)

    def test_zero_f1_when_no_positive_predictions(self):
        assert f1_score([1, 1, 0], [0, 0, 0]) == 0.0

    def test_macro_f1_averages_classes(self):
        y_true = ["a", "a", "b", "c"]
        y_pred = ["a", "b", "b", "c"]
        macro = f1_score(y_true, y_pred, average="macro")
        weighted = f1_score(y_true, y_pred, average="weighted")
        assert 0.0 < macro <= 1.0
        assert 0.0 < weighted <= 1.0

    def test_precision_recall_binary(self):
        y_true, y_pred = [1, 0, 1, 0], [1, 1, 0, 0]
        assert precision_score(y_true, y_pred) == pytest.approx(0.5)
        assert recall_score(y_true, y_pred) == pytest.approx(0.5)

    def test_precision_recall_macro(self):
        assert 0.0 <= precision_score(["a", "b"], ["a", "a"], average="macro") <= 1.0
        assert 0.0 <= recall_score(["a", "b"], ["a", "a"], average="macro") <= 1.0

    def test_confusion_matrix(self):
        matrix, labels = confusion_matrix([1, 0, 1], [1, 1, 1])
        assert labels == [0, 1]
        assert matrix[1, 1] == 2
        assert matrix[0, 1] == 1
        assert matrix.sum() == 3


class TestTrainTestSplit:
    def test_sizes(self):
        X = np.arange(40).reshape(20, 2)
        y = np.arange(20)
        X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.25, random_state=1)
        assert len(X_test) == 5
        assert len(X_train) == 15
        assert len(y_train) == 15

    def test_stratified_keeps_both_classes(self):
        X = np.arange(40).reshape(20, 2)
        y = np.array([0] * 15 + [1] * 5)
        _, _, _, y_test = train_test_split(X, y, test_size=0.4, stratify=True, random_state=0)
        assert set(y_test.tolist()) == {0, 1}

    def test_split_is_deterministic(self):
        X = np.arange(20).reshape(10, 2)
        y = np.arange(10)
        first = train_test_split(X, y, random_state=3)
        second = train_test_split(X, y, random_state=3)
        assert np.array_equal(first[1], second[1])


class TestKFoldAndCV:
    def test_kfold_partitions_everything(self):
        splitter = KFold(n_splits=4, random_state=0)
        X = np.arange(20)
        seen = []
        for train_idx, test_idx in splitter.split(X):
            assert len(set(train_idx) & set(test_idx)) == 0
            seen.extend(test_idx.tolist())
        assert sorted(seen) == list(range(20))

    def test_kfold_requires_two_splits(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)

    def test_cross_val_score_reasonable(self):
        rng = np.random.RandomState(0)
        X = np.vstack([rng.normal(0, 1, (30, 2)), rng.normal(4, 1, (30, 2))])
        y = np.array([0] * 30 + [1] * 30)
        scores = cross_val_score(GaussianNB(), X, y, cv=3)
        assert scores.mean() > 0.8

    def test_cross_val_unknown_scoring(self):
        with pytest.raises(ValueError):
            cross_val_score(GaussianNB(), np.zeros((4, 1)), [0, 1, 0, 1], scoring="nope")

    def test_cross_val_f1_switches_to_weighted_for_multiclass(self):
        rng = np.random.RandomState(1)
        X = np.vstack([rng.normal(i * 3, 0.5, (20, 2)) for i in range(3)])
        y = np.array([0] * 20 + [1] * 20 + [2] * 20)
        score = cross_val_f1(LogisticRegression(max_iter=50), X, y, cv=3)
        assert score > 0.7

    def test_cross_val_accuracy_bounds(self):
        rng = np.random.RandomState(2)
        X = rng.normal(size=(40, 3))
        y = rng.randint(0, 2, 40)
        score = cross_val_accuracy(GaussianNB(), X, y, cv=4)
        assert 0.0 <= score <= 1.0


class TestDegenerateFolds:
    def test_single_class_fold_scores_zero_with_warning(self):
        from repro.ml.model_selection import DegenerateFoldWarning

        # Sorted labels + unshuffled-looking tiny data make it likely a fold
        # sees one class; force it outright with an all-but-one-class vector.
        X = np.arange(20, dtype=float).reshape(10, 2)
        y = np.array([0] * 9 + [1])
        with pytest.warns(DegenerateFoldWarning):
            scores = cross_val_score(GaussianNB(), X, y, cv=5)
        assert np.all((scores >= 0.0) & (scores <= 1.0))
        assert np.any(scores == 0.0)

    def test_all_one_class_never_raises(self):
        from repro.ml.model_selection import DegenerateFoldWarning

        X = np.random.RandomState(0).normal(size=(12, 2))
        y = np.zeros(12, dtype=int)
        with pytest.warns(DegenerateFoldWarning):
            score = cross_val_f1(GaussianNB(), X, y, cv=3)
        assert score == 0.0
