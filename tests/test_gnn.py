"""Unit tests for the GNN substrate (graph, sampling, node classifier)."""

import numpy as np
import pytest

from repro.gnn import FeatureGraph, GNNNodeClassifier, GraphSAINTNodeSampler


def _two_cluster_graph(n_per_class=20, dimensions=8, seed=0):
    rng = np.random.RandomState(seed)
    graph = FeatureGraph(dimensions)
    for label in (0, 1):
        center = np.zeros(dimensions)
        center[label] = 3.0
        for i in range(n_per_class):
            graph.add_node(f"{label}-{i}", center + rng.normal(scale=0.4, size=dimensions), label=label)
    # Connect nodes within each class.
    for label in (0, 1):
        for i in range(n_per_class - 1):
            graph.add_edge(f"{label}-{i}", f"{label}-{i + 1}")
    return graph


class TestFeatureGraph:
    def test_add_node_and_dimensions_check(self):
        graph = FeatureGraph(3)
        graph.add_node("a", [1, 2, 3], label=0)
        with pytest.raises(ValueError):
            graph.add_node("b", [1, 2])

    def test_re_adding_updates_features(self):
        graph = FeatureGraph(2)
        graph.add_node("a", [0, 0])
        graph.add_node("a", [1, 1])
        assert graph.num_nodes == 1
        assert np.allclose(graph.features_matrix(), [[1, 1]])

    def test_edges_require_existing_nodes(self):
        graph = FeatureGraph(2)
        graph.add_node("a", [0, 0])
        with pytest.raises(KeyError):
            graph.add_edge("a", "missing")

    def test_normalized_adjacency_rows_sum_to_one(self):
        graph = _two_cluster_graph(n_per_class=4)
        adjacency = graph.normalized_adjacency()
        assert np.allclose(adjacency.sum(axis=1), 1.0)

    def test_neighbors_and_labels(self):
        graph = _two_cluster_graph(n_per_class=3)
        assert "0-1" in graph.neighbors("0-0")
        indices, labels = graph.labels_array()
        assert len(indices) == graph.num_nodes
        assert set(labels.tolist()) == {0, 1}

    def test_subgraph_preserves_labels_and_edges(self):
        graph = _two_cluster_graph(n_per_class=5)
        subgraph = graph.subgraph(range(5))
        assert subgraph.num_nodes == 5
        assert subgraph.num_edges > 0
        _, labels = subgraph.labels_array()
        assert set(labels.tolist()) <= {0, 1}


class TestGraphSAINTSampler:
    def test_sample_respects_budget(self):
        graph = _two_cluster_graph(n_per_class=30)
        sampler = GraphSAINTNodeSampler(graph, budget=16, seed=0)
        sample = sampler.sample()
        assert sample.num_nodes <= 16
        # Every sample contains labeled nodes.
        indices, _ = sample.labels_array()
        assert indices.size > 0

    def test_small_graph_returned_whole(self):
        graph = _two_cluster_graph(n_per_class=3)
        sampler = GraphSAINTNodeSampler(graph, budget=100)
        assert sampler.sample().num_nodes == graph.num_nodes

    def test_budget_validation(self):
        graph = _two_cluster_graph(n_per_class=2)
        with pytest.raises(ValueError):
            GraphSAINTNodeSampler(graph, budget=1)

    def test_iter_samples_count(self):
        graph = _two_cluster_graph(n_per_class=10)
        sampler = GraphSAINTNodeSampler(graph, budget=8)
        assert len(list(sampler.iter_samples(3))) == 3


class TestGNNNodeClassifier:
    def test_learns_separable_clusters_full_graph(self):
        graph = _two_cluster_graph()
        model = GNNNodeClassifier(feature_dimensions=8, num_classes=2, epochs=60, random_state=0)
        model.fit(graph, use_graphsaint=False)
        assert model.accuracy(graph) > 0.9

    def test_training_loss_decreases(self):
        graph = _two_cluster_graph()
        model = GNNNodeClassifier(feature_dimensions=8, num_classes=2, epochs=40)
        model.fit(graph, use_graphsaint=False)
        assert model.training_losses_[-1] < model.training_losses_[0]

    def test_graphsaint_training_also_learns(self):
        graph = _two_cluster_graph(n_per_class=40)
        model = GNNNodeClassifier(feature_dimensions=8, num_classes=2, epochs=30, random_state=1)
        model.fit(graph, use_graphsaint=True, sample_budget=24, samples_per_epoch=3)
        assert model.accuracy(graph) > 0.85

    def test_predict_isolated_node(self):
        graph = _two_cluster_graph()
        model = GNNNodeClassifier(feature_dimensions=8, num_classes=2, epochs=50)
        model.fit(graph, use_graphsaint=False)
        features = np.zeros(8)
        features[1] = 3.0
        assert model.predict_features(features) == 1
        probabilities = model.predict_proba_features(features)
        assert probabilities.shape == (2,)
        assert probabilities.sum() == pytest.approx(1.0)

    def test_unlabeled_graph_trains_without_error(self):
        graph = FeatureGraph(4)
        graph.add_node("a", [1, 0, 0, 0])
        model = GNNNodeClassifier(feature_dimensions=4, num_classes=2, epochs=3)
        model.fit(graph, use_graphsaint=False)
        assert model.training_losses_ == []
        assert model.accuracy(graph) == 0.0
