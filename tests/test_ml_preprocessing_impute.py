"""Unit tests for scalers, encoders and imputers."""

import numpy as np
import pytest

from repro.ml import (
    FunctionTransformer,
    IterativeImputer,
    KNNImputer,
    LabelEncoder,
    MinMaxScaler,
    OneHotEncoder,
    RobustScaler,
    SimpleImputer,
    StandardScaler,
)
from repro.ml.impute import InterpolateImputer
from repro.ml.preprocessing import log_transform, sqrt_transform


@pytest.fixture()
def matrix():
    rng = np.random.RandomState(0)
    return rng.normal(loc=10.0, scale=3.0, size=(50, 4))


class TestScalers:
    def test_standard_scaler(self, matrix):
        scaled = StandardScaler().fit_transform(matrix)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_standard_scaler_constant_column(self):
        X = np.ones((10, 2))
        scaled = StandardScaler().fit_transform(X)
        assert np.isfinite(scaled).all()

    def test_minmax_scaler(self, matrix):
        scaled = MinMaxScaler().fit_transform(matrix)
        assert scaled.min() >= 0.0 and scaled.max() <= 1.0 + 1e-12

    def test_minmax_custom_range(self, matrix):
        scaled = MinMaxScaler(feature_range=(-1, 1)).fit_transform(matrix)
        assert scaled.min() >= -1.0 - 1e-12 and scaled.max() <= 1.0 + 1e-12

    def test_robust_scaler_centers_on_median(self, matrix):
        scaled = RobustScaler().fit_transform(matrix)
        assert np.allclose(np.median(scaled, axis=0), 0.0, atol=1e-9)

    def test_unfitted_raises(self, matrix):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(matrix)

    def test_function_transformer_and_unary_helpers(self, matrix):
        assert np.allclose(FunctionTransformer().fit_transform(matrix), matrix)
        assert np.isfinite(log_transform(matrix - 50.0)).all()
        assert np.isfinite(sqrt_transform(matrix - 50.0)).all()


class TestEncoders:
    def test_label_encoder_round_trip(self):
        encoder = LabelEncoder().fit(["b", "a", "c", "a"])
        codes = encoder.transform(["a", "b", "c"])
        assert codes.tolist() == [0, 1, 2]
        assert encoder.inverse_transform(codes) == ["a", "b", "c"]

    def test_label_encoder_unknown_maps_to_zero(self):
        encoder = LabelEncoder().fit(["a", "b"])
        assert encoder.transform(["zzz"]).tolist() == [0]

    def test_one_hot_encoder(self):
        encoder = OneHotEncoder().fit(["x", "y", "x"])
        encoded = encoder.transform(["x", "y", "z"])
        assert encoded.shape == (3, 2)
        assert encoded[2].sum() == 0.0  # unknown category -> all zeros


def _with_missing(matrix, rate=0.2, seed=1):
    rng = np.random.RandomState(seed)
    corrupted = matrix.copy()
    mask = rng.rand(*matrix.shape) < rate
    corrupted[mask] = np.nan
    return corrupted


class TestImputers:
    @pytest.mark.parametrize(
        "imputer",
        [
            SimpleImputer(strategy="mean"),
            SimpleImputer(strategy="median"),
            SimpleImputer(strategy="most_frequent"),
            SimpleImputer(strategy="constant", fill_value=-1.0),
            InterpolateImputer(),
            KNNImputer(n_neighbors=3),
            IterativeImputer(max_iter=2),
        ],
    )
    def test_all_imputers_remove_missing(self, matrix, imputer):
        corrupted = _with_missing(matrix)
        filled = imputer.fit_transform(corrupted)
        assert np.isfinite(filled).all()
        # Observed cells are untouched.
        observed = np.isfinite(corrupted)
        assert np.allclose(filled[observed], corrupted[observed])

    def test_simple_imputer_mean_value(self):
        X = np.array([[1.0], [3.0], [np.nan]])
        filled = SimpleImputer(strategy="mean").fit_transform(X)
        assert filled[2, 0] == pytest.approx(2.0)

    def test_simple_imputer_unknown_strategy(self):
        with pytest.raises(ValueError):
            SimpleImputer(strategy="magic")

    def test_knn_imputer_uses_neighbours(self):
        X = np.array([[1.0, 10.0], [1.1, 11.0], [5.0, 50.0], [1.05, np.nan]])
        filled = KNNImputer(n_neighbors=2).fit_transform(X)
        assert filled[3, 1] == pytest.approx(10.5, rel=0.1)

    def test_iterative_imputer_recovers_linear_relation(self):
        rng = np.random.RandomState(0)
        x = rng.normal(size=80)
        Y = np.column_stack([x, 2 * x + 1])
        Y[5, 1] = np.nan
        filled = IterativeImputer(max_iter=5).fit_transform(Y)
        assert filled[5, 1] == pytest.approx(2 * x[5] + 1, abs=0.5)

    def test_unfitted_imputer_raises(self, matrix):
        with pytest.raises(RuntimeError):
            SimpleImputer().transform(matrix)
