"""Unit tests for value parsing and coercion."""

import math

import pytest

from repro.tabular.values import (
    coerce_bool,
    coerce_float,
    is_missing,
    looks_like_bool,
    looks_like_date,
    looks_like_float,
    looks_like_int,
    parse_value,
)


class TestIsMissing:
    def test_none_is_missing(self):
        assert is_missing(None)

    def test_nan_is_missing(self):
        assert is_missing(float("nan"))

    @pytest.mark.parametrize("token", ["", "NA", "n/a", "NaN", "null", "None", "?", "-"])
    def test_missing_tokens(self, token):
        assert is_missing(token)

    @pytest.mark.parametrize("value", [0, 0.0, False, "0", "value", "no"])
    def test_not_missing(self, value):
        assert not is_missing(value)


class TestParseValue:
    def test_integers(self):
        assert parse_value("42") == 42
        assert parse_value("-7") == -7

    def test_floats(self):
        assert parse_value("3.14") == pytest.approx(3.14)
        assert parse_value("1e3") == pytest.approx(1000.0)

    def test_booleans(self):
        assert parse_value("true") is True
        assert parse_value("No") is False

    def test_missing_tokens_become_none(self):
        assert parse_value("NA") is None
        assert parse_value("") is None

    def test_strings_are_stripped(self):
        assert parse_value("  hello  ") == "hello"

    def test_typed_values_pass_through(self):
        assert parse_value(5) == 5
        assert parse_value(2.5) == 2.5
        assert parse_value(True) is True

    def test_nan_float_becomes_none(self):
        assert parse_value(float("nan")) is None

    def test_numeric_zero_one_not_boolean(self):
        # "0"/"1" should stay integers, not become booleans.
        assert parse_value("0") == 0
        assert parse_value("1") == 1


class TestShapePredicates:
    def test_looks_like_int(self):
        assert looks_like_int("123")
        assert looks_like_int("-5")
        assert not looks_like_int("1.5")

    def test_looks_like_float(self):
        assert looks_like_float("1.5")
        assert looks_like_float("2e-3")
        assert not looks_like_float("abc")

    def test_looks_like_bool(self):
        assert looks_like_bool("yes")
        assert looks_like_bool("FALSE")
        assert not looks_like_bool("maybe")

    @pytest.mark.parametrize(
        "text",
        ["2021-05-03", "12/31/1999", "2021-05-03 14:22", "3 March 2020", "Mar 3, 2020"],
    )
    def test_looks_like_date_positive(self, text):
        assert looks_like_date(text)

    @pytest.mark.parametrize("text", ["hello", "123456", "12.5", "C85"])
    def test_looks_like_date_negative(self, text):
        assert not looks_like_date(text)


class TestCoercions:
    def test_coerce_float(self):
        assert coerce_float("2.5") == 2.5
        assert coerce_float(3) == 3.0
        assert coerce_float(True) == 1.0
        assert coerce_float("abc") is None
        assert coerce_float(None) is None

    def test_coerce_bool(self):
        assert coerce_bool("yes") is True
        assert coerce_bool(0) is False
        assert coerce_bool(1) is True
        assert coerce_bool(2) is None
        assert coerce_bool("maybe") is None
        assert coerce_bool(None) is None
