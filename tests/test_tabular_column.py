"""Unit tests for the Column container."""

import numpy as np
import pytest

from repro.tabular import Column


class TestDtypeInference:
    def test_int_column(self):
        assert Column("a", [1, 2, 3]).dtype == "int"

    def test_float_column(self):
        assert Column("a", [1.5, 2, 3.25]).dtype == "float"

    def test_bool_column(self):
        assert Column("a", [True, False, True]).dtype == "bool"

    def test_binary_string_column_is_bool(self):
        assert Column("a", ["yes", "no", "yes"]).dtype == "bool"

    def test_string_column(self):
        assert Column("a", ["x", "y", "zebra"]).dtype == "string"

    def test_date_column(self):
        assert Column("a", ["2021-01-01", "2020-12-31"]).dtype == "date"

    def test_empty_column(self):
        assert Column("a", [None, None]).dtype == "empty"

    def test_missing_values_ignored_for_dtype(self):
        assert Column("a", [1, None, 3]).dtype == "int"

    def test_parse_flag_converts_strings(self):
        column = Column("a", ["1", "2", "NA"], parse=True)
        assert column.values == [1, 2, None]
        assert column.dtype == "int"

    def test_invalidate_dtype(self):
        column = Column("a", [1, 2, 3])
        assert column.dtype == "int"
        column.values.append("text")
        column.invalidate_dtype()
        assert column.dtype == "string"


class TestMissingness:
    def test_missing_count_and_ratio(self):
        column = Column("a", [1, None, 3, None])
        assert column.missing_count() == 2
        assert column.missing_ratio() == pytest.approx(0.5)
        assert column.has_missing()

    def test_non_missing(self):
        assert Column("a", [1, None, 3]).non_missing() == [1, 3]

    def test_fill_missing(self):
        filled = Column("a", [1, None, 3]).fill_missing(0)
        assert filled.values == [1, 0, 3]


class TestStatistics:
    def test_distinct_count(self):
        assert Column("a", [1, 1, 2, None]).distinct_count() == 2

    def test_most_frequent(self):
        assert Column("a", ["x", "y", "x"]).most_frequent() == "x"

    def test_most_frequent_empty(self):
        assert Column("a", [None]).most_frequent() is None

    def test_true_ratio(self):
        assert Column("a", [True, False, True, True]).true_ratio() == pytest.approx(0.75)

    def test_true_ratio_for_binary_ints(self):
        assert Column("a", [1, 0, 1, 1]).true_ratio() == pytest.approx(0.75)

    def test_to_float_array_handles_non_numeric(self):
        array = Column("a", [1, "x", None]).to_float_array()
        assert array[0] == 1.0
        assert np.isnan(array[1]) and np.isnan(array[2])

    def test_numeric_values(self):
        assert Column("a", [1, "2.5", "x", None]).numeric_values() == [1.0, 2.5]


class TestSamplingAndTransforms:
    def test_sample_is_bounded_and_non_missing(self):
        column = Column("a", list(range(100)) + [None] * 10)
        sample = column.sample(20, seed=1)
        assert len(sample) == 20
        assert all(value is not None for value in sample)

    def test_sample_returns_all_when_small(self):
        assert sorted(Column("a", [1, 2, 3]).sample(10)) == [1, 2, 3]

    def test_map(self):
        assert Column("a", [1, 2]).map(lambda v: v * 2).values == [2, 4]

    def test_take(self):
        assert Column("a", [10, 20, 30]).take([2, 0]).values == [30, 10]

    def test_copy_is_independent(self):
        original = Column("a", [1, 2])
        duplicate = original.copy()
        duplicate.values.append(3)
        assert len(original) == 2

    def test_equality(self):
        assert Column("a", [1, 2]) == Column("a", [1, 2])
        assert Column("a", [1, 2]) != Column("b", [1, 2])
