"""Property-based tests (hypothesis) for core data structures and invariants."""

import math

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.embeddings.colr import ColRModelSet, cosine_similarity
from repro.eval import precision_at_k, recall_at_k
from repro.ml import MinMaxScaler, SimpleImputer, StandardScaler, accuracy_score, f1_score
from repro.rdf import KGLIDS_ONTOLOGY, Literal, QuadStore, URIRef
from repro.rdf.serialize import parse_nquads, serialize_nquads
from repro.tabular import Column, Table
from repro.tabular.values import is_missing, parse_value

_SETTINGS = settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])

cell_values = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.booleans(),
    st.text(alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=0x7F), max_size=12),
    st.none(),
)


class TestTabularProperties:
    @_SETTINGS
    @given(st.lists(cell_values, min_size=1, max_size=50))
    def test_missing_plus_non_missing_equals_length(self, values):
        column = Column("c", values)
        assert column.missing_count() + len(column.non_missing()) == len(column)
        assert 0.0 <= column.missing_ratio() <= 1.0

    @_SETTINGS
    @given(st.lists(cell_values, min_size=1, max_size=50), st.integers(min_value=1, max_value=60))
    def test_sample_is_subset_of_non_missing(self, values, n):
        column = Column("c", values)
        sample = column.sample(n, seed=3)
        assert len(sample) <= min(n, len(column.non_missing()))
        non_missing = column.non_missing()
        assert all(value in non_missing for value in sample)

    @_SETTINGS
    @given(st.lists(st.text(max_size=8), min_size=1, max_size=20))
    def test_parse_value_never_raises_and_misses_are_none(self, raw_values):
        for raw in raw_values:
            parsed = parse_value(raw)
            if is_missing(raw):
                assert parsed is None

    @_SETTINGS
    @given(
        st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=2, max_size=40),
        st.lists(st.integers(min_value=0, max_value=3), min_size=2, max_size=40),
    )
    def test_feature_matrix_is_finite(self, numeric, labels):
        n = min(len(numeric), len(labels))
        table = Table.from_dict("t", {"x": numeric[:n], "y": labels[:n]})
        X, _ = table.to_feature_matrix(target="y")
        assert np.isfinite(X).all()
        assert X.shape[0] == n


class TestMLProperties:
    @_SETTINGS
    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=60))
    def test_perfect_predictions_score_one(self, labels):
        assert accuracy_score(labels, labels) == 1.0
        average = "binary" if len(set(labels)) <= 2 else "macro"
        assert 0.0 <= f1_score(labels, labels, average=average) <= 1.0

    @_SETTINGS
    @given(
        st.lists(st.integers(min_value=0, max_value=2), min_size=2, max_size=40),
        st.lists(st.integers(min_value=0, max_value=2), min_size=2, max_size=40),
    )
    def test_metric_bounds(self, y_true, y_pred):
        n = min(len(y_true), len(y_pred))
        assert 0.0 <= accuracy_score(y_true[:n], y_pred[:n]) <= 1.0
        assert 0.0 <= f1_score(y_true[:n], y_pred[:n], average="macro") <= 1.0

    @_SETTINGS
    @given(
        st.integers(min_value=3, max_value=25),
        st.integers(min_value=1, max_value=5),
        st.floats(min_value=0.0, max_value=0.6),
    )
    def test_imputer_output_is_always_finite(self, rows, cols, missing_rate):
        rng = np.random.RandomState(0)
        X = rng.normal(size=(rows, cols))
        X[rng.rand(rows, cols) < missing_rate] = np.nan
        filled = SimpleImputer().fit_transform(X)
        assert np.isfinite(filled).all()

    @_SETTINGS
    @given(st.integers(min_value=3, max_value=30), st.integers(min_value=1, max_value=4))
    def test_scalers_are_shape_preserving_and_finite(self, rows, cols):
        rng = np.random.RandomState(1)
        X = rng.normal(scale=10.0, size=(rows, cols))
        for scaler in (StandardScaler(), MinMaxScaler()):
            scaled = scaler.fit_transform(X)
            assert scaled.shape == X.shape
            assert np.isfinite(scaled).all()


class TestRDFProperties:
    node_text = st.text(
        alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd")), min_size=1, max_size=10
    )

    @_SETTINGS
    @given(st.lists(st.tuples(node_text, node_text, node_text), min_size=1, max_size=30))
    def test_store_deduplicates_and_roundtrips(self, raw_triples):
        store = QuadStore()
        triples = [
            (URIRef(f"http://s/{s}"), URIRef(f"http://p/{p}"), Literal(o))
            for s, p, o in raw_triples
        ]
        for triple in triples:
            store.add(*triple)
            store.add(*triple)  # duplicate insert must be a no-op
        assert len(store) == len(set(triples))
        reloaded = parse_nquads(serialize_nquads(store))
        assert len(reloaded) == len(store)
        for subject, predicate, obj in set(triples):
            assert reloaded.contains(subject, predicate, obj)

    @_SETTINGS
    @given(node_text, node_text, st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_annotation_roundtrip(self, a, b, score):
        store = QuadStore()
        onto = KGLIDS_ONTOLOGY
        subject, obj = URIRef(f"http://c/{a}"), URIRef(f"http://c/{b}")
        store.annotate(subject, onto.hasContentSimilarity, obj, onto.withCertainty, Literal(score))
        recovered = store.annotation(subject, onto.hasContentSimilarity, obj, onto.withCertainty)
        assert math.isclose(recovered, score, rel_tol=1e-9, abs_tol=1e-12)


class TestEmbeddingAndMetricProperties:
    @_SETTINGS
    @given(
        st.lists(st.floats(min_value=-1e4, max_value=1e4, allow_nan=False), min_size=1, max_size=40)
    )
    def test_column_embedding_is_finite_and_bounded(self, values):
        models = ColRModelSet.pretrained()
        embedding = models.embed_column_values(values, "float")
        assert embedding.shape == (300,)
        assert np.isfinite(embedding).all()
        assert np.abs(embedding).max() <= 1.0 + 1e-9  # tanh output layer

    @_SETTINGS
    @given(
        st.lists(st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=2, max_size=32),
        st.lists(st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=2, max_size=32),
    )
    def test_cosine_similarity_bounds_and_symmetry(self, a, b):
        n = min(len(a), len(b))
        va, vb = np.asarray(a[:n]), np.asarray(b[:n])
        similarity = cosine_similarity(va, vb)
        assert 0.0 <= similarity <= 1.0
        assert math.isclose(similarity, cosine_similarity(vb, va), abs_tol=1e-12)

    @_SETTINGS
    @given(
        st.lists(st.integers(min_value=0, max_value=30), min_size=0, max_size=30, unique=True),
        st.sets(st.integers(min_value=0, max_value=30), max_size=10),
        st.integers(min_value=1, max_value=40),
    )
    def test_precision_recall_bounds(self, ranked, relevant, k):
        assert 0.0 <= precision_at_k(ranked, relevant, k) <= 1.0
        assert 0.0 <= recall_at_k(ranked, relevant, k) <= 1.0
        # Recall is monotone in k.
        assert recall_at_k(ranked, relevant, k) <= recall_at_k(ranked, relevant, k + 10) + 1e-12
