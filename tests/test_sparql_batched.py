"""The batched SPARQL executor, term dictionary and shard eviction.

Pins the contracts of the dictionary-encoded storage / batched-join PR:

* **Randomized parity** — the batched (columnar hash-join) executor, the
  tuple-at-a-time executor and the seed written-order path return the same
  rows (modulo order) on generated graphs and a zoo of query shapes, over
  both the in-memory and sqlite backends;
* **Term dictionary** — term <-> id interning is bidirectional, quoted
  triples are first-class, and ids round-trip byte-stably through a sqlite
  save/reopen;
* **LRU shard eviction** — ``max_resident_graphs`` caps resident indexes
  with write-through flushes, eviction counters, and per-graph version
  monotonicity across evict/reload cycles;
* **Bounded lookup memo** — the per-pattern memo evicts past capacity and
  reports hit/miss counters through the engine.
"""

from __future__ import annotations

import random

import pytest

from repro.rdf import (
    Literal,
    QuadStore,
    QuotedTriple,
    SqliteBackend,
    TermDictionary,
    URIRef,
)
from repro.rdf.serialize import serialize_nquads
from repro.sparql import SPARQLEngine
from repro.sparql.columnar import BoundedMemo

EX = "http://example.org/"


def _uri(name: str) -> URIRef:
    return URIRef(f"{EX}{name}")


def make_random_store(seed: int, store: QuadStore | None = None) -> QuadStore:
    """A small random multi-graph store with literals and annotations."""
    rng = random.Random(seed)
    if store is None:  # NB: an empty QuadStore is falsy (len() == 0)
        store = QuadStore()
    graphs = [_uri("g1"), _uri("g2")]
    subjects = [_uri(f"s{i}") for i in range(12)]
    predicates = [_uri(f"p{i}") for i in range(4)]
    for _ in range(120):
        subject = rng.choice(subjects)
        predicate = rng.choice(predicates)
        obj = rng.choice(subjects) if rng.random() < 0.6 else Literal(rng.randint(0, 9))
        store.add(subject, predicate, obj, graph=rng.choice(graphs))
    # RDF-star annotations on a handful of edges.
    annotation = _uri("certainty")
    for _ in range(15):
        subject = rng.choice(subjects)
        obj = rng.choice(subjects)
        store.annotate(
            subject,
            predicates[0],
            obj,
            annotation,
            Literal(round(rng.random(), 3)),
            graph=rng.choice(graphs),
        )
    # Names so FILTER / BIND string functions have text to chew on.
    has_name = _uri("name")
    for position, subject in enumerate(subjects):
        store.add(subject, has_name, Literal(f"node_{position}"), graph=graphs[0])
    return store


QUERY_SHAPES = [
    # chain join
    f"SELECT ?a ?b ?c WHERE {{ ?a <{EX}p0> ?b . ?b <{EX}p1> ?c . }}",
    # star join with names
    f"SELECT ?s ?n ?x WHERE {{ ?s <{EX}name> ?n . ?s <{EX}p2> ?x . }}",
    # triangle-ish with repeated variable use
    f"SELECT ?a ?b WHERE {{ ?a <{EX}p0> ?b . ?b <{EX}p0> ?a . }}",
    # quoted annotation read with joined names
    f"""SELECT ?a ?b ?v ?n WHERE {{
        << ?a <{EX}p0> ?b >> <{EX}certainty> ?v .
        ?a <{EX}name> ?n .
    }}""",
    # OPTIONAL with a filter on boundness
    f"""SELECT ?s ?n ?x WHERE {{
        ?s <{EX}name> ?n . OPTIONAL {{ ?s <{EX}p3> ?x . }}
    }}""",
    f"""SELECT ?s ?n WHERE {{
        ?s <{EX}name> ?n . OPTIONAL {{ ?s <{EX}p3> ?x . }} FILTER(!bound(?x))
    }}""",
    # OPTIONAL variable reused by a later pattern
    f"""SELECT ?s ?x ?y WHERE {{
        ?s <{EX}name> ?n . OPTIONAL {{ ?s <{EX}p3> ?x . }} ?x <{EX}p1> ?y .
    }}""",
    # UNION
    f"""SELECT ?s ?o WHERE {{
        {{ ?s <{EX}p0> ?o . }} UNION {{ ?s <{EX}p1> ?o . }}
    }}""",
    # named graph variable
    f"SELECT ?g ?s ?o WHERE {{ GRAPH ?g {{ ?s <{EX}p2> ?o . }} }}",
    # named graph constant
    f"SELECT ?s ?o WHERE {{ GRAPH <{EX}g2> {{ ?s <{EX}p0> ?o . }} }}",
    # FILTER on a numeric literal
    f"SELECT ?s ?o WHERE {{ ?s <{EX}p1> ?o . FILTER(?o >= 5) }}",
    # BIND + string function + filter
    f"""SELECT ?s ?upper WHERE {{
        ?s <{EX}name> ?n . FILTER(strstarts(?n, "node_1")) BIND(ucase(?n) AS ?upper)
    }}""",
    # aggregate over a join
    f"""SELECT ?a (COUNT(?b) AS ?n) WHERE {{
        ?a <{EX}p0> ?b . ?a <{EX}name> ?m .
    }} GROUP BY ?a ORDER BY ?a""",
    # distinct projection
    f"SELECT DISTINCT ?a WHERE {{ ?a <{EX}p0> ?b . ?b <{EX}p1> ?c . }}",
    # multi-variable distinct over a duplicate-producing join
    f"SELECT DISTINCT ?a ?c WHERE {{ ?a <{EX}p0> ?b . ?b <{EX}p1> ?c . }}",
]


def rows_key(result):
    """Order-insensitive, binding-order-insensitive row multiset."""
    return sorted(
        tuple(sorted((key, str(value)) for key, value in row.items()))
        for row in result.rows
    )


class TestRandomizedParity:
    @pytest.mark.parametrize("seed", [3, 11, 42])
    @pytest.mark.parametrize("shape", range(len(QUERY_SHAPES)))
    def test_batched_matches_seed_semantics(self, seed, shape):
        store = make_random_store(seed)
        query = QUERY_SHAPES[shape]
        batched = SPARQLEngine(store).select(query)
        tuple_engine = SPARQLEngine(store, batched=False).select(query)
        seed_engine = SPARQLEngine(store, optimize=False).select(query)
        assert rows_key(batched) == rows_key(seed_engine)
        assert rows_key(tuple_engine) == rows_key(seed_engine)

    @pytest.mark.parametrize("seed", [7, 19])
    def test_parity_holds_on_sqlite_backend(self, seed, tmp_path):
        memory_store = make_random_store(seed)
        sqlite_store = make_random_store(seed, QuadStore.sqlite(tmp_path / "s.sqlite3"))
        assert serialize_nquads(memory_store) == serialize_nquads(sqlite_store)
        for query in QUERY_SHAPES:
            expected = rows_key(SPARQLEngine(memory_store, optimize=False).select(query))
            assert rows_key(SPARQLEngine(sqlite_store).select(query)) == expected
            assert rows_key(SPARQLEngine(memory_store).select(query)) == expected
        sqlite_store.close()

    @pytest.mark.parametrize("seed", [5])
    def test_parity_after_reopen(self, seed, tmp_path):
        """A reopened store (ids decoded from the terms table) stays identical."""
        path = tmp_path / "s.sqlite3"
        original = make_random_store(seed, QuadStore.sqlite(path))
        expected = {
            query: rows_key(SPARQLEngine(original).select(query))
            for query in QUERY_SHAPES
        }
        original.close()
        reopened = QuadStore.sqlite(path)
        for query, rows in expected.items():
            assert rows_key(SPARQLEngine(reopened).select(query)) == rows
        reopened.close()

    def test_explain_stable_across_executors(self):
        store = make_random_store(3)
        query = QUERY_SHAPES[0]
        assert (
            SPARQLEngine(store).explain(query)
            == SPARQLEngine(store, batched=False).explain(query)
        )


class TestDictionaryAwareDistinct:
    """DISTINCT deduplicates on id tuples and decodes only the survivors."""

    DISTINCT_QUERY = f"SELECT DISTINCT ?a ?c WHERE {{ ?a <{EX}p0> ?b . ?b <{EX}p1> ?c . }}"

    @pytest.mark.parametrize("seed", [3, 11, 42])
    def test_distinct_parity_with_tuple_executor(self, seed):
        store = make_random_store(seed)
        batched = SPARQLEngine(store).select(self.DISTINCT_QUERY)
        tuple_rows = SPARQLEngine(store, batched=False).select(self.DISTINCT_QUERY)
        assert rows_key(batched) == rows_key(tuple_rows)
        # DISTINCT really deduplicated (the join fans out duplicates).
        plain = SPARQLEngine(store).select(self.DISTINCT_QUERY.replace("DISTINCT ", ""))
        assert len(batched) <= len(plain)
        assert len(set(map(str, batched.rows))) == len(batched)

    def test_id_distinct_value_equal_rows_still_collapse(self):
        """Two interned terms projecting to the same Python value collapse.

        ``Literal(5)`` and ``Literal("5")`` hold different dictionary ids
        but both project to ``str(...) == "5"`` under the seed executor's
        value keying — the id-space dedup alone would keep both, so the
        value-level guard must collapse them exactly like the tuple path.
        """
        store = QuadStore()
        a, b1, b2 = _uri("a"), _uri("b1"), _uri("b2")
        store.add(a, _uri("p0"), b1)
        store.add(a, _uri("p0"), b2)
        store.add(b1, _uri("p1"), Literal(5))
        store.add(b2, _uri("p1"), Literal("5"))
        batched = SPARQLEngine(store).select(self.DISTINCT_QUERY)
        tuple_rows = SPARQLEngine(store, batched=False).select(self.DISTINCT_QUERY)
        seed_rows = SPARQLEngine(store, optimize=False).select(self.DISTINCT_QUERY)
        assert rows_key(batched) == rows_key(tuple_rows) == rows_key(seed_rows)
        assert len(batched) == 1

    @pytest.mark.parametrize("seed", [7])
    def test_distinct_with_offset_and_limit(self, seed):
        store = make_random_store(seed)
        query = self.DISTINCT_QUERY + " OFFSET 2 LIMIT 3"
        full = SPARQLEngine(store, batched=False).select(self.DISTINCT_QUERY)
        windowed = SPARQLEngine(store).select(query)
        assert len(windowed) == min(3, max(0, len(full) - 2))
        # The window is a slice of the distinct rows, not of the raw rows.
        window_keys = rows_key(windowed)
        assert all(key in rows_key(full) for key in window_keys)


class TestTermDictionary:
    def test_encode_decode_round_trip(self):
        dictionary = TermDictionary()
        terms = [_uri("a"), Literal("x"), Literal(5), _uri("b")]
        ids = [dictionary.encode(term) for term in terms]
        assert len(set(ids)) == len(ids)
        for term, term_id in zip(terms, ids):
            assert dictionary.decode(term_id) == term
            assert dictionary.lookup(term) == term_id
        assert dictionary.encode(terms[0]) == ids[0]  # interning is stable
        assert dictionary.lookup(_uri("missing")) is None

    def test_quoted_triples_are_first_class(self):
        dictionary = TermDictionary()
        quoted = QuotedTriple(_uri("a"), _uri("p"), Literal(1))
        quoted_id = dictionary.encode(quoted)
        parts = dictionary.quoted_parts(quoted_id)
        assert parts == (
            dictionary.lookup(_uri("a")),
            dictionary.lookup(_uri("p")),
            dictionary.lookup(Literal(1)),
        )
        assert dictionary.quoted_id(parts) == quoted_id
        assert dictionary.lookup(QuotedTriple(_uri("a"), _uri("p"), Literal(1))) == quoted_id
        assert dictionary.quoted_parts(dictionary.encode(_uri("a"))) is None

    def test_ids_round_trip_through_sqlite(self, tmp_path):
        path = tmp_path / "store.sqlite3"
        store = QuadStore.sqlite(path)
        terms = [_uri("a"), _uri("p"), Literal("hello\nworld"), Literal(2.5)]
        store.add(terms[0], terms[1], terms[2])
        store.add(terms[0], terms[1], terms[3])
        store.annotate(terms[0], terms[1], terms[3], _uri("score"), Literal(0.9))
        recorded = {str(term): store.dictionary.lookup(term) for term in terms}
        quoted = QuotedTriple(terms[0], terms[1], terms[3])
        recorded_quoted = store.dictionary.lookup(quoted)
        store.close()

        reopened = QuadStore.sqlite(path)
        for term in terms:
            assert reopened.dictionary.lookup(term) == recorded[str(term)]
            assert reopened.dictionary.decode(recorded[str(term)]) == term
        assert reopened.dictionary.lookup(quoted) == recorded_quoted
        assert reopened.dictionary.quoted_parts(recorded_quoted) == (
            recorded[str(terms[0])],
            recorded[str(terms[1])],
            recorded[str(terms[3])],
        )
        reopened.close()

    def test_value_equal_terms_share_one_id(self):
        """Dict-key equality semantics: URIRef("x") and "x" alias (as the
        seed's triple sets did), Literal("5") and "5" stay distinct."""
        dictionary = TermDictionary()
        assert dictionary.encode(_uri("x")) == dictionary.encode(str(_uri("x")))
        assert dictionary.encode(Literal("5")) != dictionary.encode("5")


class TestShardEviction:
    def _populated(self, path, cap):
        store = QuadStore(backend=SqliteBackend(path, max_resident_graphs=cap))
        for g in range(5):
            for i in range(4):
                store.add(_uri(f"s{i}"), _uri("p"), Literal(i), graph=_uri(f"g{g}"))
        return store

    def test_resident_set_is_capped(self, tmp_path):
        store = self._populated(tmp_path / "e.sqlite3", cap=2)
        backend = store.backend
        assert isinstance(backend, SqliteBackend)
        assert len(backend._indexes) <= 2
        assert backend.shard_evictions >= 3
        # Every graph still answers correctly after eviction + reload.
        for g in range(5):
            assert store.num_triples(_uri(f"g{g}")) == 4
            assert len(list(store.triples(graph=_uri(f"g{g}")))) == 4
        assert len(backend._indexes) <= 2
        store.close()

    def test_write_through_before_eviction(self, tmp_path):
        """Buffered writes of a shard must be durable before it is evicted."""
        path = tmp_path / "e.sqlite3"
        store = self._populated(path, cap=1)
        store.close()
        reopened = QuadStore.sqlite(path)
        assert reopened.num_triples() == 20
        for g in range(5):
            assert sorted(
                str(t.object) for t in reopened.triples(graph=_uri(f"g{g}"))
            ) == sorted(str(Literal(i)) for i in range(4))
        reopened.close()

    def test_eviction_counters_exposed(self, tmp_path):
        store = self._populated(tmp_path / "e.sqlite3", cap=2)
        backend = store.backend
        loads_before = backend.shard_loads
        evictions_before = backend.shard_evictions
        # Touching an evicted graph reloads it (and evicts another).
        victims = [g for g in store.graphs() if g not in backend._indexes]
        assert victims
        list(store.triples(graph=victims[0]))
        assert backend.shard_loads == loads_before + 1
        assert backend.shard_evictions == evictions_before + 1
        store.close()

    def test_graph_version_monotonic_across_eviction(self, tmp_path):
        """Version-keyed reader caches must never see a reload as 'no change'."""
        store = self._populated(tmp_path / "e.sqlite3", cap=1)
        graph = _uri("g0")
        version_before = store.graph_version(graph)  # forces a reload
        # Touch the other graphs so g0 is evicted again.
        for g in range(1, 5):
            store.num_triples(_uri(f"g{g}"))
            list(store.triples(graph=_uri(f"g{g}")))
        store.add(_uri("sX"), _uri("p"), Literal(99), graph=graph)
        assert store.graph_version(graph) > version_before
        store.close()

    def test_version_advances_for_unloaded_predicate_delete(self, tmp_path):
        """A predicate delete on an evicted shard must advance the version
        floor: shrinking by N and reloading would otherwise land exactly on
        the pre-eviction counter and keep version-keyed caches stale."""
        store = self._populated(tmp_path / "e.sqlite3", cap=1)
        graph = _uri("g0")
        observed = store.graph_version(graph)  # loads g0
        list(store.triples(graph=_uri("g4")))  # evicts g0
        backend = store.backend
        assert graph not in backend._indexes
        assert store.remove_predicate(_uri("p"), graph=graph) == 4
        assert graph not in backend._indexes  # retracted in sqlite directly
        assert store.graph_version(graph) > observed
        assert store.num_triples(graph) == 0
        store.close()

    def test_cap_of_one_still_functions(self, tmp_path):
        store = self._populated(tmp_path / "e.sqlite3", cap=1)
        backend = store.backend
        assert len(backend._indexes) <= 1
        engine = SPARQLEngine(store)
        result = engine.select(f"SELECT ?s ?o WHERE {{ ?s <{EX}p> ?o . }}")
        assert len(result) == 20
        store.close()

    def test_invalid_cap_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            SqliteBackend(tmp_path / "bad.sqlite3", max_resident_graphs=0)

    def test_query_pins_residency_loading_each_shard_once(self, tmp_path):
        """A cross-graph query on a capped store must load each missing
        shard at most once (the engine pins residency for the evaluation),
        and the cap must re-apply once the query finishes."""
        path = tmp_path / "pin.sqlite3"
        store = self._populated(path, cap=None)
        store.close()
        capped = QuadStore.sqlite(path, max_resident_graphs=2)
        backend = capped.backend
        engine = SPARQLEngine(capped)
        query = f"SELECT ?s ?o WHERE {{ ?s <{EX}p> ?o . ?s <{EX}p> ?o . }}"
        # 4 distinct (s, o) pairs replicated in all 5 graphs: the first
        # pattern binds 20 rows, the self-join matches each in 5 graphs.
        assert len(engine.select(query)) == 100
        first_loads = backend.shard_loads
        assert first_loads == 5  # one load per shard, despite cap < graphs
        assert len(backend._indexes) <= 2  # cap re-applied after the query
        assert len(engine.select(query)) == 100
        assert backend.shard_loads - first_loads <= 5
        capped.close()


class TestBoundedMemo:
    def test_lru_eviction_and_counters(self):
        memo = BoundedMemo(capacity=2)
        missing = memo.MISSING
        assert memo.get("a") is missing
        memo.put("a", 1)
        memo.put("b", 2)
        assert memo.get("a") == 1  # refreshes "a"; "b" is now LRU
        memo.put("c", 3)  # evicts "b"
        assert memo.get("b") is missing
        assert memo.get("a") == 1
        assert memo.get("c") == 3
        counters = memo.counters()
        assert counters["evictions"] == 1
        assert counters["hits"] == 3
        assert counters["misses"] == 2
        assert len(memo) == 2

    def test_unbounded_memo_keeps_counters(self):
        memo = BoundedMemo(capacity=None)
        for position in range(100):
            memo.put(position, position)
        assert len(memo) == 100
        assert memo.counters()["evictions"] == 0

    def test_engine_exposes_memo_counters(self):
        store = make_random_store(3)
        engine = SPARQLEngine(store, memo_capacity=8)
        engine.select(QUERY_SHAPES[0])
        counters = engine.memo_counters()
        assert counters["misses"] > 0

    def test_tiny_capacity_does_not_change_results(self):
        store = make_random_store(11)
        roomy = SPARQLEngine(store)
        cramped = SPARQLEngine(store, memo_capacity=1)
        for query in QUERY_SHAPES:
            assert rows_key(cramped.select(query)) == rows_key(roomy.select(query))
