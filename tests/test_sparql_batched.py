"""The batched SPARQL executor, term dictionary and shard eviction.

Pins the contracts of the dictionary-encoded storage / batched-join PR:

* **Randomized parity** — the batched (columnar hash-join) executor, the
  tuple-at-a-time executor and the seed written-order path return the same
  rows (modulo order) on generated graphs and a zoo of query shapes, over
  both the in-memory and sqlite backends;
* **Term dictionary** — term <-> id interning is bidirectional, quoted
  triples are first-class, and ids round-trip byte-stably through a sqlite
  save/reopen;
* **LRU shard eviction** — ``max_resident_graphs`` caps resident indexes
  with write-through flushes, eviction counters, and per-graph version
  monotonicity across evict/reload cycles;
* **Bounded lookup memo** — the per-pattern memo evicts past capacity and
  reports hit/miss counters through the engine.
"""

from __future__ import annotations

import random

import pytest

from repro.rdf import (
    Literal,
    QuadStore,
    QuotedTriple,
    SqliteBackend,
    TermDictionary,
    URIRef,
)
from repro.rdf.serialize import serialize_nquads
from repro.sparql import SPARQLEngine
from repro.sparql.columnar import UNBOUND, BoundedMemo, Relation

EX = "http://example.org/"


def _uri(name: str) -> URIRef:
    return URIRef(f"{EX}{name}")


def make_random_store(seed: int, store: QuadStore | None = None) -> QuadStore:
    """A small random multi-graph store with literals and annotations."""
    rng = random.Random(seed)
    if store is None:  # NB: an empty QuadStore is falsy (len() == 0)
        store = QuadStore()
    graphs = [_uri("g1"), _uri("g2")]
    subjects = [_uri(f"s{i}") for i in range(12)]
    predicates = [_uri(f"p{i}") for i in range(4)]
    for _ in range(120):
        subject = rng.choice(subjects)
        predicate = rng.choice(predicates)
        obj = rng.choice(subjects) if rng.random() < 0.6 else Literal(rng.randint(0, 9))
        store.add(subject, predicate, obj, graph=rng.choice(graphs))
    # RDF-star annotations on a handful of edges.
    annotation = _uri("certainty")
    for _ in range(15):
        subject = rng.choice(subjects)
        obj = rng.choice(subjects)
        store.annotate(
            subject,
            predicates[0],
            obj,
            annotation,
            Literal(round(rng.random(), 3)),
            graph=rng.choice(graphs),
        )
    # Names so FILTER / BIND string functions have text to chew on.
    has_name = _uri("name")
    for position, subject in enumerate(subjects):
        store.add(subject, has_name, Literal(f"node_{position}"), graph=graphs[0])
    return store


QUERY_SHAPES = [
    # chain join
    f"SELECT ?a ?b ?c WHERE {{ ?a <{EX}p0> ?b . ?b <{EX}p1> ?c . }}",
    # star join with names
    f"SELECT ?s ?n ?x WHERE {{ ?s <{EX}name> ?n . ?s <{EX}p2> ?x . }}",
    # triangle-ish with repeated variable use
    f"SELECT ?a ?b WHERE {{ ?a <{EX}p0> ?b . ?b <{EX}p0> ?a . }}",
    # quoted annotation read with joined names
    f"""SELECT ?a ?b ?v ?n WHERE {{
        << ?a <{EX}p0> ?b >> <{EX}certainty> ?v .
        ?a <{EX}name> ?n .
    }}""",
    # OPTIONAL with a filter on boundness
    f"""SELECT ?s ?n ?x WHERE {{
        ?s <{EX}name> ?n . OPTIONAL {{ ?s <{EX}p3> ?x . }}
    }}""",
    f"""SELECT ?s ?n WHERE {{
        ?s <{EX}name> ?n . OPTIONAL {{ ?s <{EX}p3> ?x . }} FILTER(!bound(?x))
    }}""",
    # OPTIONAL variable reused by a later pattern
    f"""SELECT ?s ?x ?y WHERE {{
        ?s <{EX}name> ?n . OPTIONAL {{ ?s <{EX}p3> ?x . }} ?x <{EX}p1> ?y .
    }}""",
    # UNION
    f"""SELECT ?s ?o WHERE {{
        {{ ?s <{EX}p0> ?o . }} UNION {{ ?s <{EX}p1> ?o . }}
    }}""",
    # named graph variable
    f"SELECT ?g ?s ?o WHERE {{ GRAPH ?g {{ ?s <{EX}p2> ?o . }} }}",
    # named graph constant
    f"SELECT ?s ?o WHERE {{ GRAPH <{EX}g2> {{ ?s <{EX}p0> ?o . }} }}",
    # FILTER on a numeric literal
    f"SELECT ?s ?o WHERE {{ ?s <{EX}p1> ?o . FILTER(?o >= 5) }}",
    # BIND + string function + filter
    f"""SELECT ?s ?upper WHERE {{
        ?s <{EX}name> ?n . FILTER(strstarts(?n, "node_1")) BIND(ucase(?n) AS ?upper)
    }}""",
    # aggregate over a join
    f"""SELECT ?a (COUNT(?b) AS ?n) WHERE {{
        ?a <{EX}p0> ?b . ?a <{EX}name> ?m .
    }} GROUP BY ?a ORDER BY ?a""",
    # distinct projection
    f"SELECT DISTINCT ?a WHERE {{ ?a <{EX}p0> ?b . ?b <{EX}p1> ?c . }}",
    # multi-variable distinct over a duplicate-producing join
    f"SELECT DISTINCT ?a ?c WHERE {{ ?a <{EX}p0> ?b . ?b <{EX}p1> ?c . }}",
    # --- shapes added with the vectorized collation tail ---
    # multi-aggregate GROUP BY with DISTINCT counting, ordered by an alias
    # (?b is a name literal so MIN/MAX compare homogeneous strings)
    f"""SELECT ?a (COUNT(DISTINCT ?b) AS ?n) (MIN(?b) AS ?lo) (MAX(?b) AS ?hi)
        WHERE {{ ?a <{EX}p0> ?x . ?x <{EX}name> ?b . }} GROUP BY ?a ORDER BY DESC(?n) ?a""",
    # SUM / AVG over float annotation values (order-sensitive float adds)
    f"""SELECT ?a (SUM(?v) AS ?total) (AVG(?v) AS ?mean) WHERE {{
        << ?a <{EX}p0> ?b >> <{EX}certainty> ?v .
    }} GROUP BY ?a ORDER BY ?a""",
    # ORDER BY with a sometimes-unbound (OPTIONAL) sort key
    f"""SELECT ?s ?n ?x WHERE {{
        ?s <{EX}name> ?n . OPTIONAL {{ ?s <{EX}p3> ?x . }}
    }} ORDER BY ?x DESC(?n)""",
    # pushdown-eligible single-variable FILTER below a join
    f"SELECT ?a ?c WHERE {{ ?a <{EX}p0> ?b . ?b <{EX}p1> ?c . FILTER(?c <= 4) }}",
    # FILTER written before the pattern that binds its variable
    f"SELECT ?s ?o WHERE {{ FILTER(?o > 2) ?s <{EX}p1> ?o . }}",
    # pushed filter over a variable an OPTIONAL leaves unbound mid-group
    f"""SELECT ?s ?x ?y WHERE {{
        ?s <{EX}name> ?n . OPTIONAL {{ ?s <{EX}p3> ?x . }}
        FILTER(?x >= 0) ?x <{EX}p1> ?y .
    }}""",
    # three-branch UNION over identical layouts (aligned-prefix concat)
    f"""SELECT ?s ?o WHERE {{
        {{ ?s <{EX}p0> ?o . }} UNION {{ ?s <{EX}p1> ?o . }} UNION {{ ?s <{EX}p2> ?o . }}
    }}""",
    # UNION branches growing different variables, collated by ORDER BY
    f"""SELECT ?s ?o ?n WHERE {{
        {{ ?s <{EX}p2> ?o . }} UNION {{ ?s <{EX}name> ?n . }}
    }} ORDER BY ?s ?o ?n""",
    # aggregate over an empty match (no GROUP BY -> one all-empty group)
    f"""SELECT (COUNT(?x) AS ?n) (SUM(?o) AS ?total) WHERE {{
        ?s <{EX}p9> ?o . ?s <{EX}p0> ?x .
    }}""",
    # GROUP BY over an empty match (zero groups)
    f"SELECT ?s (COUNT(?o) AS ?n) WHERE {{ ?s <{EX}p9> ?o . }} GROUP BY ?s",
    # SELECT * with an OPTIONAL tail
    f"SELECT * WHERE {{ ?s <{EX}p2> ?o . OPTIONAL {{ ?o <{EX}name> ?n . }} }}",
]


def rows_key(result):
    """Order-insensitive, binding-order-insensitive row multiset."""
    return sorted(
        tuple(sorted((key, str(value)) for key, value in row.items()))
        for row in result.rows
    )


class TestRandomizedParity:
    @pytest.mark.parametrize("seed", [3, 11, 42])
    @pytest.mark.parametrize("shape", range(len(QUERY_SHAPES)))
    def test_batched_matches_seed_semantics(self, seed, shape):
        store = make_random_store(seed)
        query = QUERY_SHAPES[shape]
        vectorized = SPARQLEngine(store).select(query)
        batched = SPARQLEngine(store, vectorized=False).select(query)
        tuple_engine = SPARQLEngine(store, batched=False).select(query)
        seed_engine = SPARQLEngine(store, optimize=False).select(query)
        assert rows_key(vectorized) == rows_key(seed_engine)
        assert rows_key(batched) == rows_key(seed_engine)
        assert rows_key(tuple_engine) == rows_key(seed_engine)

    @pytest.mark.parametrize("seed", [7, 19])
    def test_parity_holds_on_sqlite_backend(self, seed, tmp_path):
        memory_store = make_random_store(seed)
        sqlite_store = make_random_store(seed, QuadStore.sqlite(tmp_path / "s.sqlite3"))
        assert serialize_nquads(memory_store) == serialize_nquads(sqlite_store)
        for query in QUERY_SHAPES:
            expected = rows_key(SPARQLEngine(memory_store, optimize=False).select(query))
            assert rows_key(SPARQLEngine(sqlite_store).select(query)) == expected
            assert rows_key(SPARQLEngine(memory_store).select(query)) == expected
            assert (
                rows_key(SPARQLEngine(sqlite_store, vectorized=False).select(query))
                == expected
            )
        sqlite_store.close()

    @pytest.mark.parametrize("seed", [5])
    def test_parity_after_reopen(self, seed, tmp_path):
        """A reopened store (ids decoded from the terms table) stays identical."""
        path = tmp_path / "s.sqlite3"
        original = make_random_store(seed, QuadStore.sqlite(path))
        expected = {
            query: rows_key(SPARQLEngine(original).select(query))
            for query in QUERY_SHAPES
        }
        original.close()
        reopened = QuadStore.sqlite(path)
        for query, rows in expected.items():
            assert rows_key(SPARQLEngine(reopened).select(query)) == rows
        reopened.close()

    def test_explain_stable_across_executors(self):
        store = make_random_store(3)
        query = QUERY_SHAPES[0]
        plan = SPARQLEngine(store).explain(query)
        assert plan == SPARQLEngine(store, batched=False).explain(query)
        assert plan == SPARQLEngine(store, vectorized=False).explain(query)


class TestDictionaryAwareDistinct:
    """DISTINCT deduplicates on id tuples and decodes only the survivors."""

    DISTINCT_QUERY = f"SELECT DISTINCT ?a ?c WHERE {{ ?a <{EX}p0> ?b . ?b <{EX}p1> ?c . }}"

    @pytest.mark.parametrize("seed", [3, 11, 42])
    def test_distinct_parity_with_tuple_executor(self, seed):
        store = make_random_store(seed)
        batched = SPARQLEngine(store).select(self.DISTINCT_QUERY)
        tuple_rows = SPARQLEngine(store, batched=False).select(self.DISTINCT_QUERY)
        assert rows_key(batched) == rows_key(tuple_rows)
        # DISTINCT really deduplicated (the join fans out duplicates).
        plain = SPARQLEngine(store).select(self.DISTINCT_QUERY.replace("DISTINCT ", ""))
        assert len(batched) <= len(plain)
        assert len(set(map(str, batched.rows))) == len(batched)

    def test_id_distinct_value_equal_rows_still_collapse(self):
        """Two interned terms projecting to the same Python value collapse.

        ``Literal(5)`` and ``Literal("5")`` hold different dictionary ids
        but both project to ``str(...) == "5"`` under the seed executor's
        value keying — the id-space dedup alone would keep both, so the
        value-level guard must collapse them exactly like the tuple path.
        """
        store = QuadStore()
        a, b1, b2 = _uri("a"), _uri("b1"), _uri("b2")
        store.add(a, _uri("p0"), b1)
        store.add(a, _uri("p0"), b2)
        store.add(b1, _uri("p1"), Literal(5))
        store.add(b2, _uri("p1"), Literal("5"))
        batched = SPARQLEngine(store).select(self.DISTINCT_QUERY)
        tuple_rows = SPARQLEngine(store, batched=False).select(self.DISTINCT_QUERY)
        seed_rows = SPARQLEngine(store, optimize=False).select(self.DISTINCT_QUERY)
        assert rows_key(batched) == rows_key(tuple_rows) == rows_key(seed_rows)
        assert len(batched) == 1

    @pytest.mark.parametrize("seed", [7])
    def test_distinct_with_offset_and_limit(self, seed):
        store = make_random_store(seed)
        query = self.DISTINCT_QUERY + " OFFSET 2 LIMIT 3"
        full = SPARQLEngine(store, batched=False).select(self.DISTINCT_QUERY)
        windowed = SPARQLEngine(store).select(query)
        assert len(windowed) == min(3, max(0, len(full) - 2))
        # The window is a slice of the distinct rows, not of the raw rows.
        window_keys = rows_key(windowed)
        assert all(key in rows_key(full) for key in window_keys)


class TestTermDictionary:
    def test_encode_decode_round_trip(self):
        dictionary = TermDictionary()
        terms = [_uri("a"), Literal("x"), Literal(5), _uri("b")]
        ids = [dictionary.encode(term) for term in terms]
        assert len(set(ids)) == len(ids)
        for term, term_id in zip(terms, ids):
            assert dictionary.decode(term_id) == term
            assert dictionary.lookup(term) == term_id
        assert dictionary.encode(terms[0]) == ids[0]  # interning is stable
        assert dictionary.lookup(_uri("missing")) is None

    def test_quoted_triples_are_first_class(self):
        dictionary = TermDictionary()
        quoted = QuotedTriple(_uri("a"), _uri("p"), Literal(1))
        quoted_id = dictionary.encode(quoted)
        parts = dictionary.quoted_parts(quoted_id)
        assert parts == (
            dictionary.lookup(_uri("a")),
            dictionary.lookup(_uri("p")),
            dictionary.lookup(Literal(1)),
        )
        assert dictionary.quoted_id(parts) == quoted_id
        assert dictionary.lookup(QuotedTriple(_uri("a"), _uri("p"), Literal(1))) == quoted_id
        assert dictionary.quoted_parts(dictionary.encode(_uri("a"))) is None

    def test_ids_round_trip_through_sqlite(self, tmp_path):
        path = tmp_path / "store.sqlite3"
        store = QuadStore.sqlite(path)
        terms = [_uri("a"), _uri("p"), Literal("hello\nworld"), Literal(2.5)]
        store.add(terms[0], terms[1], terms[2])
        store.add(terms[0], terms[1], terms[3])
        store.annotate(terms[0], terms[1], terms[3], _uri("score"), Literal(0.9))
        recorded = {str(term): store.dictionary.lookup(term) for term in terms}
        quoted = QuotedTriple(terms[0], terms[1], terms[3])
        recorded_quoted = store.dictionary.lookup(quoted)
        store.close()

        reopened = QuadStore.sqlite(path)
        for term in terms:
            assert reopened.dictionary.lookup(term) == recorded[str(term)]
            assert reopened.dictionary.decode(recorded[str(term)]) == term
        assert reopened.dictionary.lookup(quoted) == recorded_quoted
        assert reopened.dictionary.quoted_parts(recorded_quoted) == (
            recorded[str(terms[0])],
            recorded[str(terms[1])],
            recorded[str(terms[3])],
        )
        reopened.close()

    def test_value_equal_terms_share_one_id(self):
        """Dict-key equality semantics: URIRef("x") and "x" alias (as the
        seed's triple sets did), Literal("5") and "5" stay distinct."""
        dictionary = TermDictionary()
        assert dictionary.encode(_uri("x")) == dictionary.encode(str(_uri("x")))
        assert dictionary.encode(Literal("5")) != dictionary.encode("5")


class TestShardEviction:
    def _populated(self, path, cap):
        store = QuadStore(backend=SqliteBackend(path, max_resident_graphs=cap))
        for g in range(5):
            for i in range(4):
                store.add(_uri(f"s{i}"), _uri("p"), Literal(i), graph=_uri(f"g{g}"))
        return store

    def test_resident_set_is_capped(self, tmp_path):
        store = self._populated(tmp_path / "e.sqlite3", cap=2)
        backend = store.backend
        assert isinstance(backend, SqliteBackend)
        assert len(backend._indexes) <= 2
        assert backend.shard_evictions >= 3
        # Every graph still answers correctly after eviction + reload.
        for g in range(5):
            assert store.num_triples(_uri(f"g{g}")) == 4
            assert len(list(store.triples(graph=_uri(f"g{g}")))) == 4
        assert len(backend._indexes) <= 2
        store.close()

    def test_write_through_before_eviction(self, tmp_path):
        """Buffered writes of a shard must be durable before it is evicted."""
        path = tmp_path / "e.sqlite3"
        store = self._populated(path, cap=1)
        store.close()
        reopened = QuadStore.sqlite(path)
        assert reopened.num_triples() == 20
        for g in range(5):
            assert sorted(
                str(t.object) for t in reopened.triples(graph=_uri(f"g{g}"))
            ) == sorted(str(Literal(i)) for i in range(4))
        reopened.close()

    def test_eviction_counters_exposed(self, tmp_path):
        store = self._populated(tmp_path / "e.sqlite3", cap=2)
        backend = store.backend
        loads_before = backend.shard_loads
        evictions_before = backend.shard_evictions
        # Touching an evicted graph reloads it (and evicts another).
        victims = [g for g in store.graphs() if g not in backend._indexes]
        assert victims
        list(store.triples(graph=victims[0]))
        assert backend.shard_loads == loads_before + 1
        assert backend.shard_evictions == evictions_before + 1
        store.close()

    def test_graph_version_monotonic_across_eviction(self, tmp_path):
        """Version-keyed reader caches must never see a reload as 'no change'."""
        store = self._populated(tmp_path / "e.sqlite3", cap=1)
        graph = _uri("g0")
        version_before = store.graph_version(graph)  # forces a reload
        # Touch the other graphs so g0 is evicted again.
        for g in range(1, 5):
            store.num_triples(_uri(f"g{g}"))
            list(store.triples(graph=_uri(f"g{g}")))
        store.add(_uri("sX"), _uri("p"), Literal(99), graph=graph)
        assert store.graph_version(graph) > version_before
        store.close()

    def test_version_advances_for_unloaded_predicate_delete(self, tmp_path):
        """A predicate delete on an evicted shard must advance the version
        floor: shrinking by N and reloading would otherwise land exactly on
        the pre-eviction counter and keep version-keyed caches stale."""
        store = self._populated(tmp_path / "e.sqlite3", cap=1)
        graph = _uri("g0")
        observed = store.graph_version(graph)  # loads g0
        list(store.triples(graph=_uri("g4")))  # evicts g0
        backend = store.backend
        assert graph not in backend._indexes
        assert store.remove_predicate(_uri("p"), graph=graph) == 4
        assert graph not in backend._indexes  # retracted in sqlite directly
        assert store.graph_version(graph) > observed
        assert store.num_triples(graph) == 0
        store.close()

    def test_cap_of_one_still_functions(self, tmp_path):
        store = self._populated(tmp_path / "e.sqlite3", cap=1)
        backend = store.backend
        assert len(backend._indexes) <= 1
        engine = SPARQLEngine(store)
        result = engine.select(f"SELECT ?s ?o WHERE {{ ?s <{EX}p> ?o . }}")
        assert len(result) == 20
        store.close()

    def test_invalid_cap_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            SqliteBackend(tmp_path / "bad.sqlite3", max_resident_graphs=0)

    def test_query_pins_residency_loading_each_shard_once(self, tmp_path):
        """A cross-graph query on a capped store must load each missing
        shard at most once (the engine pins residency for the evaluation),
        and the cap must re-apply once the query finishes."""
        path = tmp_path / "pin.sqlite3"
        store = self._populated(path, cap=None)
        store.close()
        capped = QuadStore.sqlite(path, max_resident_graphs=2)
        backend = capped.backend
        engine = SPARQLEngine(capped)
        query = f"SELECT ?s ?o WHERE {{ ?s <{EX}p> ?o . ?s <{EX}p> ?o . }}"
        # 4 distinct (s, o) pairs replicated in all 5 graphs: the first
        # pattern binds 20 rows, the self-join matches each in 5 graphs.
        assert len(engine.select(query)) == 100
        first_loads = backend.shard_loads
        assert first_loads == 5  # one load per shard, despite cap < graphs
        assert len(backend._indexes) <= 2  # cap re-applied after the query
        assert len(engine.select(query)) == 100
        assert backend.shard_loads - first_loads <= 5
        capped.close()


class TestBoundedMemo:
    def test_lru_eviction_and_counters(self):
        memo = BoundedMemo(capacity=2)
        missing = memo.MISSING
        assert memo.get("a") is missing
        memo.put("a", 1)
        memo.put("b", 2)
        assert memo.get("a") == 1  # refreshes "a"; "b" is now LRU
        memo.put("c", 3)  # evicts "b"
        assert memo.get("b") is missing
        assert memo.get("a") == 1
        assert memo.get("c") == 3
        counters = memo.counters()
        assert counters["evictions"] == 1
        assert counters["hits"] == 3
        assert counters["misses"] == 2
        assert len(memo) == 2

    def test_unbounded_memo_keeps_counters(self):
        memo = BoundedMemo(capacity=None)
        for position in range(100):
            memo.put(position, position)
        assert len(memo) == 100
        assert memo.counters()["evictions"] == 0

    def test_engine_exposes_memo_counters(self):
        store = make_random_store(3)
        engine = SPARQLEngine(store, memo_capacity=8)
        engine.select(QUERY_SHAPES[0])
        counters = engine.memo_counters()
        assert counters["misses"] > 0

    def test_tiny_capacity_does_not_change_results(self):
        store = make_random_store(11)
        roomy = SPARQLEngine(store)
        cramped = SPARQLEngine(store, memo_capacity=1)
        for query in QUERY_SHAPES:
            assert rows_key(cramped.select(query)) == rows_key(roomy.select(query))


class TestGroupKeyTyping:
    """GROUP BY keys on decoded typed values, not their string forms."""

    GROUP_QUERY = f"SELECT ?o (COUNT(?s) AS ?n) WHERE {{ ?s <{EX}p> ?o . }} GROUP BY ?o"

    def _store(self, *objects):
        store = QuadStore()
        for position, obj in enumerate(objects):
            store.add(_uri(f"s{position}"), _uri("p"), obj)
        return store

    def _engines(self, store):
        return [
            SPARQLEngine(store),
            SPARQLEngine(store, vectorized=False),
            SPARQLEngine(store, batched=False),
        ]

    def test_int_and_string_literals_group_separately(self):
        """Literal(5) and Literal("5") must not collide into one group (the
        old ``str()`` group key collapsed them)."""
        store = self._store(Literal(5), Literal("5"))
        for engine in self._engines(store):
            result = engine.select(self.GROUP_QUERY)
            assert len(result) == 2
            assert sorted(row["n"] for row in result.rows) == [1, 1]

    def test_equal_numeric_values_share_a_group(self):
        """5 and 5.0 are the same value under dict-key equality — one group."""
        store = self._store(Literal(5), Literal(5.0))
        for engine in self._engines(store):
            result = engine.select(self.GROUP_QUERY)
            assert len(result) == 1
            assert result.rows[0]["n"] == 2

    def test_nan_values_form_one_group(self):
        """NaN != NaN would split every NaN row into its own group; the
        shared NaN sentinel keeps them together in both collation paths."""
        store = self._store(Literal(float("nan")), Literal(float("nan")))
        for engine in self._engines(store):
            result = engine.select(self.GROUP_QUERY)
            assert len(result) == 1
            assert result.rows[0]["n"] == 2


class TestFilterPushdown:
    """Single-variable FILTERs run below the join with memoized verdicts."""

    FILTER_QUERY = (
        f"SELECT ?a ?c WHERE {{ ?a <{EX}p0> ?b . ?b <{EX}p1> ?c . FILTER(?c <= 4) }}"
    )

    def test_pushdown_parity_and_memo_counters(self):
        store = make_random_store(11)
        engine = SPARQLEngine(store)
        result = engine.select(self.FILTER_QUERY)
        baseline = SPARQLEngine(store, vectorized=False).select(self.FILTER_QUERY)
        assert rows_key(result) == rows_key(baseline)
        stats = engine.stats()
        assert stats["filter_memo"]["misses"] > 0
        # The group-end re-check of already-pushed rows is pure memo hits.
        assert stats["filter_memo"]["hits"] > 0
        assert engine.filter_memo_counters() == stats["filter_memo"]
        assert stats["pattern_memo"] == engine.memo_counters()

    def test_explain_annotates_pushdown(self):
        store = make_random_store(3)
        plan = SPARQLEngine(store).explain(self.FILTER_QUERY)
        assert "FilterClause [pushdown ?c]" in plan
        assert "pushdown" not in SPARQLEngine(store, vectorized=False).explain(
            self.FILTER_QUERY
        )

    def test_multi_variable_filters_are_not_pushed(self):
        query = f"SELECT ?a ?b WHERE {{ ?a <{EX}p1> ?b . FILTER(?a != ?b) }}"
        store = make_random_store(7)
        engine = SPARQLEngine(store)
        assert "pushdown" not in engine.explain(query)
        expected = SPARQLEngine(store, optimize=False).select(query)
        assert rows_key(engine.select(query)) == rows_key(expected)

    def test_counters_reset_per_snapshot_not_per_query(self):
        store = make_random_store(11)
        engine = SPARQLEngine(store)
        engine.select(self.FILTER_QUERY)
        first = engine.filter_memo_counters()["misses"]
        engine.select(self.FILTER_QUERY)
        assert engine.filter_memo_counters()["misses"] >= first


class TestConcatFastPath:
    """UNION concat pads aligned-prefix layouts without per-cell re-picks."""

    def test_aligned_prefix_padding(self):
        base = Relation(("a", "b"), [(1, 2), (3, 4)])
        grown = Relation(("a", "b", "c"), [(5, 6, 7)])
        merged = Relation.concat([grown, base])
        assert merged.variables == ("a", "b", "c")
        assert merged.rows == [(5, 6, 7), (1, 2, UNBOUND), (3, 4, UNBOUND)]

    def test_misaligned_layouts_fall_back_to_slot_pick(self):
        left = Relation(("a", "b"), [(1, 2)])
        right = Relation(("b", "c"), [(8, 9)])
        merged = Relation.concat([left, right])
        assert merged.variables == ("a", "b", "c")
        assert merged.rows == [(1, 2, UNBOUND), (UNBOUND, 8, 9)]

    def test_empty_input(self):
        merged = Relation.concat([])
        assert merged.variables == ()
        assert merged.rows == []


class TestVectorizedCollation:
    """Ordered results match the tuple executor row-for-row, not just as sets."""

    ORDER_QUERY = f"""SELECT ?s ?n ?x WHERE {{
        ?s <{EX}name> ?n . OPTIONAL {{ ?s <{EX}p3> ?x . }}
    }} ORDER BY ?x DESC(?n)"""

    @pytest.mark.parametrize("seed", [3, 11])
    def test_order_by_rows_identical_across_executors(self, seed):
        store = make_random_store(seed)
        vectorized = SPARQLEngine(store).select(self.ORDER_QUERY)
        batched = SPARQLEngine(store, vectorized=False).select(self.ORDER_QUERY)
        tuple_rows = SPARQLEngine(store, batched=False).select(self.ORDER_QUERY)
        assert vectorized.rows == batched.rows == tuple_rows.rows

    def test_sort_ranks_respect_value_collisions(self):
        """Distinct ids with equal values must share a sort rank (5 vs 5.0),
        and numbers still sort ahead of strings."""
        store = QuadStore()
        objects = [Literal("5"), Literal(5), Literal(7), Literal(5.0), Literal("10")]
        for position, obj in enumerate(objects):
            store.add(_uri(f"s{position}"), _uri("p"), obj)
        query = f"SELECT ?s ?o WHERE {{ ?s <{EX}p> ?o . }} ORDER BY ?o ?s"
        vectorized = SPARQLEngine(store).select(query)
        tuple_rows = SPARQLEngine(store, batched=False).select(query)
        assert vectorized.rows == tuple_rows.rows
        assert [str(row["o"]) for row in vectorized.rows] == ["5", "5.0", "7", "10", "5"]

    def test_vectorized_distinct_preserves_first_seen_order(self):
        """Above the >64-row threshold the id-space dedup kicks in; it must
        keep first-occurrence order exactly like the value-level loop."""
        store = QuadStore()
        for position in range(100):
            store.add(_uri(f"s{position:03d}"), _uri("p"), Literal(position % 7))
        query = f"SELECT DISTINCT ?o WHERE {{ ?s <{EX}p> ?o . }}"
        vectorized = SPARQLEngine(store).select(query)
        batched = SPARQLEngine(store, vectorized=False).select(query)
        tuple_rows = SPARQLEngine(store, batched=False).select(query)
        assert vectorized.rows == batched.rows == tuple_rows.rows
        assert len(vectorized) == 7


class TestIdArrayScans:
    """The storage layer's columnar snapshots agree with the triple sets."""

    def _expected(self, store, predicate_id=None, graph=None):
        return sorted(
            triple
            for index in store.backend.indexes_for(graph)
            for triple in index.triples
            if predicate_id is None or triple[1] == predicate_id
        )

    def test_match_id_arrays_agrees_with_index_sets(self):
        store = make_random_store(5)
        p0 = store.dictionary.lookup(_uri("p0"))
        for predicate_id, graph in [
            (None, None),
            (p0, None),
            (None, _uri("g1")),
            (p0, _uri("g2")),
        ]:
            subjects, predicates, objects = store.match_id_arrays(
                None, predicate_id, None, graph=graph
            )
            got = sorted(zip(subjects.tolist(), predicates.tolist(), objects.tolist()))
            assert got == self._expected(store, predicate_id, graph)

    def test_bound_subject_and_object_masks(self):
        store = make_random_store(5)
        some_triple = next(iter(store.backend.indexes_for(None)[0].triples))
        subject_id, predicate_id, object_id = some_triple
        subjects, predicates, objects = store.match_id_arrays(
            subject_id, predicate_id, object_id
        )
        assert len(subjects) >= 1
        assert set(zip(subjects.tolist(), predicates.tolist(), objects.tolist())) == {
            triple
            for index in store.backend.indexes_for(None)
            for triple in index.triples
            if triple == some_triple
        }

    def test_columnar_snapshot_tracks_graph_version(self):
        store = QuadStore()
        store.add(_uri("a"), _uri("p"), _uri("b"))
        index = store.backend.indexes_for(None)[0]
        first = index.columnar()
        assert index.columnar() is first  # cached while the version holds
        store.add(_uri("a"), _uri("p"), _uri("c"))
        second = index.columnar()
        assert second is not first
        assert len(second.subjects) == len(index.triples)

    def test_empty_store_yields_empty_arrays(self):
        store = QuadStore()
        subjects, predicates, objects = store.match_id_arrays()
        assert len(subjects) == len(predicates) == len(objects) == 0
