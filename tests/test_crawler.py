"""The lake crawler: continuous ingestion that survives a misbehaving lake.

Pins the robustness contracts of the crawler subsystem:

* the primitives — token bucket, jittered capped backoff, circuit breaker
  state machine — behave deterministically under an injected clock;
* ``DirectorySource`` discovers the same layout ``DataLake.from_directory``
  loads, and speaks the failure taxonomy (source-level vs table-level);
* ``ChaosSource`` injects every fault kind, scripted or rate-driven;
* the ``LakeCrawler`` daemon discovers new / changed / deleted tables,
  prioritizes changed-then-small, skips unchanged files on a pure stat
  basis, isolates poison tables through the service quarantine ledger,
  trips and recovers per-source circuit breakers, and survives the full
  chaos matrix — converging to a graph byte-identical to a clean one-shot
  govern of the same end-state lake;
* lifecycle: pause / resume / drain / close never leak in-flight work.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.crawler import (
    Backoff,
    ChaosConfig,
    ChaosSource,
    CircuitBreaker,
    DirectorySource,
    LakeCrawler,
    TableRef,
    TokenBucket,
)
from repro.crawler.chaos import LOAD_FAULTS
from repro.interfaces import LiDSClient
from repro.kg import GovernorService, KGGovernor
from repro.kg.errors import SourceUnavailableError, TableReadError, TransientError
from repro.rdf.serialize import serialize_nquads
from repro.tabular import DataLake, Table, write_csv


# --------------------------------------------------------------------- helpers
class FakeClock:
    """A manually-advanced monotonic clock for timing-sensitive tests."""

    def __init__(self):
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_table(name: str, salt: int = 0, rows: int = 4) -> Table:
    return Table.from_dict(
        name,
        {
            "amount": [float(10 * salt + i) for i in range(rows)],
            "quantity": [salt + i for i in range(rows)],
            "region": ["north", "south", "east", "west"][:rows],
        },
    )


def write_lake(root: Path, datasets=("sales", "hr"), tables_per=2, salt=0) -> None:
    for dataset in datasets:
        directory = root / dataset
        directory.mkdir(parents=True, exist_ok=True)
        for index in range(tables_per):
            write_csv(make_table(f"t{index}", salt=salt + index), directory / f"t{index}.csv")


def clean_graph_of(root: Path) -> str:
    """The graph a clean one-shot govern of the directory's state produces."""
    governor = KGGovernor()
    governor.add_data_lake(DataLake.from_directory(root))
    try:
        return serialize_nquads(governor.storage.graph)
    finally:
        governor.close()


def crawl_until_idle(crawler: LakeCrawler, max_passes: int = 60, sleep: float = 0.01) -> bool:
    for _ in range(max_passes):
        crawler.scan_once()
        if crawler.stats()["idle"]:
            return True
        time.sleep(sleep)
    return False


def make_crawler(service: GovernorService, source, **overrides) -> LakeCrawler:
    """A crawler with test-friendly (fast) robustness knobs."""
    options = dict(
        scan_interval=0.02,
        load_timeout=2.0,
        scan_timeout=2.0,
        max_load_retries=2,
        backoff_base=0.005,
        backoff_cap=0.02,
        backoff_seed=0,
        breaker_threshold=3,
        breaker_reset=0.05,
        poison_after=3,
        ingest_timeout=60.0,
    )
    options.update(overrides)
    return LakeCrawler(service, [source], **options)


# ------------------------------------------------------------------ primitives
class TestTokenBucket:
    def test_disabled_bucket_always_grants(self):
        bucket = TokenBucket(None)
        assert all(bucket.try_acquire() for _ in range(1000))
        assert bucket.wait_time() == 0.0

    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, capacity=2.0, clock=clock)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()  # burst exhausted
        assert bucket.wait_time() == pytest.approx(0.1, abs=0.02)
        clock.advance(0.1)  # one token refills
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_tokens_cap_at_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, capacity=3.0, clock=clock)
        clock.advance(1000.0)
        grants = sum(1 for _ in range(10) if bucket.try_acquire())
        assert grants == 3

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)


class TestBackoff:
    def test_exponential_capped_and_jittered(self):
        backoff = Backoff(base=0.1, cap=0.5, jitter=0.25, seed=7)
        delays = [backoff.delay(attempt) for attempt in (1, 2, 3, 4, 5)]
        raw = [0.1, 0.2, 0.4, 0.5, 0.5]
        for observed, expected in zip(delays, raw):
            assert expected * 0.75 <= observed <= expected * 1.25

    def test_seeded_backoff_reproducible(self):
        a = [Backoff(seed=3).delay(n) for n in (1, 2, 3)]
        b = [Backoff(seed=3).delay(n) for n in (1, 2, 3)]
        assert a == b

    def test_no_jitter_is_exact(self):
        backoff = Backoff(base=0.1, cap=10.0, jitter=0.0)
        assert backoff.delay(3) == pytest.approx(0.4)


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=5.0, clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_grants_single_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.state == "half_open"
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # only one probe
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_failed_probe_reopens_for_full_timeout(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()  # probe failed
        assert breaker.state == "open" and not breaker.allow()
        assert breaker.trips == 2
        clock.advance(4.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()


# ------------------------------------------------------------ directory source
class TestDirectorySource:
    def test_scan_matches_from_directory_layout(self, tmp_path):
        root = tmp_path / "lake"
        write_lake(root)
        write_csv(make_table("loose"), root / "loose.csv")
        refs = DirectorySource(root).scan()
        keys = {ref.key for ref in refs}
        lake = DataLake.from_directory(root)
        assert keys == {(t.dataset, t.name) for t in lake.tables()}
        assert all(ref.size > 0 and ref.mtime_ns > 0 for ref in refs)

    def test_unlistable_root_is_source_unavailable(self, tmp_path):
        with pytest.raises(SourceUnavailableError):
            DirectorySource(tmp_path / "absent").scan()

    def test_load_round_trips_table(self, tmp_path):
        root = tmp_path / "lake"
        write_lake(root, datasets=("sales",), tables_per=1)
        source = DirectorySource(root)
        ref = source.scan()[0]
        table = source.load(ref)
        assert table.name == "t0" and table.dataset == "sales"
        assert table.num_rows == 4

    def test_load_of_vanished_file_raises_file_not_found(self, tmp_path):
        root = tmp_path / "lake"
        write_lake(root, datasets=("sales",), tables_per=1)
        source = DirectorySource(root)
        ref = source.scan()[0]
        ref.path.unlink()
        with pytest.raises(FileNotFoundError):
            source.load(ref)

    def test_load_of_malformed_file_is_table_read_error(self, tmp_path):
        root = tmp_path / "lake"
        (root / "sales").mkdir(parents=True)
        (root / "sales" / "bad.json").write_text('{"not": "a list"}')
        source = DirectorySource(root)
        ref = source.scan()[0]
        with pytest.raises(TableReadError) as excinfo:
            source.load(ref)
        assert "bad.json" in str(excinfo.value)

    def test_scan_skips_files_that_fail_stat(self, tmp_path, monkeypatch):
        root = tmp_path / "lake"
        write_lake(root, datasets=("sales",), tables_per=2)
        import repro.crawler.sources as sources_module

        real_stat = sources_module.os.stat
        victim = str(root / "sales" / "t0.csv")

        def flaky_stat(path, *args, **kwargs):
            if str(path) == victim:
                raise FileNotFoundError(victim)
            return real_stat(path, *args, **kwargs)

        monkeypatch.setattr(sources_module.os, "stat", flaky_stat)
        refs = DirectorySource(root).scan()
        assert {ref.name for ref in refs} == {"t1"}


# ------------------------------------------------------------------ chaos source
class TestChaosSource:
    def test_injected_faults_fire_in_order(self, tmp_path):
        root = tmp_path / "lake"
        write_lake(root, datasets=("sales",), tables_per=1)
        chaos = ChaosSource(DirectorySource(root))
        ref = chaos.scan()[0]
        chaos.inject("truncate", "permission", "delete")
        with pytest.raises(TableReadError):
            chaos.load(ref)
        with pytest.raises(TableReadError) as excinfo:
            chaos.load(ref)
        assert isinstance(excinfo.value.__cause__, PermissionError)
        with pytest.raises(FileNotFoundError):
            chaos.load(ref)
        assert chaos.load(ref).name == "t0"  # injections consumed
        assert chaos.stats.fired == {"truncate": 1, "permission": 1, "delete": 1}

    def test_flap_hits_scan_and_load(self, tmp_path):
        root = tmp_path / "lake"
        write_lake(root, datasets=("sales",), tables_per=1)
        chaos = ChaosSource(DirectorySource(root))
        ref = DirectorySource(root).scan()[0]
        chaos.inject("flap", "flap")
        with pytest.raises(SourceUnavailableError):
            chaos.scan()
        with pytest.raises(SourceUnavailableError):
            chaos.load(ref)

    def test_slow_fault_stalls_then_succeeds(self, tmp_path):
        root = tmp_path / "lake"
        write_lake(root, datasets=("sales",), tables_per=1)
        chaos = ChaosSource(
            DirectorySource(root), ChaosConfig(slow_seconds=0.05)
        )
        chaos.inject("slow")
        ref = chaos.scan()[0]
        started = time.perf_counter()
        table = chaos.load(ref)
        assert time.perf_counter() - started >= 0.05
        assert table.name == "t0"

    def test_rates_are_deterministic_under_seed(self, tmp_path):
        root = tmp_path / "lake"
        write_lake(root, datasets=("sales",), tables_per=1)

        def outcomes(seed):
            chaos = ChaosSource(
                DirectorySource(root),
                ChaosConfig(truncate_rate=0.5, seed=seed),
            )
            ref = DirectorySource(root).scan()[0]
            results = []
            for _ in range(12):
                try:
                    chaos.load(ref)
                    results.append("ok")
                except TableReadError:
                    results.append("fault")
            return results

        assert outcomes(3) == outcomes(3)
        assert "fault" in outcomes(3) and "ok" in outcomes(3)

    def test_calm_stops_all_faults(self, tmp_path):
        root = tmp_path / "lake"
        write_lake(root, datasets=("sales",), tables_per=1)
        chaos = ChaosSource(
            DirectorySource(root), ChaosConfig(truncate_rate=1.0, seed=0)
        )
        ref = DirectorySource(root).scan()[0]
        with pytest.raises(TableReadError):
            chaos.load(ref)
        chaos.inject("permission")
        chaos.calm()
        assert chaos.load(ref).name == "t0"

    def test_unknown_fault_rejected(self, tmp_path):
        chaos = ChaosSource(DirectorySource(tmp_path))
        with pytest.raises(ValueError):
            chaos.inject("meteor")


# ----------------------------------------------------------------- crawler core
class TestLakeCrawler:
    def test_initial_crawl_matches_one_shot_govern(self, tmp_path):
        root = tmp_path / "lake"
        write_lake(root)
        service = GovernorService()
        crawler = make_crawler(service, DirectorySource(root))
        assert crawl_until_idle(crawler)
        crawled = serialize_nquads(service.governor.storage.graph)
        crawler.close()
        service.close()
        assert crawled == clean_graph_of(root)
        service.governor.close()

    def test_new_changed_deleted_converge(self, tmp_path):
        root = tmp_path / "lake"
        write_lake(root)
        service = GovernorService()
        crawler = make_crawler(service, DirectorySource(root))
        assert crawl_until_idle(crawler)
        # new table, changed table, deleted table — one event of each kind.
        write_csv(make_table("t9", salt=9), root / "sales" / "t9.csv")
        write_csv(make_table("t0", salt=77), root / "hr" / "t0.csv")
        (root / "sales" / "t1.csv").unlink()
        assert crawl_until_idle(crawler)
        totals = crawler.stats()["totals"]
        assert totals["refreshed"] >= 1
        assert totals["retracted"] >= 1
        crawled = serialize_nquads(service.governor.storage.graph)
        crawler.close()
        service.close()
        assert crawled == clean_graph_of(root)
        service.governor.close()

    def test_unchanged_files_skipped_on_stat_alone(self, tmp_path):
        root = tmp_path / "lake"
        write_lake(root)
        service = GovernorService()
        crawler = make_crawler(service, DirectorySource(root))
        assert crawl_until_idle(crawler)
        loads_after_first = crawler.stats()["totals"]["loads"]
        for _ in range(3):
            crawler.scan_once()
        assert crawler.stats()["totals"]["loads"] == loads_after_first
        crawler.close()
        service.close()
        service.governor.close()

    def test_changed_tables_load_before_new_small_before_large(self, tmp_path):
        root = tmp_path / "lake"
        write_lake(root, datasets=("sales",), tables_per=2)
        service = GovernorService()
        order = []

        class RecordingSource(DirectorySource):
            def load(self, ref):
                order.append(ref.name)
                return super().load(ref)

        crawler = make_crawler(service, RecordingSource(root))
        assert crawl_until_idle(crawler)
        order.clear()
        # t1 becomes *changed*; two new tables arrive: big (many rows) and
        # tiny.  Expected load order: changed first, then new small→large.
        write_csv(make_table("t1", salt=50), root / "sales" / "t1.csv")
        write_csv(make_table("zz_big", salt=1, rows=4), root / "sales" / "zz_big.csv")
        write_csv(
            Table.from_dict("aa_tiny", {"amount": [1.0]}), root / "sales" / "aa_tiny.csv"
        )
        crawler.scan_once()
        assert order[0] == "t1"
        assert order[1:] == ["aa_tiny", "zz_big"]
        crawler.close()
        service.close()
        service.governor.close()

    def test_poison_table_is_isolated_and_quarantined(self, tmp_path):
        root = tmp_path / "lake"
        write_lake(root, datasets=("sales",), tables_per=2)
        (root / "sales" / "poison.json").write_text('{"never": "a list"}')
        service = GovernorService()
        crawler = make_crawler(service, DirectorySource(root), poison_after=2)
        for _ in range(4):
            crawler.scan_once()
        stats = crawler.stats()
        # The scan loop kept moving: the healthy tables are governed...
        assert stats["totals"]["submitted"] == 2
        # ...and the repeat offender landed in the service ledger with its
        # reason, visible through the client surface too.
        key = ("table", "sales", "poison")
        assert key in service.quarantine_reasons
        assert isinstance(service.quarantine_reasons[key], TableReadError)
        client = LiDSClient(service)
        assert key in client.quarantine_reasons
        assert stats["totals"]["quarantined"] >= 1
        # Quarantined keys are skipped without loads, and the pass is idle.
        loads = crawler.stats()["totals"]["loads"]
        crawler.scan_once()
        assert crawler.stats()["totals"]["loads"] == loads
        assert crawler.stats()["idle"]
        # Fixing the file + lifting the quarantine governs it.
        (root / "sales" / "poison.json").write_text(
            '[{"amount": 1.5, "region": "north"}, {"amount": 2.5, "region": "south"}]'
        )
        client.clear_quarantine(key)
        assert crawl_until_idle(crawler)
        crawled = serialize_nquads(service.governor.storage.graph)
        crawler.close()
        service.close()
        assert crawled == clean_graph_of(root)
        service.governor.close()

    def test_breaker_trips_on_flapping_source_and_recovers(self, tmp_path):
        root = tmp_path / "lake"
        write_lake(root, datasets=("sales",), tables_per=2)
        chaos = ChaosSource(DirectorySource(root))
        service = GovernorService()
        crawler = make_crawler(
            service, chaos, breaker_threshold=2, breaker_reset=0.05
        )
        chaos.inject("flap", "flap", "flap", "flap")
        crawler.scan_once()
        crawler.scan_once()
        stats = crawler.stats()["sources"]["lake"]
        assert stats["breaker"] == "open"
        assert stats["breaker_trips"] == 1
        assert stats["scan_failures"] == 2
        # Open breaker: scans are skipped, not attempted.
        crawler.scan_once()
        assert crawler.stats()["sources"]["lake"]["skipped_scans"] >= 1
        # After the reset timeout the half-open probe (two injections left)
        # fails and re-opens; once the injections run out the next probe
        # closes the breaker and the crawl completes.
        assert crawl_until_idle(crawler, max_passes=80, sleep=0.02)
        final = crawler.stats()["sources"]["lake"]
        assert final["breaker"] == "closed"
        assert final["breaker_trips"] >= 2
        crawled = serialize_nquads(service.governor.storage.graph)
        crawler.close()
        service.close()
        assert crawled == clean_graph_of(root)
        service.governor.close()

    def test_hung_read_times_out_retries_then_succeeds(self, tmp_path):
        root = tmp_path / "lake"
        write_lake(root, datasets=("sales",), tables_per=1)
        chaos = ChaosSource(
            DirectorySource(root), ChaosConfig(slow_seconds=0.5)
        )
        chaos.inject("slow")  # one hung read, then clean
        service = GovernorService()
        crawler = make_crawler(service, chaos, load_timeout=0.05)
        assert crawl_until_idle(crawler)
        stats = crawler.stats()["totals"]
        assert stats["retries"] >= 1
        crawled = serialize_nquads(service.governor.storage.graph)
        crawler.close()
        service.close()
        assert crawled == clean_graph_of(root)
        service.governor.close()

    def test_rate_limit_paces_loads(self, tmp_path):
        root = tmp_path / "lake"
        write_lake(root, datasets=("sales",), tables_per=3)
        service = GovernorService()
        crawler = make_crawler(
            service, DirectorySource(root), rate_limit=40.0, burst=1.0
        )
        started = time.perf_counter()
        crawler.scan_once()
        elapsed = time.perf_counter() - started
        # 3 loads through a 40/s bucket with burst 1 → >= ~2 refill waits.
        assert elapsed >= 0.04
        crawler.close()
        service.close()
        service.governor.close()

    def test_stats_shape(self, tmp_path):
        root = tmp_path / "lake"
        write_lake(root, datasets=("sales",), tables_per=1)
        service = GovernorService()
        crawler = make_crawler(service, DirectorySource(root))
        crawler.scan_once()
        stats = crawler.stats()
        assert stats["passes"] == 1
        assert stats["running"] is False
        entry = stats["sources"]["lake"]
        for counter in ("scans", "loads", "submitted", "breaker", "lag", "last_scan_seconds"):
            assert counter in entry
        assert entry["governed_tables"] == 1
        assert stats["totals"]["submitted"] == 1
        crawler.close()
        service.close()
        service.governor.close()


# ------------------------------------------------------------------- lifecycle
class TestCrawlerLifecycle:
    def test_daemon_crawls_and_pause_resume(self, tmp_path):
        root = tmp_path / "lake"
        write_lake(root, datasets=("sales",), tables_per=2)
        service = GovernorService()
        crawler = make_crawler(service, DirectorySource(root))
        crawler.start()
        assert crawler.running
        assert crawler.wait_until_idle(timeout=30.0)
        crawler.pause()
        passes_when_paused = crawler.stats()["passes"]
        write_csv(make_table("late", salt=4), root / "sales" / "late.csv")
        time.sleep(0.15)
        # Paused: at most the in-flight pass completed; the new table waits.
        assert crawler.stats()["passes"] <= passes_when_paused + 1
        crawler.resume()
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if ("sales", "late") in crawler._sources[0].governed:
                break
            time.sleep(0.02)
        crawler.drain()
        crawled = serialize_nquads(service.governor.storage.graph)
        crawler.close()
        service.close()
        assert crawled == clean_graph_of(root)
        service.governor.close()

    def test_close_is_idempotent_and_blocks_reuse(self, tmp_path):
        root = tmp_path / "lake"
        write_lake(root, datasets=("sales",), tables_per=1)
        service = GovernorService()
        crawler = make_crawler(service, DirectorySource(root))
        crawler.start()
        crawler.close()
        crawler.close()
        assert not crawler.running and crawler.closed
        from repro.kg.errors import GovernanceError

        with pytest.raises(GovernanceError):
            crawler.scan_once()
        with pytest.raises(GovernanceError):
            crawler.start()
        service.close()
        service.governor.close()

    def test_context_manager_form(self, tmp_path):
        root = tmp_path / "lake"
        write_lake(root, datasets=("sales",), tables_per=1)
        with GovernorService() as service:
            with make_crawler(service, DirectorySource(root)) as crawler:
                assert crawler.wait_until_idle(timeout=30.0)
            assert crawler.closed
        service.governor.close()

    def test_crawler_rejects_closed_service(self, tmp_path):
        service = GovernorService()
        service.close()
        from repro.kg.errors import GovernanceError

        with pytest.raises(GovernanceError):
            make_crawler(service, DirectorySource(tmp_path))
        service.governor.close()

    def test_client_crawl_convenience(self, tmp_path):
        root = tmp_path / "lake"
        write_lake(root, datasets=("sales",), tables_per=2)
        service = GovernorService()
        client = LiDSClient(service)
        crawler = client.crawl(root, scan_interval=0.02)
        try:
            assert crawler.running
            assert crawler.wait_until_idle(timeout=30.0)
            result = client.search_keywords(["t0"])
            assert result.num_rows >= 1
        finally:
            crawler.close()
            service.close()
            client.close()

    def test_client_crawl_requires_live_service(self, tmp_path):
        governor = KGGovernor()
        client = LiDSClient(governor)
        with pytest.raises(RuntimeError):
            client.crawl(tmp_path)
        client.close()


# ---------------------------------------------------------------- chaos matrix
class TestChaosMatrix:
    """Every fault kind × every table event: never dies, always converges."""

    @pytest.mark.parametrize("fault", LOAD_FAULTS)
    @pytest.mark.parametrize("event", ["new", "changed", "deleted"])
    def test_fault_by_event_converges_byte_identical(self, tmp_path, fault, event):
        root = tmp_path / "lake"
        write_lake(root, datasets=("sales",), tables_per=3)
        config = ChaosConfig.single(
            fault,
            rate=0.35,
            seed=hash((fault, event)) % 1000,
            slow_seconds=0.02,
        )
        chaos = ChaosSource(DirectorySource(root), config)
        service = GovernorService()
        crawler = make_crawler(
            service,
            chaos,
            load_timeout=0.2,
            breaker_threshold=3,
            breaker_reset=0.03,
            poison_after=10_000,  # chaos faults are transient: never poison
        )
        # Phase 1: initial crawl under chaos (bounded passes; chaos may
        # legitimately keep it busy — the invariant is it never *dies*).
        crawl_until_idle(crawler, max_passes=30)
        # Phase 2: the table event lands while chaos keeps firing.
        if event == "new":
            write_csv(make_table("arrival", salt=9), root / "sales" / "arrival.csv")
        elif event == "changed":
            write_csv(make_table("t0", salt=99), root / "sales" / "t0.csv")
        else:
            (root / "sales" / "t1.csv").unlink()
        crawl_until_idle(crawler, max_passes=30)
        # Phase 3: the lake calms down; the crawl must fully converge.
        chaos.calm()
        assert crawl_until_idle(crawler, max_passes=60), (
            f"crawler did not converge after {fault} × {event}"
        )
        crawled = serialize_nquads(service.governor.storage.graph)
        stats = crawler.stats()
        crawler.close()
        service.close()
        assert crawled == clean_graph_of(root), (
            f"graph diverged after {fault} × {event}; stats: {stats['totals']}"
        )
        assert service.quarantined == []
        service.governor.close()

    def test_sustained_mixed_chaos_with_drift_converges(self, tmp_path):
        """All faults at once while the lake drifts — the worst day on call."""
        root = tmp_path / "lake"
        write_lake(root, datasets=("sales", "hr"), tables_per=2)
        config = ChaosConfig(
            truncate_rate=0.1,
            permission_rate=0.1,
            malformed_rate=0.1,
            slow_rate=0.1,
            flap_rate=0.1,
            delete_rate=0.1,
            slow_seconds=0.02,
            seed=42,
        )
        chaos = ChaosSource(DirectorySource(root), config)
        service = GovernorService()
        crawler = make_crawler(
            service,
            chaos,
            load_timeout=0.2,
            breaker_threshold=4,
            breaker_reset=0.03,
            poison_after=10_000,
        )
        for round_index in range(3):
            write_csv(
                make_table(f"drift{round_index}", salt=round_index),
                root / "hr" / f"drift{round_index}.csv",
            )
            write_csv(make_table("t0", salt=70 + round_index), root / "sales" / "t0.csv")
            if round_index == 1:
                (root / "hr" / "t1.csv").unlink()
            crawl_until_idle(crawler, max_passes=15)
        chaos.calm()
        assert crawl_until_idle(crawler, max_passes=80)
        crawled = serialize_nquads(service.governor.storage.graph)
        crawler.close()
        service.close()
        assert crawled == clean_graph_of(root)
        service.governor.close()
