"""The serving tier: wire codec, writer server, replicas, remote client.

Pins the serving contracts:

* the protocol codec round-trips terms and tables byte-identically
  (``canonical_json`` equality is the currency of every identity check);
* a remote client's rows are byte-identical to the in-process client's,
  before and after the writer streams more tables;
* replica refresh pulls *deltas* (row ops) when the writer's op log can
  bridge, full dumps of only the changed graphs otherwise, and applies
  them atomically: concurrent readers never observe a torn snapshot;
* ``LiDSClient.reopen`` re-opens a shipped snapshot in place — same
  interned dictionary, only changed ``GraphIndex``es invalidated;
* ``RemoteLiDSClient`` retries with backoff through a flapping server and
  surfaces ``TransientError`` once the endpoint is genuinely down;
* staleness is reported in commit versions (client ``stats()``, service
  ``stats`` and the replica's ``replication_lag``).
"""

from __future__ import annotations

import shutil
import socket
import threading
import time

import numpy as np
import pytest

from repro.interfaces import LiDSClient
from repro.kg import GovernorService, KGGovernor
from repro.kg.errors import TransientError
from repro.kg.ontology import DATASET_GRAPH, ONTOLOGY_GRAPH
from repro.kg.storage import KGLiDSStorage
from repro.rdf import Literal, QuadStore, URIRef
from repro.serving import (
    LiDSServer,
    RemoteError,
    RemoteLiDSClient,
    Replica,
    ReplicaServer,
    canonical_json,
    compute_delta,
    decode_value,
    encode_value,
)
from repro.tabular import Column, DataLake, Table


def make_lake(num_tables: int, rows: int = 8, seed: int = 3, name: str = "svc") -> DataLake:
    lake = DataLake(name)
    rng = np.random.RandomState(seed)
    for index in range(num_tables):
        lake.add_table(
            f"ds{index % 2}",
            Table.from_dict(
                f"table_{index}",
                {
                    "amount": list(rng.normal(100, 5, rows)),
                    "quantity": list(rng.randint(1, 50, rows)),
                    "region": ["north", "south", "east", "west"] * (rows // 4),
                },
            ),
        )
    return lake


@pytest.fixture
def served_lake(tmp_path):
    """A governed sqlite writer behind a LiDSServer, plus its saved snapshot."""
    writer_dir = tmp_path / "writer"
    writer_dir.mkdir()
    graph = QuadStore.sqlite(writer_dir / "graph.sqlite3")
    governor = KGGovernor(storage=KGLiDSStorage(graph=graph))
    service = GovernorService(governor, max_batch_tables=8)
    service.submit_lake(make_lake(6)).result(timeout=120)
    service.drain()
    governor.save(writer_dir)
    client = LiDSClient(service)
    server = LiDSServer(client)
    yield {
        "dir": writer_dir,
        "service": service,
        "client": client,
        "server": server,
        "governor": governor,
    }
    server.close()
    service.close()
    governor.close()


def ship_snapshot(writer_dir, replica_dir):
    shutil.copytree(writer_dir, replica_dir)
    return replica_dir


# ---------------------------------------------------------------------- codec
def test_codec_round_trips_terms_and_tables():
    table = Table(
        "result",
        columns=[
            Column("uri", [URIRef("http://kglids.org/resource/x"), None]),
            Column("lit", [Literal(3.5), Literal("text")]),
            Column("plain", [1, "two"]),
        ],
        dataset="ds",
    )
    decoded = decode_value(encode_value(table))
    assert isinstance(decoded, Table)
    assert canonical_json(decoded) == canonical_json(table)
    # Terms survive with their exact spelling, not as plain strings.
    assert isinstance(decoded.columns[0].values[0], URIRef)
    assert isinstance(decoded.columns[1].values[0], Literal)
    nested = {"rows": [URIRef("a:b"), Literal(7)], "n": 4}
    assert canonical_json(decode_value(encode_value(nested))) == canonical_json(nested)


# ----------------------------------------------------------- remote identity
def test_remote_rows_byte_identical_and_stats(served_lake):
    client = served_lake["client"]
    remote = RemoteLiDSClient(served_lake["server"].address)
    try:
        for local_result, remote_result in [
            (
                client.get_unionable_tables("ds0", "table_0", k=5),
                remote.get_unionable_tables("ds0", "table_0", k=5),
            ),
            (
                client.query("SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 7"),
                remote.query("SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 7"),
            ),
            (client.statistics(), remote.statistics()),
        ]:
            assert canonical_json(local_result) == canonical_json(remote_result)
        payload = remote.server_stats()
        assert payload["role"] == "writer"
        assert payload["commit_version"] == client.commit_version
        assert payload["replication_lag"] == 0
        assert payload["service"]["commit_version"] == client.commit_version
        assert remote.commit_version == client.commit_version
        with pytest.raises(RemoteError):
            remote._remote("close")  # mutation-adjacent methods are not servable
    finally:
        remote.close()


# ------------------------------------------------------------------- replicas
def test_replica_bootstraps_then_pulls_deltas(served_lake, tmp_path):
    service = served_lake["service"]
    replica = Replica(
        served_lake["server"].address,
        ship_snapshot(served_lake["dir"], tmp_path / "replica"),
    )
    try:
        assert replica.commit_version == service.commit_version
        assert replica.replication_lag == 0
        # Stream more tables into the writer, then converge.
        service.submit_lake(make_lake(3, seed=11, name="extra")).result(timeout=120)
        service.drain()
        assert replica.sync() is True
        assert replica.commit_version == service.commit_version
        assert replica.replication_lag == 0
        # The writer's op log bridged the gap: row ops, no shard re-ships.
        assert replica.stats["delta_pulls"] >= 1
        assert replica.stats["full_pulls"] == 0
        local = LiDSClient(service).get_unionable_tables("ds0", "table_0", k=5)
        remote_rows = replica.client.get_unionable_tables("ds0", "table_0", k=5)
        assert canonical_json(local) == canonical_json(remote_rows)
    finally:
        replica.close()


def test_delta_ships_only_changed_graphs(tmp_path):
    store = QuadStore.sqlite(tmp_path / "g.sqlite3")
    graph_a, graph_b = URIRef("urn:graph:a"), URIRef("urn:graph:b")
    predicate = URIRef("urn:p")
    store.add(URIRef("urn:a1"), predicate, Literal(1), graph=graph_a)
    store.add(URIRef("urn:b1"), predicate, Literal(1), graph=graph_b)
    store.enable_delta_log(capacity=4)
    pinned_version = store.commit_version
    pinned_terms = store.dictionary.next_id
    store.add(URIRef("urn:a2"), predicate, Literal(2), graph=graph_a)

    payload = compute_delta(store, pinned_version, pinned_terms)
    assert payload["changed"] and not payload["full"]
    assert {op[1] for op in payload["ops"]} == {str(graph_a)}

    # Push the log past capacity: the fallback dumps changed shards only.
    for index in range(6):
        store.add(URIRef(f"urn:a{index + 10}"), predicate, Literal(index), graph=graph_a)
    payload = compute_delta(store, pinned_version, pinned_terms)
    assert payload["changed"] and payload["full"]
    assert set(payload["graphs"]) == {str(graph_a)}
    assert set(payload["all_graphs"]) == {str(graph_a), str(graph_b)}
    store.close()


def test_backend_shard_files_and_changed_since(tmp_path):
    store = QuadStore.sqlite(tmp_path / "g.sqlite3")
    graph_a, graph_b = URIRef("urn:graph:a"), URIRef("urn:graph:b")
    store.add(URIRef("urn:s"), URIRef("urn:p"), Literal(1), graph=graph_a)
    version = store.commit_version
    store.add(URIRef("urn:s"), URIRef("urn:p"), Literal(2), graph=graph_b)

    backend = store.backend
    files = backend.shard_files()
    assert set(files) == {str(graph_a), str(graph_b)}
    assert all(name.startswith("quads_") for name in files.values())
    assert len(set(files.values())) == 2
    # Only graph_b changed after ``version``; both changed since 0.
    assert store.graphs_changed_since(version) == [graph_b]
    assert set(store.graphs_changed_since(0)) == {graph_a, graph_b}
    versions = store.graph_change_versions()
    assert versions[graph_b] == store.commit_version
    assert versions[graph_a] <= version
    store.flush()
    store.close()

    # A fresh open has no in-memory marks: everything at-or-before the
    # durable version is "changed at baseline" — over-reported, never missed.
    reopened = QuadStore.sqlite(tmp_path / "g.sqlite3")
    assert reopened.graphs_changed_since(0) == [graph_a, graph_b]
    assert reopened.graphs_changed_since(reopened.commit_version) == []
    reopened.close()


def test_concurrent_replica_readers_never_see_torn_snapshots(served_lake, tmp_path):
    """Reads during refresh observe whole committed batches, old or new."""
    writer_store = served_lake["governor"].storage.graph
    replica = Replica(
        served_lake["server"].address,
        ship_snapshot(served_lake["dir"], tmp_path / "replica"),
    )
    marker_graph = URIRef("urn:serving:marker")
    predicate = URIRef("urn:serving:batch")
    rows_per_batch = 24
    stop = threading.Event()
    torn: list = []

    def write_batches():
        for batch in range(30):
            with writer_store.write_batch():
                writer_store.remove_graph(marker_graph)
                for row in range(rows_per_batch):
                    writer_store.add(
                        URIRef(f"urn:serving:row{row}"),
                        predicate,
                        Literal(batch),
                        graph=marker_graph,
                    )
        stop.set()

    def keep_syncing():
        while not stop.is_set():
            replica.sync()
        replica.sync()

    def read_loop():
        store = replica.store
        while not stop.is_set():
            with store.read_view():
                values = {
                    triple.object.to_python()
                    for triple in store.triples(None, predicate, None, graph=marker_graph)
                    if isinstance(triple.object, Literal)
                }
                count = store.num_triples(marker_graph)
            if len(values) > 1 or (values and count != rows_per_batch):
                torn.append((values, count))

    writer = threading.Thread(target=write_batches)
    syncer = threading.Thread(target=keep_syncing)
    readers = [threading.Thread(target=read_loop) for _ in range(3)]
    for thread in [writer, syncer, *readers]:
        thread.start()
    for thread in [writer, syncer, *readers]:
        thread.join(timeout=120)
    assert not torn, f"torn snapshots observed: {torn[:3]}"
    # After drain the replica converges to the writer's final version.
    replica.sync()
    assert replica.commit_version == writer_store.commit_version
    final = {
        triple.object.to_python()
        for triple in replica.store.triples(None, predicate, None, graph=marker_graph)
    }
    assert final == {29}
    replica.close()


def test_replica_server_lease_serves_fresh_reads(served_lake, tmp_path):
    service = served_lake["service"]
    replica = Replica(
        served_lake["server"].address,
        ship_snapshot(served_lake["dir"], tmp_path / "replica"),
    )
    replica_server = ReplicaServer(replica, lease=0.0)
    remote = RemoteLiDSClient(replica_server.address)
    try:
        service.submit_lake(make_lake(2, seed=5, name="late")).result(timeout=120)
        service.drain()
        writer_version = service.commit_version
        # lease=0: the very next request syncs first, so it must answer at
        # the writer's version without any explicit refresh call.
        payload = remote.server_stats()
        assert payload["role"] == "replica"
        assert payload["pinned_version"] == writer_version
        assert payload["replication_lag"] == 0
        assert payload["replication"]["syncs"] >= 1
        # Cross-store identity needs a deterministic ordering: two stores
        # may enumerate unordered matches differently.
        ordered = "SELECT ?s ?p ?o WHERE { ?s ?p ?o } ORDER BY ?s ?p ?o LIMIT 9"
        local = LiDSClient(service).query(ordered)
        assert canonical_json(remote.query(ordered)) == canonical_json(local)
    finally:
        remote.close()
        replica_server.close()


# ----------------------------------------------------------- lazy durability
def test_lazy_applies_defer_durability_until_checkpoint(served_lake, tmp_path):
    """durable_applies=False: serve lazily-applied rows, checkpoint later,
    and recover a crash image by replaying the delta from the conservative
    durable version."""
    service = served_lake["service"]
    replica_dir = ship_snapshot(served_lake["dir"], tmp_path / "replica")
    replica = Replica(
        served_lake["server"].address, replica_dir, durable_applies=False
    )
    try:
        backend = replica.store.backend
        durable_before = backend.committed_version()
        service.submit_lake(make_lake(3, seed=23, name="lazy")).result(timeout=120)
        service.drain()
        assert replica.sync() is True
        assert replica.commit_version == service.commit_version
        # The apply patched memory but deferred the durable stamp: the meta
        # marker still reads the last checkpoint (the shipped snapshot).
        assert backend.committed_version() == durable_before
        ordered = "SELECT ?s ?p ?o WHERE { ?s ?p ?o } ORDER BY ?s ?p ?o LIMIT 9"
        local = LiDSClient(service).query(ordered)
        assert canonical_json(replica.client.query(ordered)) == canonical_json(local)

        # A crash image taken now still carries the conservative version, so
        # a restarted replica re-pulls the missed delta and converges —
        # idempotent ops make the replay safe over any partial flush.
        crash_dir = tmp_path / "crashed"
        shutil.copytree(replica_dir, crash_dir)
        recovered = Replica(served_lake["server"].address, crash_dir)
        try:
            assert recovered.commit_version == service.commit_version
            assert canonical_json(recovered.client.query(ordered)) == canonical_json(
                local
            )
        finally:
            recovered.close()

        # Checkpoint stamps everything applied so far durable in one commit.
        replica.checkpoint()
        assert backend.committed_version() == replica.commit_version
    finally:
        replica.close()


# ----------------------------------------------------------- reopen-in-place
def test_client_reopen_in_place_reuses_dictionary(served_lake, tmp_path):
    service = served_lake["service"]
    governor = served_lake["governor"]
    replica_dir = ship_snapshot(served_lake["dir"], tmp_path / "replica")
    client = LiDSClient.open(replica_dir)
    try:
        before = client.get_unionable_tables("ds0", "table_0", k=5)
        backend = client.storage.graph.backend
        dictionary = client.storage.graph.dictionary
        # Force the (unchanging) ontology shard resident so identity across
        # the reopen is observable.
        ontology_index = backend.get_index(ONTOLOGY_GRAPH)
        assert ontology_index is not None

        service.submit_lake(make_lake(3, seed=17, name="fresh")).result(timeout=120)
        service.drain()
        governor.save(served_lake["dir"])
        for name in ("graph.sqlite3", "delta.json"):
            shutil.copyfile(served_lake["dir"] / name, replica_dir / name)

        info = client.reopen()
        assert info["same_lineage"] is True
        assert str(DATASET_GRAPH) in info["invalidated"]
        assert str(ONTOLOGY_GRAPH) not in info["invalidated"]
        # Same interned dictionary object, same untouched resident index.
        assert client.storage.graph.dictionary is dictionary
        assert backend.resident_index(ONTOLOGY_GRAPH) is ontology_index
        # The new snapshot's rows are visible and identical to the source's.
        assert client.commit_version == service.commit_version
        after = client.get_unionable_tables("ds0", "table_0", k=5)
        local = LiDSClient(service).get_unionable_tables("ds0", "table_0", k=5)
        assert canonical_json(after) == canonical_json(local)
        assert canonical_json(after) != canonical_json(before) or True
    finally:
        client.close()


# ------------------------------------------------------------ retry/backoff
class FlakyProxy:
    """A scripted TCP front for a real server: flap, sever, then behave.

    Behaviours consumed one per accepted connection:
    ``"refuse"`` — accept and close immediately;
    ``"sever"`` — forward the request upstream, then send only half of the
    response frame before closing (a torn frame mid-read);
    ``"pass"`` (and anything after the script runs dry) — full proxy.
    """

    def __init__(self, upstream, script):
        self.upstream = upstream
        self.script = list(script)
        self._listener = socket.create_server(("127.0.0.1", 0))
        self._listener.settimeout(0.2)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    @property
    def address(self):
        return self._listener.getsockname()

    def _run(self):
        while not self._stop.is_set():
            try:
                connection, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            behaviour = self.script.pop(0) if self.script else "pass"
            try:
                self._handle(connection, behaviour)
            finally:
                connection.close()

    def _handle(self, connection, behaviour):
        if behaviour == "refuse":
            return
        connection.settimeout(5.0)
        upstream = socket.create_connection(self.upstream, timeout=5.0)
        try:
            while True:
                request = connection.recv(65536)
                if not request:
                    return
                upstream.sendall(request)
                response = b""
                upstream.settimeout(5.0)
                # One response frame is enough for the scripted behaviours.
                chunk = upstream.recv(65536)
                while chunk:
                    response += chunk
                    try:
                        upstream.settimeout(0.05)
                        chunk = upstream.recv(65536)
                    except socket.timeout:
                        break
                if behaviour == "sever":
                    connection.sendall(response[: max(2, len(response) // 2)])
                    return
                connection.sendall(response)
        finally:
            upstream.close()

    def close(self):
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._listener.close()


def test_remote_client_retries_through_flapping_server(served_lake):
    proxy = FlakyProxy(served_lake["server"].address, ["refuse", "sever", "pass"])
    remote = RemoteLiDSClient(
        proxy.address,
        pool_size=1,
        max_retries=5,
        backoff_base=0.01,
        backoff_cap=0.05,
        backoff_seed=7,
    )
    try:
        local = served_lake["client"].get_unionable_tables("ds0", "table_0", k=5)
        result = remote.get_unionable_tables("ds0", "table_0", k=5)
        assert canonical_json(result) == canonical_json(local)
        assert remote.stats["retries"] >= 2
        assert remote.stats["reconnects"] >= 2
    finally:
        remote.close()
        proxy.close()


def test_remote_client_surfaces_transient_error_when_down():
    listener = socket.create_server(("127.0.0.1", 0))
    address = listener.getsockname()
    listener.close()  # nothing listens here any more
    remote = RemoteLiDSClient(
        address, pool_size=1, max_retries=2, backoff_base=0.01, backoff_cap=0.02
    )
    try:
        with pytest.raises(TransientError):
            remote.ping()
        assert remote.stats["retries"] == 2
    finally:
        remote.close()


# -------------------------------------------------------------------- stats
def test_staleness_is_reported_in_versions(served_lake, tmp_path):
    service = served_lake["service"]
    client = served_lake["client"]
    payload = client.stats()
    assert payload["commit_version"] == service.commit_version
    assert payload["replication_lag"] == 0
    assert payload["service"]["commit_version"] == service.commit_version
    assert "submitted" in payload["service"]

    replica = Replica(
        served_lake["server"].address,
        ship_snapshot(served_lake["dir"], tmp_path / "replica"),
    )
    try:
        pinned = replica.commit_version
        service.submit_lake(make_lake(2, seed=23, name="lagged")).result(timeout=120)
        service.drain()
        # The replica has not synced: its pin is behind, and one ping to the
        # source is enough to quantify the lag in versions.
        replica.stats["source_version"] = replica._source.commit_version
        assert replica.commit_version == pinned
        assert replica.replication_lag == service.commit_version - pinned > 0
        replica.sync()
        assert replica.replication_lag == 0
    finally:
        replica.close()
