"""Integration tests for the KGLiDS interfaces (Section 5 operations)."""

import pytest

from repro.interfaces import KGLiDS
from repro.tabular import Table


class TestDiscoveryInterfaces:
    def test_search_keywords_conjunctive_and_disjunctive(self, bootstrapped_platform, tiny_benchmark):
        lake_domains = {dataset.name.split("_")[0] for dataset in tiny_benchmark.lake.datasets}
        domain = sorted(lake_domains)[0]
        result = bootstrapped_platform.search_keywords([[domain]])
        assert result.num_rows > 0
        assert "table" in result.column_names
        # A nonsense conjunctive group combined with a valid disjunct still matches.
        result_or = bootstrapped_platform.search_keywords([["zzz", "qqq"], domain])
        assert result_or.num_rows == result.num_rows
        assert bootstrapped_platform.search_keywords([["zzz_not_there"]]).num_rows == 0

    def test_unionable_tables_rank_ground_truth_first(self, bootstrapped_platform, tiny_benchmark):
        query = tiny_benchmark.query_tables[0]
        result = bootstrapped_platform.get_unionable_tables(query[0], query[1], k=5)
        assert result.num_rows > 0
        top_dataset = result.column("dataset")[0]
        top_table = result.column("table")[0]
        assert (top_dataset, top_table) in tiny_benchmark.ground_truth[query]
        scores = list(result.column("score"))
        assert scores == sorted(scores, reverse=True)

    def test_find_unionable_columns(self, bootstrapped_platform, tiny_benchmark):
        query = tiny_benchmark.query_tables[0]
        partner = next(iter(tiny_benchmark.ground_truth[query]))
        result = bootstrapped_platform.find_unionable_columns(query[0], query[1], partner[0], partner[1])
        assert result.num_rows > 0
        assert set(result.column_names) == {"column_a", "column_b", "similarity", "score"}

    def test_joinable_tables_and_paths(self, bootstrapped_platform, tiny_benchmark):
        query = tiny_benchmark.query_tables[0]
        joinable = bootstrapped_platform.get_joinable_tables(query[0], query[1], k=5)
        paths = bootstrapped_platform.get_path_to_table(query[0], query[1], hops=2)
        assert set(paths.column_names) == {"target_table", "hops", "path"}
        if joinable.num_rows:
            assert paths.num_rows > 0
            target = (joinable.column("dataset")[0], joinable.column("table")[0])
            shortest = bootstrapped_platform.get_shortest_path_between_tables(
                query[0], query[1], target[0], target[1]
            )
            assert shortest is not None and len(shortest) >= 2

    def test_shortest_path_missing_table(self, bootstrapped_platform):
        assert (
            bootstrapped_platform.get_shortest_path_between_tables("no", "no", "no2", "no2") is None
        )


class TestPipelineInterfaces:
    def test_top_k_libraries(self, bootstrapped_platform):
        result = bootstrapped_platform.get_top_k_library_used(5)
        assert 0 < result.num_rows <= 5
        counts = list(result.column("num_pipelines"))
        assert counts == sorted(counts, reverse=True)
        assert "pandas" in result.column("library_name")

    def test_top_libraries_filtered_by_task(self, bootstrapped_platform):
        result = bootstrapped_platform.get_top_used_libraries(5, task="classification")
        assert result.num_rows > 0
        unfiltered = bootstrapped_platform.get_top_used_libraries(5, task=None)
        assert unfiltered.num_rows >= result.num_rows - 1

    def test_pipelines_calling_libraries(self, bootstrapped_platform):
        result = bootstrapped_platform.get_pipelines_calling_libraries(
            "pandas.read_csv", "sklearn.model_selection.train_test_split"
        )
        assert result.num_rows > 0
        votes = list(result.column("votes"))
        assert votes == sorted(votes, reverse=True)
        none_result = bootstrapped_platform.get_pipelines_calling_libraries("no.such.call")
        assert none_result.num_rows == 0


class TestModelAndAdHocInterfaces:
    def test_recommend_ml_models_table_output(self, bootstrapped_platform, tiny_benchmark):
        table = tiny_benchmark.lake.tables()[1]
        result = bootstrapped_platform.recommend_ml_models(table, k=3)
        assert result.num_rows > 0
        assert "estimator" in result.column_names

    def test_ad_hoc_query_returns_table(self, bootstrapped_platform):
        result = bootstrapped_platform.query(
            "SELECT (COUNT(?t) AS ?n) WHERE { ?t a kglids:Table }"
        )
        assert isinstance(result, Table)
        assert result.column("n")[0] > 0

    def test_statistics_manager(self, bootstrapped_platform):
        stats = bootstrapped_platform.statistics()
        assert stats["num_triples"] > 0
        assert stats["num_models"] >= 1

    def test_model_manager_contains_trained_gnns(self, bootstrapped_platform):
        models = bootstrapped_platform.storage.list_models()
        assert "cleaning_gnn" in models
