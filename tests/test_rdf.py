"""Unit tests for the RDF-star term model, quad store and serialization."""

import pytest

from repro.rdf import (
    DEFAULT_GRAPH,
    KGLIDS_ONTOLOGY,
    BNode,
    Literal,
    QuadStore,
    QuotedTriple,
    RDF,
    URIRef,
)
from repro.rdf.namespace import expand_qname
from repro.rdf.serialize import load_nquads, parse_nquads, save_nquads, serialize_nquads
from repro.rdf.terms import Triple, term_n3


class TestTerms:
    def test_uriref_n3_and_local_name(self):
        uri = URIRef("http://kglids.org/ontology/Table")
        assert uri.n3() == "<http://kglids.org/ontology/Table>"
        assert uri.local_name() == "Table"

    def test_bnode_n3(self):
        assert BNode("b1").n3() == "_:b1"

    def test_literal_datatypes_round_trip(self):
        assert Literal(5).to_python() == 5
        assert Literal(2.5).to_python() == 2.5
        assert Literal(True).to_python() is True
        assert Literal("text").to_python() == "text"

    def test_literal_escaping(self):
        literal = Literal('say "hi"\nplease')
        assert "\\n" in literal.n3()
        assert Literal.unescape('say \\"hi\\"\\nplease') == 'say "hi"\nplease'

    def test_literal_equality_and_hash(self):
        assert Literal(3) == Literal(3)
        assert Literal(3) != Literal("3", datatype=None)
        assert len({Literal(3), Literal(3)}) == 1

    def test_quoted_triple_n3(self):
        quoted = QuotedTriple(URIRef("a"), URIRef("b"), Literal(1))
        assert quoted.n3().startswith("<<") and quoted.n3().endswith(">>")
        assert quoted == QuotedTriple(URIRef("a"), URIRef("b"), Literal(1))

    def test_namespace_attribute_access(self):
        assert KGLIDS_ONTOLOGY.hasName == URIRef("http://kglids.org/ontology/hasName")
        assert expand_qname("kglids:Table") == URIRef("http://kglids.org/ontology/Table")
        with pytest.raises(ValueError):
            expand_qname("unknown:x")

    def test_term_n3_wraps_plain_values(self):
        assert term_n3("hello").startswith('"hello"')


@pytest.fixture()
def store():
    s = QuadStore()
    onto = KGLIDS_ONTOLOGY
    s.add(URIRef("t1"), RDF.type, onto.Table)
    s.add(URIRef("t1"), onto.hasName, Literal("train"))
    s.add(URIRef("t2"), RDF.type, onto.Table, graph=URIRef("g2"))
    return s


class TestQuadStore:
    def test_add_is_idempotent(self, store):
        before = len(store)
        assert store.add(URIRef("t1"), RDF.type, KGLIDS_ONTOLOGY.Table) is False
        assert len(store) == before

    def test_pattern_matching(self, store):
        assert len(list(store.triples(URIRef("t1"), None, None))) == 2
        assert len(list(store.triples(None, RDF.type, None))) == 2
        assert store.contains(URIRef("t2"), RDF.type, KGLIDS_ONTOLOGY.Table)

    def test_graph_scoping(self, store):
        assert store.num_triples(graph=URIRef("g2")) == 1
        assert store.num_triples(graph=DEFAULT_GRAPH) == 2
        assert len(list(store.triples(None, None, None, graph=URIRef("nope")))) == 0

    def test_objects_subjects_value(self, store):
        assert store.objects(URIRef("t1"), KGLIDS_ONTOLOGY.hasName) == [Literal("train")]
        assert URIRef("t1") in store.subjects(RDF.type, KGLIDS_ONTOLOGY.Table)
        assert store.value(URIRef("t1"), KGLIDS_ONTOLOGY.hasName) == "train"
        assert store.value(URIRef("t1"), KGLIDS_ONTOLOGY.hasVotes, default=0) == 0

    def test_remove(self, store):
        assert store.remove(URIRef("t1"), KGLIDS_ONTOLOGY.hasName, Literal("train"))
        assert not store.contains(URIRef("t1"), KGLIDS_ONTOLOGY.hasName, Literal("train"))
        assert not store.remove(URIRef("t1"), KGLIDS_ONTOLOGY.hasName, Literal("train"))

    def test_remove_graph(self, store):
        assert store.remove_graph(URIRef("g2"))
        assert store.num_triples(graph=URIRef("g2")) == 0

    def test_rdf_star_annotation(self, store):
        onto = KGLIDS_ONTOLOGY
        store.annotate(URIRef("c1"), onto.hasContentSimilarity, URIRef("c2"), onto.withCertainty, Literal(0.97))
        score = store.annotation(URIRef("c1"), onto.hasContentSimilarity, URIRef("c2"), onto.withCertainty)
        assert score == pytest.approx(0.97)
        # The base triple is asserted too.
        assert store.contains(URIRef("c1"), onto.hasContentSimilarity, URIRef("c2"))

    def test_statistics(self, store):
        stats = store.statistics()
        assert stats["num_triples"] == 3
        assert stats["num_graphs"] == 2
        assert stats["num_unique_predicates"] == 2
        assert store.estimated_size_bytes() > 0

    def test_add_triples_bulk(self):
        s = QuadStore()
        inserted = s.add_triples([(URIRef("a"), RDF.type, URIRef("b"))] * 3)
        assert inserted == 1


class TestSerialization:
    def test_round_trip(self, store, tmp_path):
        store.annotate(
            URIRef("c1"),
            KGLIDS_ONTOLOGY.hasLabelSimilarity,
            URIRef("c2"),
            KGLIDS_ONTOLOGY.withCertainty,
            Literal(0.5),
        )
        path = save_nquads(store, tmp_path / "graph.nq")
        loaded = load_nquads(path)
        assert len(loaded) == len(store)
        assert loaded.contains(URIRef("t2"), RDF.type, KGLIDS_ONTOLOGY.Table, graph=URIRef("g2"))
        assert loaded.annotation(
            URIRef("c1"), KGLIDS_ONTOLOGY.hasLabelSimilarity, URIRef("c2"), KGLIDS_ONTOLOGY.withCertainty
        ) == pytest.approx(0.5)

    def test_parse_skips_comments_and_blank_lines(self):
        text = "# comment\n\n<a> <b> \"x\" .\n"
        store = parse_nquads(text)
        assert len(store) == 1

    def test_serialize_is_sorted_text(self, store):
        text = serialize_nquads(store)
        lines = [line for line in text.splitlines() if line]
        assert lines == sorted(lines)
