"""Durable governance: backend parity, governor save/reopen, table refresh.

These tests pin the contracts of the pluggable-backend storage layer:

* the in-memory and sqlite backends return identical SPARQL results *and*
  identical ``explain()`` plans over the same governed lake (the planner's
  cardinality statistics are rebuilt faithfully on load);
* a governor can be saved, reopened in a fresh store, and keep answering
  queries / accepting incremental adds exactly as the original would;
* ``refresh_table`` retracts everything derived from a table's old contents
  — the refreshed graph is byte-identical to governing the modified lake
  from scratch, and re-adds with changed contents route through refresh;
* the new retraction primitives (``remove_predicate``, ``FlatIndex.remove``,
  ``EmbeddingStore.remove``) and the embedding-store disk round-trip;
* ``HNSWIndex``'s beam-search construction agrees with ``FlatIndex`` top-k.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.embeddings.index import FlatIndex, HNSWIndex
from repro.embeddings.store import EmbeddingStore
from repro.kg import KGGovernor, LiDSOntology
from repro.kg.ontology import DATASET_GRAPH, column_uri, table_uri
from repro.kg.storage import KGLiDSStorage
from repro.rdf import Literal, QuadStore, SqliteBackend, URIRef
from repro.rdf.serialize import serialize_nquads
from repro.sparql import SPARQLEngine
from repro.tabular import DataLake, Table


def make_lake(age_shift: int = 0) -> DataLake:
    """Three tables across two datasets with overlapping columns."""
    lake = DataLake("persist_lake")
    lake.add_table(
        "titanic",
        Table.from_dict(
            "train",
            {
                "Age": [22 + age_shift, 38, 26, 35, 54, 2, 27, 14],
                "Fare": [7.25, 71.28, 7.92, 53.1, 51.86, 21.07, 11.13, 16.7],
            },
        ),
    )
    lake.add_table(
        "titanic",
        Table.from_dict(
            "test",
            {
                "Age": [21, 39, 25, 36, 55, 3, 28, 15],
                "Fare": [8.0, 70.0, 8.5, 52.0, 50.0, 22.0, 12.0, 17.0],
            },
        ),
    )
    lake.add_table(
        "heart",
        Table.from_dict(
            "heart",
            {
                "Age": [52, 61, 44, 39, 70, 33, 48, 58],
                "Chol": [212.0, 203.0, 289.0, 321.0, 269.0, 180.0, 245.0, 270.0],
            },
        ),
    )
    return lake


DISCOVERY_QUERIES = {
    "tables": "SELECT ?t ?name WHERE { ?t a kglids:Table . ?t kglids:hasName ?name . }",
    "joined_metadata": """
        SELECT ?col ?colname ?tablename WHERE {
            ?col kglids:hasName ?colname .
            ?col a kglids:Column .
            ?col kglids:isPartOf ?table .
            ?table kglids:hasName ?tablename .
        }
    """,
    "similarity": """
        SELECT ?c1 ?c2 ?score WHERE {
            << ?c1 kglids:hasContentSimilarity ?c2 >> kglids:withCertainty ?score .
        }
    """,
    "type_histogram": """
        SELECT ?type (COUNT(?col) AS ?n) WHERE {
            ?col a kglids:Column .
            ?col kglids:hasFineGrainedType ?type .
        } GROUP BY ?type ORDER BY ?type
    """,
}


def rows_of(store: QuadStore, query: str):
    return sorted(map(str, SPARQLEngine(store).select(query).rows))


# --------------------------------------------------------------------------
# Backend parity
# --------------------------------------------------------------------------
class TestBackendParity:
    def test_governed_graphs_identical_across_backends(self, tmp_path):
        memory_governor = KGGovernor()
        memory_governor.add_data_lake(make_lake())
        sqlite_store = QuadStore.sqlite(tmp_path / "lids.sqlite3")
        sqlite_governor = KGGovernor(storage=KGLiDSStorage(graph=sqlite_store))
        sqlite_governor.add_data_lake(make_lake())
        assert serialize_nquads(memory_governor.storage.graph) == serialize_nquads(
            sqlite_governor.storage.graph
        )
        sqlite_governor.close()

    def test_sparql_results_and_plans_identical(self, tmp_path):
        memory_governor = KGGovernor()
        memory_governor.add_data_lake(make_lake())
        directory = tmp_path / "saved"
        memory_governor.save(directory)

        reopened = QuadStore.sqlite(directory / "graph.sqlite3")
        memory_store = memory_governor.storage.graph
        memory_engine = SPARQLEngine(memory_store)
        sqlite_engine = SPARQLEngine(reopened)
        for name, query in DISCOVERY_QUERIES.items():
            assert rows_of(memory_store, query) == rows_of(reopened, query), name
            assert memory_engine.explain(query) == sqlite_engine.explain(query), name
        reopened.close()

    def test_statistics_rebuilt_on_load(self, tmp_path):
        memory_governor = KGGovernor()
        memory_governor.add_data_lake(make_lake())
        directory = tmp_path / "saved"
        memory_governor.save(directory)
        reopened = QuadStore.sqlite(directory / "graph.sqlite3")
        predicate = LiDSOntology.hasName
        assert reopened.predicate_statistics(
            predicate, DATASET_GRAPH
        ) == memory_governor.storage.graph.predicate_statistics(predicate, DATASET_GRAPH)
        assert reopened.statistics() == memory_governor.storage.graph.statistics()
        reopened.close()


# --------------------------------------------------------------------------
# Sqlite backend primitives
# --------------------------------------------------------------------------
class TestSqliteBackend:
    def test_round_trip_with_annotations(self, tmp_path):
        path = tmp_path / "store.sqlite3"
        store = QuadStore.sqlite(path)
        a, b = URIRef("http://x/a"), URIRef("http://x/b")
        sim, score = URIRef("http://x/sim"), URIRef("http://x/score")
        store.add(a, sim, b, graph=DATASET_GRAPH)
        store.annotate(a, sim, b, score, Literal(0.75), graph=DATASET_GRAPH)
        store.add(b, sim, a)
        store.close()

        reopened = QuadStore.sqlite(path)
        assert reopened.num_triples() == 3
        assert reopened.annotation(a, sim, b, score, graph=DATASET_GRAPH) == 0.75
        assert [t.object for t, _ in reopened.match_quoted(inner_subject=a)] == [
            Literal(0.75)
        ]
        reopened.close()

    def test_lazy_graph_loading(self, tmp_path):
        path = tmp_path / "store.sqlite3"
        store = QuadStore.sqlite(path)
        g1, g2 = URIRef("http://x/g1"), URIRef("http://x/g2")
        store.add(URIRef("http://x/a"), URIRef("http://x/p"), Literal(1), graph=g1)
        store.add(URIRef("http://x/b"), URIRef("http://x/p"), Literal(2), graph=g2)
        store.close()

        reopened = QuadStore.sqlite(path)
        backend = reopened.backend
        assert isinstance(backend, SqliteBackend)
        assert sorted(reopened.graphs()) == sorted([g1, g2])
        assert backend._indexes == {}  # nothing loaded yet
        assert reopened.num_triples(g1) == 1  # counted from the shard catalog
        assert g1 not in backend._indexes
        assert len(list(reopened.triples(graph=g1))) == 1
        assert g1 in backend._indexes and g2 not in backend._indexes
        reopened.close()

    def test_remove_graph_persists(self, tmp_path):
        path = tmp_path / "store.sqlite3"
        store = QuadStore.sqlite(path)
        graph = URIRef("http://x/g")
        store.add(URIRef("http://x/a"), URIRef("http://x/p"), Literal(1), graph=graph)
        assert store.remove_graph(graph)
        store.close()
        reopened = QuadStore.sqlite(path)
        assert reopened.num_triples() == 0
        reopened.close()

    def test_remove_predicate_persists(self, tmp_path):
        path = tmp_path / "store.sqlite3"
        store = QuadStore.sqlite(path)
        p, q = URIRef("http://x/p"), URIRef("http://x/q")
        for index in range(5):
            store.add(URIRef(f"http://x/s{index}"), p, Literal(index))
        store.add(URIRef("http://x/s0"), q, Literal(99))
        assert store.remove_predicate(p) == 5
        assert store.predicate_statistics(p) is None
        store.close()
        reopened = QuadStore.sqlite(path)
        assert reopened.num_triples() == 1
        assert reopened.value(URIRef("http://x/s0"), q) == 99
        reopened.close()

    def test_remove_predicate_on_unloaded_shard(self, tmp_path):
        """Lake-wide predicate retraction must not load dormant shards."""
        path = tmp_path / "store.sqlite3"
        store = QuadStore.sqlite(path)
        g1, g2 = URIRef("http://x/g1"), URIRef("http://x/g2")
        p = URIRef("http://x/p")
        store.add(URIRef("http://x/a"), p, Literal(1), graph=g1)
        store.add(URIRef("http://x/b"), p, Literal(2), graph=g2)
        store.add(URIRef("http://x/b"), URIRef("http://x/q"), Literal(3), graph=g2)
        store.close()

        reopened = QuadStore.sqlite(path)
        backend = reopened.backend
        assert isinstance(backend, SqliteBackend)
        # Load only g1; g2 stays dormant and is retracted via SQL alone.
        assert len(list(reopened.triples(graph=g1))) == 1
        assert reopened.remove_predicate(p) == 2
        assert g2 not in backend._indexes
        assert reopened.num_triples() == 1
        reopened.close()
        final = QuadStore.sqlite(path)
        assert final.num_triples() == 1
        assert not list(final.triples(predicate=p))
        final.close()

    def test_literal_escapes_round_trip(self, tmp_path):
        """Backslash-then-n/r/t values must survive the text serialization.

        Sequential ``str.replace`` unescaping would decode the serialized
        form of ``C:\\new`` (an escaped backslash followed by a plain ``n``)
        as a newline; the sqlite backend puts that parser on the main
        persistence path, so pin the round trip.
        """
        path = tmp_path / "store.sqlite3"
        store = QuadStore.sqlite(path)
        subject, predicate = URIRef("http://x/s"), URIRef("http://x/p")
        values = ["C:\\new\\table.csv", "tab\\there", "a\\\\b", 'quote"\\n', "real\nnewline\ttab"]
        for position, value in enumerate(values):
            store.add(URIRef(f"http://x/s{position}"), predicate, Literal(value))
        store.close()
        reopened = QuadStore.sqlite(path)
        for position, value in enumerate(values):
            assert reopened.value(URIRef(f"http://x/s{position}"), predicate) == value
        reopened.close()

    def test_version_counters_still_work(self, tmp_path):
        store = QuadStore.sqlite(tmp_path / "store.sqlite3")
        graph = URIRef("http://x/g")
        before = store.graph_version(graph)
        store.add(URIRef("http://x/a"), URIRef("http://x/p"), Literal(1), graph=graph)
        assert store.graph_version(graph) > before
        assert store.version == 1
        store.close()


# --------------------------------------------------------------------------
# Governor save / reopen
# --------------------------------------------------------------------------
class TestGovernorPersistence:
    def test_save_reopen_round_trip(self, tmp_path):
        governor = KGGovernor()
        governor.add_data_lake(make_lake())
        directory = tmp_path / "lake"
        governor.save(directory)

        reopened = KGGovernor.open(directory)
        assert serialize_nquads(reopened.storage.graph) == serialize_nquads(
            governor.storage.graph
        )
        for name, query in DISCOVERY_QUERIES.items():
            assert rows_of(reopened.storage.graph, query) == rows_of(
                governor.storage.graph, query
            ), name
        # Lookup state restored.
        assert reopened.table_profile("titanic", "train") is not None
        assert reopened.storage.embeddings.count() == governor.storage.embeddings.count()
        assert (
            reopened.storage.embeddings.search(
                "column",
                governor.storage.embeddings.get(
                    "column", governor.storage.embeddings.keys("column")[0]
                ),
                k=1,
            )
            == governor.storage.embeddings.search(
                "column",
                governor.storage.embeddings.get(
                    "column", governor.storage.embeddings.keys("column")[0]
                ),
                k=1,
            )
        )
        reopened.close()

    def test_incremental_add_after_reopen_matches_scratch(self, tmp_path):
        governor = KGGovernor()
        governor.add_data_lake(make_lake())
        directory = tmp_path / "lake"
        governor.save(directory)

        extra = Table.from_dict(
            "extra",
            {"Age": [30, 40, 50, 60, 20, 10, 45, 35], "Fare": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]},
        )
        reopened = KGGovernor.open(directory)
        reopened.add_table(extra.copy(), dataset_name="titanic")

        scratch = KGGovernor()
        full_lake = make_lake()
        full_lake.add_table("titanic", extra.copy())
        scratch.add_data_lake(full_lake)
        assert serialize_nquads(reopened.storage.graph) == serialize_nquads(
            scratch.storage.graph
        )
        reopened.close()

    def test_reopen_skips_unchanged_and_refreshes_changed(self, tmp_path):
        governor = KGGovernor()
        governor.add_data_lake(make_lake())
        directory = tmp_path / "lake"
        governor.save(directory)

        reopened = KGGovernor.open(directory)
        unchanged = reopened.add_data_lake(make_lake())
        assert unchanged.num_tables_profiled == 0
        assert unchanged.refreshed_tables == []
        changed = reopened.add_data_lake(make_lake(age_shift=3))
        assert changed.refreshed_tables == ["titanic/train"]
        reopened.close()

    def test_linker_restored_after_reopen(self, tmp_path):
        governor = KGGovernor()
        governor.add_data_lake(make_lake())
        directory = tmp_path / "lake"
        governor.save(directory)

        reopened = KGGovernor.open(directory)
        known = reopened.linker._known_tables_for(reopened.storage.graph)
        assert ("titanic", "train") in known
        assert known[("titanic", "train")] == table_uri("titanic", "train")
        reopened.close()


# --------------------------------------------------------------------------
# Table refresh / retraction
# --------------------------------------------------------------------------
class TestRefreshTable:
    def test_refresh_matches_scratch_byte_identical(self):
        governor = KGGovernor()
        governor.add_data_lake(make_lake())
        modified_train = make_lake(age_shift=7).table("titanic", "train")
        report = governor.refresh_table(modified_train)
        assert report.refreshed_tables == ["titanic/train"]

        scratch = KGGovernor()
        scratch.add_data_lake(make_lake(age_shift=7))
        assert serialize_nquads(governor.storage.graph) == serialize_nquads(
            scratch.storage.graph
        )
        assert sorted(governor.storage.embeddings.keys("column")) == sorted(
            scratch.storage.embeddings.keys("column")
        )

    def test_refresh_drops_stale_columns_and_embeddings(self):
        governor = KGGovernor()
        governor.add_data_lake(make_lake())
        # The new train table loses "Fare" and gains "Name".
        replacement = Table.from_dict(
            "train",
            {
                "Age": [22, 38, 26, 35, 54, 2, 27, 14],
                "Name": ["ann", "bob", "cat", "dan", "eve", "fred", "gil", "hal"],
            },
        )
        governor.refresh_table(replacement, dataset_name="titanic")

        scratch_lake = DataLake("persist_lake")
        scratch_lake.add_table("titanic", replacement.copy())
        scratch_lake.add_table("titanic", make_lake().table("titanic", "test"))
        scratch_lake.add_table("heart", make_lake().table("heart", "heart"))
        scratch = KGGovernor()
        scratch.add_data_lake(scratch_lake)
        assert serialize_nquads(governor.storage.graph) == serialize_nquads(
            scratch.storage.graph
        )
        stale = str(column_uri("titanic", "train", "Fare"))
        assert governor.storage.embeddings.get("column", stale) is None

    def test_refresh_is_idempotent(self):
        governor = KGGovernor()
        governor.add_data_lake(make_lake())
        table = make_lake(age_shift=2).table("titanic", "train")
        governor.refresh_table(table)
        first = serialize_nquads(governor.storage.graph)
        governor.refresh_table(make_lake(age_shift=2).table("titanic", "train"))
        assert serialize_nquads(governor.storage.graph) == first

    def test_refresh_unknown_table_is_plain_add(self):
        governor = KGGovernor()
        report = governor.refresh_table(
            make_lake().table("heart", "heart"), dataset_name="heart"
        )
        assert report.refreshed_tables == []
        assert report.num_tables_profiled == 1

    def test_retract_table_removes_all_footprint(self):
        governor = KGGovernor()
        governor.add_data_lake(make_lake())
        assert governor.retract_table("titanic", "train")
        node = table_uri("titanic", "train")
        assert not list(governor.storage.graph.match(subject=node))
        assert not list(governor.storage.graph.match(obj=node))
        assert governor.table_profile("titanic", "train") is None
        assert not governor.retract_table("titanic", "train")

    def test_refresh_persists_through_save_reopen(self, tmp_path):
        governor = KGGovernor()
        governor.add_data_lake(make_lake())
        governor.refresh_table(make_lake(age_shift=4).table("titanic", "train"))
        directory = tmp_path / "lake"
        governor.save(directory)

        reopened = KGGovernor.open(directory)
        scratch = KGGovernor()
        scratch.add_data_lake(make_lake(age_shift=4))
        assert serialize_nquads(reopened.storage.graph) == serialize_nquads(
            scratch.storage.graph
        )
        reopened.close()


# --------------------------------------------------------------------------
# Embedding store retraction + disk round trip
# --------------------------------------------------------------------------
class TestEmbeddingStorePersistence:
    def test_save_load_round_trip(self, tmp_path):
        rng = np.random.default_rng(3)
        store = EmbeddingStore()
        store.put_many(
            "column", [(f"col{i}", rng.normal(size=24)) for i in range(20)]
        )
        store.put_many("table", [(f"tab{i}", rng.normal(size=48)) for i in range(5)])
        path = store.save(tmp_path / "embeddings.npz")

        loaded = EmbeddingStore.load(path)
        assert loaded.count() == store.count()
        for namespace in ("column", "table"):
            assert loaded.keys(namespace) == store.keys(namespace)
            for key in store.keys(namespace):
                np.testing.assert_array_equal(
                    loaded.get(namespace, key), store.get(namespace, key)
                )
        query = rng.normal(size=24)
        assert loaded.search("column", query, k=5) == store.search("column", query, k=5)

    def test_save_load_empty(self, tmp_path):
        path = EmbeddingStore().save(tmp_path / "empty.npz")
        assert EmbeddingStore.load(path).count() == 0

    def test_remove(self):
        store = EmbeddingStore()
        store.put("column", "a", np.ones(4))
        store.put("column", "b", np.array([1.0, 0.0, 0.0, 0.0]))
        assert store.remove("column", "a")
        assert not store.remove("column", "a")
        assert store.get("column", "a") is None
        assert [key for key, _ in store.search("column", np.ones(4), k=5)] == ["b"]


class TestFlatIndexRemove:
    def test_swap_remove_keeps_search_exact(self):
        rng = np.random.default_rng(11)
        index = FlatIndex(8)
        vectors = {f"k{i}": rng.normal(size=8) for i in range(30)}
        for key, vector in vectors.items():
            index.add(key, vector)
        index.search(rng.normal(size=8))  # materialize the matrix
        assert index.remove("k7")
        assert not index.remove("k7")
        assert "k7" not in index
        assert len(index) == 29
        query = vectors["k13"]
        assert index.search(query, k=1)[0][0] == "k13"
        # Every surviving key is still retrievable as its own nearest match.
        for key, vector in vectors.items():
            if key == "k7":
                continue
            assert index.search(vector, k=1)[0][0] == key

    def test_remove_last_and_readd(self):
        index = FlatIndex(2)
        index.add("a", np.array([1.0, 0.0]))
        index.add("b", np.array([0.0, 1.0]))
        assert index.remove("b")
        index.add("c", np.array([0.0, 1.0]))
        assert sorted(index.keys()) == ["a", "c"]
        assert index.search(np.array([0.0, 1.0]), k=1)[0][0] == "c"


# --------------------------------------------------------------------------
# HNSW construction rework
# --------------------------------------------------------------------------
class TestHNSWConstruction:
    def test_recall_agreement_with_flat_index(self):
        rng = np.random.default_rng(5)
        dimensions, count = 16, 250
        # Clustered data: what real column-embedding groups look like.
        centers = rng.normal(size=(10, dimensions))
        vectors = np.concatenate(
            [center + 0.15 * rng.normal(size=(count // 10, dimensions)) for center in centers]
        )
        flat = FlatIndex(dimensions)
        hnsw = HNSWIndex(dimensions, m=8, ef_search=64, ef_construction=64)
        for position, vector in enumerate(vectors):
            flat.add(str(position), vector)
            hnsw.add(str(position), vector)

        recalls = []
        for query in rng.normal(size=(20, dimensions)) + centers[rng.integers(0, 10, 20)]:
            exact = {key for key, _ in flat.search(query, k=10)}
            approximate = {key for key, _ in hnsw.search(query, k=10)}
            recalls.append(len(exact & approximate) / len(exact))
        assert float(np.mean(recalls)) >= 0.9, recalls

    def test_insert_probes_sublinear(self):
        """Construction must not touch every stored vector per insert."""
        rng = np.random.default_rng(9)
        hnsw = HNSWIndex(8, m=4, ef_construction=16)
        probes = {"count": 0}
        original = HNSWIndex._beam_search

        def counting_beam_search(self, query, ef):
            result = original(self, query, ef)
            probes["count"] += len(result)
            return result

        HNSWIndex._beam_search = counting_beam_search
        try:
            for position in range(200):
                hnsw.add(str(position), rng.normal(size=8))
        finally:
            HNSWIndex._beam_search = original
        # The seed implementation scored ~n/2 * n ≈ 20k pairs; beam search
        # returns at most ef results per insert.
        assert probes["count"] <= 200 * 16

    def test_duplicate_vectors_ok(self):
        hnsw = HNSWIndex(4, m=2)
        for position in range(10):
            hnsw.add(str(position), np.array([1.0, 0.0, 0.0, 0.0]))
        results = hnsw.search(np.array([1.0, 0.0, 0.0, 0.0]), k=3)
        assert len(results) == 3
        assert all(score == pytest.approx(1.0) for _, score in results)


# --------------------------------------------------------------------------
# Pipeline abstraction persistence
# --------------------------------------------------------------------------
class TestPipelinePersistence:
    def _scripts(self, source):
        from repro.pipelines.abstraction import PipelineScript

        return [
            PipelineScript(
                "titanic_p1", source, dataset_name="titanic", votes=10, task="classification"
            )
        ]

    def test_abstractions_round_trip_through_save_open(
        self, tmp_path, example_pipeline_source
    ):
        governor = KGGovernor()
        governor.add_data_lake(make_lake())
        governor.add_pipelines(self._scripts(example_pipeline_source))
        directory = tmp_path / "lake"
        governor.save(directory)

        reopened = KGGovernor.open(directory)
        assert len(reopened.abstractions) == 1
        original = governor.abstractions[0]
        restored = reopened.abstractions[0]
        assert restored.pipeline_id == original.pipeline_id
        assert restored.script.source_code == original.script.source_code
        assert restored.libraries_used == original.libraries_used
        assert restored.calls_used == original.calls_used
        assert restored.predicted_table_reads == original.predicted_table_reads
        assert [s.to_dict() for s in restored.statements] == [
            s.to_dict() for s in original.statements
        ]
        assert (
            reopened.abstractor.library_hierarchy_edges()
            == governor.abstractor.library_hierarchy_edges()
        )
        reopened.close()

    def test_unchanged_pipeline_readd_is_skipped_after_reopen(
        self, tmp_path, example_pipeline_source
    ):
        governor = KGGovernor()
        governor.add_data_lake(make_lake())
        governor.add_pipelines(self._scripts(example_pipeline_source))
        directory = tmp_path / "lake"
        governor.save(directory)
        before = serialize_nquads(governor.storage.graph)

        reopened = KGGovernor.open(directory)
        report = reopened.add_pipelines(self._scripts(example_pipeline_source))
        assert report.num_pipelines_abstracted == 0  # skipped, not re-abstracted
        assert serialize_nquads(reopened.storage.graph) == before
        reopened.close()

    def test_changed_pipeline_source_is_refreshed(self, example_pipeline_source):
        from repro.pipelines.abstraction import PipelineScript

        governor = KGGovernor()
        governor.add_data_lake(make_lake())
        governor.add_pipelines(self._scripts(example_pipeline_source))
        changed = example_pipeline_source + "\nprint('v2')\n"
        report = governor.add_pipelines(
            [PipelineScript("titanic_p1", changed, dataset_name="titanic")]
        )
        assert report.num_pipelines_abstracted == 1
        assert len(governor.abstractions) == 1
        assert governor.abstractions[0].script.source_code == changed

        # The graph equals abstracting the changed script from scratch.
        scratch = KGGovernor()
        scratch.add_data_lake(make_lake())
        scratch.add_pipelines(
            [PipelineScript("titanic_p1", changed, dataset_name="titanic")]
        )
        assert serialize_nquads(governor.storage.graph) == serialize_nquads(
            scratch.storage.graph
        )

    def test_changed_imports_drop_stale_library_triples(self):
        """A re-add whose new source stops using a library must not leave
        that library's hierarchy triples behind (the library graph is shared
        across pipelines and is rebuilt from the surviving abstractions)."""
        from repro.pipelines.abstraction import PipelineScript

        v1 = "import pandas as pd\nfrom sklearn.svm import SVC\nclf = SVC()\nclf.fit([[1]], [1])\n"
        v2 = "import pandas as pd\ndf = pd.read_csv('x.csv')\n"
        governor = KGGovernor()
        governor.add_data_lake(make_lake())
        governor.add_pipelines([PipelineScript("p1", v1, dataset_name="titanic")])
        governor.add_pipelines([PipelineScript("p1", v2, dataset_name="titanic")])

        scratch = KGGovernor()
        scratch.add_data_lake(make_lake())
        scratch.add_pipelines([PipelineScript("p1", v2, dataset_name="titanic")])
        assert serialize_nquads(governor.storage.graph) == serialize_nquads(
            scratch.storage.graph
        )

    def test_nan_inside_containers_round_trips(self):
        import math

        from repro.pipelines.static_analysis import CallInfo

        call = CallInfo(
            full_name="x.f",
            library="x",
            keyword_arguments={"weights": (float("nan"), 1), "bound": float("-inf")},
        )
        restored = CallInfo.from_dict(call.to_dict())
        weights = restored.keyword_arguments["weights"]
        assert isinstance(weights, tuple) and math.isnan(weights[0]) and weights[1] == 1
        assert restored.keyword_arguments["bound"] == float("-inf")

    def test_statement_and_call_serialization_round_trip(self, example_pipeline_source):
        from repro.pipelines.abstraction import AbstractedPipeline, PipelineAbstractor

        abstraction = PipelineAbstractor().abstract_script(
            self._scripts(example_pipeline_source)[0]
        )
        restored = AbstractedPipeline.from_dict(abstraction.to_dict())
        assert restored.to_dict() == abstraction.to_dict()
        # Tuples in argument values survive (JSON alone would flatten them).
        from repro.pipelines.static_analysis import CallInfo

        call = CallInfo(
            full_name="pandas.read_csv",
            library="pandas",
            keyword_arguments={"usecols": ("a", "b"), "sep": ","},
        )
        assert CallInfo.from_dict(call.to_dict()).keyword_arguments == {
            "usecols": ("a", "b"),
            "sep": ",",
        }
