"""Unit tests for the SPARQL parser and evaluator."""

import pytest

from repro.rdf import KGLIDS_ONTOLOGY, Literal, QuadStore, RDF, URIRef
from repro.sparql import SPARQLEngine, parse_query
from repro.sparql.parser import SPARQLSyntaxError


@pytest.fixture()
def engine():
    store = QuadStore()
    onto = KGLIDS_ONTOLOGY
    graph_a, graph_b = URIRef("http://g/a"), URIRef("http://g/b")
    for i, (name, rows, graph) in enumerate(
        [("train", 100, graph_a), ("heart", 50, graph_a), ("games", 80, graph_b)]
    ):
        table = URIRef(f"http://data/{name}")
        store.add(table, RDF.type, onto.Table, graph=graph)
        store.add(table, onto.hasName, Literal(name), graph=graph)
        store.add(table, onto.hasTotalRows, Literal(rows), graph=graph)
    store.add(URIRef("http://data/train"), onto.isPartOf, URIRef("http://data/titanic"), graph=graph_a)
    store.add(URIRef("http://data/titanic"), onto.hasName, Literal("titanic"), graph=graph_a)
    store.annotate(
        URIRef("http://data/train"),
        onto.unionableWith,
        URIRef("http://data/heart"),
        onto.withCertainty,
        Literal(0.8),
        graph=graph_a,
    )
    return SPARQLEngine(store)


class TestParser:
    def test_parse_basic_select(self):
        query = parse_query("SELECT ?s WHERE { ?s a kglids:Table }")
        assert [str(v) for v in query.variables] == ["s"]
        assert len(query.where.elements) == 1

    def test_parse_prefix_declaration(self):
        query = parse_query("PREFIX ex: <http://example.org/> SELECT ?s WHERE { ?s ex:p ?o }")
        pattern = query.where.elements[0]
        assert str(pattern.predicate) == "http://example.org/p"

    def test_parse_aggregate_group_order_limit(self):
        query = parse_query(
            "SELECT ?g (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s a ?t } GROUP BY ?g ORDER BY DESC(?n) LIMIT 5 OFFSET 1"
        )
        assert query.has_aggregates()
        assert query.limit == 5 and query.offset == 1
        assert query.group_by and query.order_by

    def test_parse_semicolon_and_comma_abbreviations(self):
        query = parse_query('SELECT * WHERE { ?s kglids:hasName "x" ; a kglids:Table . ?s kglids:reads ?a , ?b }')
        assert len(query.where.elements) == 4

    def test_unknown_prefix_raises(self):
        with pytest.raises(SPARQLSyntaxError):
            parse_query("SELECT ?s WHERE { ?s nope:p ?o }")

    def test_garbage_raises(self):
        with pytest.raises(SPARQLSyntaxError):
            parse_query("SELECT ?s WHERE { ?s @@@ ?o }")

    def test_trailing_tokens_raise(self):
        with pytest.raises(SPARQLSyntaxError):
            parse_query("SELECT ?s WHERE { ?s ?p ?o } garbage garbage")


class TestEvaluation:
    def test_basic_match_and_filter(self, engine):
        result = engine.select(
            'SELECT ?t ?n WHERE { ?t kglids:hasName ?n . FILTER(contains(?n, "rain")) }'
        )
        assert len(result) == 1
        assert result.rows[0]["n"] == "train"

    def test_numeric_filter(self, engine):
        result = engine.select(
            "SELECT ?n WHERE { ?t kglids:hasTotalRows ?r . ?t kglids:hasName ?n . FILTER(?r >= 80) }"
        )
        assert {row["n"] for row in result.rows} == {"train", "games"}

    def test_boolean_operators_in_filter(self, engine):
        result = engine.select(
            'SELECT ?n WHERE { ?t kglids:hasName ?n . ?t kglids:hasTotalRows ?r . '
            'FILTER(?r > 60 && !contains(?n, "game")) }'
        )
        assert [row["n"] for row in result.rows] == ["train"]

    def test_optional_and_bound(self, engine):
        result = engine.select(
            "SELECT ?n WHERE { ?t kglids:hasName ?n . OPTIONAL { ?t kglids:isPartOf ?d } FILTER(!bound(?d)) }"
        )
        assert {row["n"] for row in result.rows} == {"heart", "games", "titanic"}

    def test_union(self, engine):
        result = engine.select(
            'SELECT ?n WHERE { ?t kglids:hasName ?n . { ?t kglids:hasTotalRows ?r . FILTER(?r = 50) } '
            'UNION { ?t kglids:hasTotalRows ?r2 . FILTER(?r2 = 80) } }'
        )
        assert {row["n"] for row in result.rows} == {"heart", "games"}

    def test_named_graph_variable(self, engine):
        result = engine.select("SELECT DISTINCT ?g WHERE { GRAPH ?g { ?t a kglids:Table } }")
        assert len(result) == 2

    def test_named_graph_constant(self, engine):
        result = engine.select(
            "SELECT ?t WHERE { GRAPH <http://g/b> { ?t a kglids:Table } }"
        )
        assert len(result) == 1

    def test_aggregate_count_group_by(self, engine):
        result = engine.select(
            "SELECT ?g (COUNT(?t) AS ?n) WHERE { GRAPH ?g { ?t a kglids:Table } } GROUP BY ?g ORDER BY DESC(?n)"
        )
        assert result.rows[0]["n"] == 2
        assert result.rows[1]["n"] == 1

    def test_aggregate_avg_without_group(self, engine):
        result = engine.select(
            "SELECT (AVG(?r) AS ?mean) WHERE { ?t kglids:hasTotalRows ?r }"
        )
        assert result.rows[0]["mean"] == pytest.approx((100 + 50 + 80) / 3)

    def test_order_by_limit_offset(self, engine):
        result = engine.select(
            "SELECT ?n WHERE { ?t kglids:hasName ?n . ?t kglids:hasTotalRows ?r } ORDER BY DESC(?r) LIMIT 1 OFFSET 1"
        )
        assert [row["n"] for row in result.rows] == ["games"]

    def test_quoted_triple_pattern(self, engine):
        result = engine.select(
            "SELECT ?o ?score WHERE { << ?s kglids:unionableWith ?o >> kglids:withCertainty ?score }"
        )
        assert len(result) == 1
        assert result.rows[0]["score"] == pytest.approx(0.8)

    def test_bind_and_functions(self, engine):
        result = engine.select(
            'SELECT ?upper WHERE { ?t kglids:hasName ?n . FILTER(strstarts(?n, "tr")) BIND(ucase(?n) AS ?upper) }'
        )
        assert result.rows[0]["upper"] == "TRAIN"

    def test_distinct(self, engine):
        result = engine.select("SELECT DISTINCT ?type WHERE { ?t a ?type }")
        assert len(result) == 1

    def test_select_star(self, engine):
        result = engine.select('SELECT * WHERE { ?t kglids:hasName "train" }')
        assert result.variables == ["t"]

    def test_to_table(self, engine):
        table = engine.select("SELECT ?n WHERE { ?t kglids:hasName ?n }").to_table()
        assert table.num_rows == 4
        assert table.column_names == ["n"]
