"""Unit tests for word embeddings, CoLR models, training and vector indexes."""

import numpy as np
import pytest

from repro.embeddings import (
    CoarseGrainedModelSet,
    ColRModel,
    ColRModelSet,
    EmbeddingStore,
    FlatIndex,
    HNSWIndex,
    cosine_similarity,
    generate_training_pairs,
    label_similarity,
    tokenize_label,
    train_colr_model,
)
from repro.embeddings.training import binary_cross_entropy_loss
from repro.types import COLR_TYPES


class TestWordEmbeddings:
    def test_tokenize_label_splits_cases(self):
        assert tokenize_label("patient_age") == ["patient", "age"]
        assert tokenize_label("MaxHeartRate") == ["maximum", "heart", "rate"]
        assert tokenize_label("area-sq-ft") == ["area", "sq", "ft"]
        assert tokenize_label("") == []

    def test_abbreviation_expansion(self):
        assert "quantity" in tokenize_label("order_qty")

    def test_identical_labels_have_similarity_one(self):
        assert label_similarity("age", "Age") == 1.0

    def test_related_labels_score_higher_than_unrelated(self):
        related = label_similarity("patient_age", "age_years")
        unrelated = label_similarity("patient_age", "review_text")
        assert related > unrelated

    def test_similarity_bounds(self):
        for a, b in [("age", "target"), ("gdp", "gdp_billion_usd"), ("", "x")]:
            assert 0.0 <= label_similarity(a, b) <= 1.0

    def test_shared_unit_tokens_help(self):
        assert label_similarity("area_sq_ft", "area_sq_m") > 0.5


class TestCoLR:
    def test_embedding_dimensions(self):
        models = ColRModelSet.pretrained()
        embedding = models.embed_column_values([1, 2, 3], "int")
        assert embedding.shape == (300,)

    def test_empty_column_embeds_to_zeros(self):
        models = ColRModelSet.pretrained()
        assert np.allclose(models.embed_column_values([], "float"), 0.0)

    def test_embedding_is_deterministic(self):
        models_a, models_b = ColRModelSet.pretrained(), ColRModelSet.pretrained()
        values = [1.5, 2.5, 10.0]
        assert np.allclose(
            models_a.embed_column_values(values, "float"),
            models_b.embed_column_values(values, "float"),
        )

    def test_similar_distributions_closer_than_different_scales(self):
        models = ColRModelSet.pretrained()
        rng = np.random.RandomState(0)
        a = models.embed_column_values(rng.normal(30, 5, 200).tolist(), "float")
        b = models.embed_column_values(rng.normal(31, 6, 150).tolist(), "float")
        c = models.embed_column_values(rng.exponential(50000, 150).tolist(), "float")
        assert cosine_similarity(a, b) > cosine_similarity(a, c)

    def test_subsample_stability(self):
        models = ColRModelSet.pretrained()
        rng = np.random.RandomState(1)
        values = rng.normal(100, 10, 1000).tolist()
        full = models.embed_column_values(values, "float")
        sample = models.embed_column_values(values[:100], "float")
        assert cosine_similarity(full, sample) > 0.99

    def test_string_and_entity_columns_distinguishable(self):
        models = ColRModelSet.pretrained()
        names = models.embed_column_values(["James Smith", "Mary Jones"] * 20, "named_entity")
        codes = models.embed_column_values(["X9-11", "QQ-42"] * 20, "named_entity")
        other_names = models.embed_column_values(["Linda Brown", "Robert Davis"] * 20, "named_entity")
        assert cosine_similarity(names, other_names) > cosine_similarity(names, codes)

    def test_table_embedding_layout(self):
        models = ColRModelSet.pretrained()
        column = models.embed_column_values([1, 2, 3], "int")
        table_embedding = models.table_embedding([column], ["int"])
        assert table_embedding.shape == (300 * len(COLR_TYPES),)
        # Only the int block should be non-zero.
        assert np.any(table_embedding[:300] != 0.0)
        assert np.allclose(table_embedding[300:], 0.0)

    def test_dataset_embedding_is_mean(self):
        models = ColRModelSet.pretrained()
        t1 = np.ones(1800)
        t2 = np.zeros(1800)
        assert np.allclose(models.dataset_embedding([t1, t2]), 0.5)

    def test_unknown_type_falls_back_to_string_model(self):
        models = ColRModelSet.pretrained()
        assert models.model_for("mystery") is models.models["string"]

    def test_coarse_grained_model_set_groups_types(self):
        coarse = CoarseGrainedModelSet()
        assert coarse.coarse_type("int") == "numeric"
        assert coarse.model_for("int") is coarse.model_for("float")
        assert coarse.model_for("named_entity") is coarse.model_for("string")

    def test_cosine_similarity_bounds_and_zero_vector(self):
        assert cosine_similarity(np.zeros(3), np.ones(3)) == 0.0
        assert cosine_similarity(np.ones(3), np.ones(3)) == pytest.approx(1.0)
        assert cosine_similarity(np.ones(3), -np.ones(3)) == pytest.approx(0.0)


class TestTraining:
    def test_generated_pairs_are_balanced(self):
        pairs = generate_training_pairs(20, fine_grained_type="float")
        assert sum(pair.label for pair in pairs) == 10

    def test_training_reduces_or_keeps_loss(self):
        model = ColRModel("float")
        pairs = generate_training_pairs(16, fine_grained_type="float")
        losses = train_colr_model(model, pairs, epochs=3)
        assert losses[-1] <= losses[0] + 1e-9

    def test_loss_is_finite_and_positive(self):
        model = ColRModel("string")
        pairs = generate_training_pairs(8, fine_grained_type="string")
        loss = binary_cross_entropy_loss(model, pairs)
        assert 0.0 < loss < 20.0

    def test_empty_pairs_loss_zero(self):
        assert binary_cross_entropy_loss(ColRModel("float"), []) == 0.0


class TestIndexes:
    def _vectors(self, n=30, d=16, seed=0):
        rng = np.random.RandomState(seed)
        return [rng.normal(size=d) for _ in range(n)]

    def test_flat_index_exact_top1(self):
        vectors = self._vectors()
        index = FlatIndex(16)
        for i, vector in enumerate(vectors):
            index.add(f"v{i}", vector)
        results = index.search(vectors[7], k=3)
        assert results[0][0] == "v7"
        assert results[0][1] == pytest.approx(1.0)

    def test_flat_index_dimension_check(self):
        index = FlatIndex(4)
        with pytest.raises(ValueError):
            index.add("x", np.ones(5))

    def test_hnsw_finds_nearest_most_of_the_time(self):
        vectors = self._vectors(n=60)
        index = HNSWIndex(16, m=8, ef_search=32)
        for i, vector in enumerate(vectors):
            index.add(f"v{i}", vector)
        hits = sum(1 for i in range(0, 60, 5) if index.search(vectors[i], k=3)[0][0] == f"v{i}")
        assert hits >= 10  # at least ~80% of probes find their own vector first

    def test_empty_index_search(self):
        assert FlatIndex(4).search(np.ones(4)) == []
        assert HNSWIndex(4).search(np.ones(4)) == []


class TestEmbeddingStore:
    def test_put_get_and_search(self):
        store = EmbeddingStore()
        store.put("column", "a", np.array([1.0, 0.0]))
        store.put("column", "b", np.array([0.0, 1.0]))
        assert store.get("column", "a") is not None
        assert store.get("column", "zzz") is None
        assert store.search("column", np.array([1.0, 0.1]), k=1)[0][0] == "a"
        assert store.count() == 2
        assert store.count("column") == 2
        assert store.estimated_size_bytes() > 0

    def test_overwrite_rebuilds_index(self):
        store = EmbeddingStore()
        store.put("t", "a", np.array([1.0, 0.0]))
        store.put("t", "a", np.array([0.0, 1.0]))
        assert store.count("t") == 1
        assert store.search("t", np.array([0.0, 1.0]), k=1)[0][1] == pytest.approx(1.0)

    def test_namespaces_are_isolated(self):
        store = EmbeddingStore()
        store.put("column", "a", np.ones(3))
        assert store.search("table", np.ones(3)) == []
        assert store.keys("column") == ["a"]
