"""Tests for the AutoML (revised KGpip) component."""

import numpy as np
import pytest

from repro.automl import (
    ESTIMATOR_REGISTRY,
    HYPERPARAMETER_SPACES,
    KGpipAutoML,
    instantiate_estimator,
    sample_configuration,
)
from repro.automl.search_space import default_estimator_names
from repro.datagen import generate_classification_dataset
from repro.kg.storage import KGLiDSStorage


class TestSearchSpace:
    def test_registry_and_spaces_align(self):
        for name in HYPERPARAMETER_SPACES:
            assert name in ESTIMATOR_REGISTRY

    def test_instantiate_with_configuration(self):
        estimator = instantiate_estimator(
            "sklearn.ensemble.RandomForestClassifier", {"n_estimators": 7, "bogus": 1}
        )
        assert estimator.get_params()["n_estimators"] == 7

    def test_instantiate_unknown_estimator(self):
        with pytest.raises(ValueError):
            instantiate_estimator("sklearn.magic.Estimator")

    def test_sample_configuration_within_space(self):
        rng = np.random.RandomState(0)
        configuration = sample_configuration("sklearn.tree.DecisionTreeClassifier", rng)
        space = HYPERPARAMETER_SPACES["sklearn.tree.DecisionTreeClassifier"]
        for parameter, value in configuration.items():
            assert value in space[parameter]

    def test_priors_bias_sampling(self):
        rng = np.random.RandomState(0)
        priors = {"n_neighbors": 9}
        hits = 0
        for _ in range(50):
            configuration = sample_configuration(
                "sklearn.neighbors.KNeighborsClassifier", rng, priors=priors, prior_probability=0.9
            )
            hits += configuration["n_neighbors"] == 9
        assert hits > 30

    def test_default_estimator_names_known(self):
        for name in default_estimator_names():
            assert name in ESTIMATOR_REGISTRY


class TestKGpipAutoML:
    def test_recommendations_from_kg(self, bootstrapped_platform, tiny_benchmark):
        table = tiny_benchmark.lake.tables()[0]
        automl = bootstrapped_platform.kgpip
        match = automl.most_similar_table(table)
        assert match is not None and match[1] > 0.5
        recommendations = automl.recommend_ml_models(table)
        assert recommendations
        assert all(r.estimator_name in ESTIMATOR_REGISTRY for r in recommendations)

    def test_recommendations_without_kg_fall_back(self):
        automl = KGpipAutoML(storage=KGLiDSStorage())
        table, _ = generate_classification_dataset("t", n_rows=40, n_features=3, seed=0)
        recommendations = automl.recommend_ml_models(table)
        assert [r.estimator_name for r in recommendations] == default_estimator_names()[:5]

    def test_hyperparameter_recommendation_from_kg(self, bootstrapped_platform):
        # The synthetic corpus always passes n_estimators / max_depth to RF.
        priors = bootstrapped_platform.recommend_hyperparameters(
            "sklearn.ensemble.RandomForestClassifier"
        )
        assert isinstance(priors, dict)
        if priors:
            assert all(isinstance(name, str) for name in priors)

    def test_search_returns_best_result(self, bootstrapped_platform):
        table, target = generate_classification_dataset("automl_t", n_rows=80, n_features=4, seed=3)
        result = bootstrapped_platform.kgpip.search(
            table, target, time_budget_seconds=10.0, max_evaluations=3, cv=2,
            strategy="random",
        )
        assert result.evaluations >= 1
        assert 0.0 <= result.best_score <= 1.0
        assert result.best_estimator_name in ESTIMATOR_REGISTRY
        assert len(result.trace) == result.evaluations

    def test_lids_priors_flag_changes_sampling(self, bootstrapped_platform):
        table, target = generate_classification_dataset("automl_u", n_rows=60, n_features=3, seed=4)
        informed = KGpipAutoML(
            storage=bootstrapped_platform.storage,
            profiler=bootstrapped_platform.governor.profiler,
            colr_models=bootstrapped_platform.governor.colr_models,
            use_lids_priors=True,
            random_state=1,
        )
        uninformed = KGpipAutoML(
            storage=bootstrapped_platform.storage,
            profiler=bootstrapped_platform.governor.profiler,
            colr_models=bootstrapped_platform.governor.colr_models,
            use_lids_priors=False,
            random_state=1,
        )
        informed_result = informed.search(
            table, target, time_budget_seconds=10.0, max_evaluations=2, cv=2, strategy="random"
        )
        uninformed_result = uninformed.search(
            table, target, time_budget_seconds=10.0, max_evaluations=2, cv=2, strategy="random"
        )
        assert informed_result.evaluations == uninformed_result.evaluations
        assert 0.0 <= informed_result.best_score <= 1.0
        assert 0.0 <= uninformed_result.best_score <= 1.0
