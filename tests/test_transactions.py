"""All-or-nothing governance: undo-log rollback, crash-safe sqlite commits,
fault injection, retry/quarantine, and idempotent shutdown.

Pins the contracts of the transactional-writes redesign:

* a raising ``write_batch`` body rolls the store back to the exact pre-batch
  state — at *every* fault point, swept exhaustively at the store level and
  strided at the governor level (add / refresh / retract / pipelines);
* sqlite commits are journaled transactions: a crash (severed connection,
  uncommitted transaction) at any point recovers to the previous durable
  commit on reopen, with the ``commit_version`` marker intact;
* hypothesis drives random batch workloads through random fault points and
  the rolled-back store is byte-identical, version-identical, and retryable;
* the governor service retries :class:`TransientError` with capped backoff,
  quarantines repeat offenders (:class:`PoisonTableError` fast-fail), and
  fails — never hangs — tickets stuck behind a dead scheduler;
* sqlite ``database is locked`` errors are retried with bounded backoff;
* every ``close()`` (store, governor, client, service) is idempotent.
"""

from __future__ import annotations

import sqlite3
import threading
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.interfaces import LiDSClient
from repro.kg import (
    GovernanceError,
    GovernorService,
    KGGovernor,
    KGLiDSStorage,
    PoisonTableError,
    TransientError,
)
from repro.pipelines.abstraction import PipelineScript
from repro.rdf import (
    DEFAULT_GRAPH,
    FaultInjectingBackend,
    FaultPlan,
    InjectedCrash,
    InjectedFault,
    InMemoryBackend,
    Literal,
    QuadStore,
    SqliteBackend,
    URIRef,
)
from repro.rdf.serialize import serialize_nquads
from repro.tabular import DataLake, Table

EX = "http://example.org/"
G1 = URIRef(EX + "graph/one")
G2 = URIRef(EX + "graph/two")


def u(name: str) -> URIRef:
    return URIRef(EX + name)


def snap(store: QuadStore) -> str:
    return serialize_nquads(store)


def embed_state(storage: KGLiDSStorage):
    """Every stored vector, as comparable bytes."""
    return {
        namespace: {key: vector.tobytes() for key, vector in bucket.items()}
        for namespace, bucket in storage.embeddings._vectors.items()
    }


def make_lake(num_tables: int = 3, rows: int = 8, seed: int = 3, name: str = "txn") -> DataLake:
    """A small lake with overlapping schemas so similarity edges appear."""
    lake = DataLake(name)
    rng = np.random.RandomState(seed)
    for index in range(num_tables):
        dataset = f"ds{index % 2}"
        lake.add_table(
            dataset,
            Table.from_dict(
                f"table_{index}",
                {
                    "amount": list(rng.normal(100, 5, rows)),
                    "quantity": list(rng.randint(1, 50, rows)),
                    "region": ["north", "south", "east", "west"] * (rows // 4),
                },
            ),
        )
    return lake


def seed_store(store: QuadStore) -> None:
    """Committed pre-batch state the sweeps must restore exactly."""
    with store.write_batch():
        store.add(u("s1"), u("p1"), Literal("v1"), graph=G1)
        store.add(u("s1"), u("p2"), Literal(7), graph=G1)
        store.add(u("s2"), u("p1"), u("s1"), graph=G2)
        store.annotate(u("s2"), u("p2"), Literal(0.5), u("score"), Literal(0.9), graph=G2)
        store.add(u("s3"), u("p3"), Literal("default"))


def batch_workload(store: QuadStore) -> None:
    """One batch exercising every undo-logged mutation kind."""
    store.add(u("n1"), u("p1"), Literal("new"), graph=G1)
    store.annotate(u("n1"), u("sim"), u("n2"), u("score"), Literal(0.8), graph=G1)
    store.remove(u("s1"), u("p2"), Literal(7), graph=G1)  # pre-existing triple
    store.add(u("n3"), u("p1"), Literal(1), graph=URIRef(EX + "graph/created"))
    store.remove_graph(G2)  # pre-existing graph
    store.remove_predicate(u("p3"))
    store.add(u("n4"), u("p4"), Literal("tail"), graph=G1)


def faulted_store(path=None):
    inner = SqliteBackend(path) if path is not None else InMemoryBackend()
    backend = FaultInjectingBackend(inner)
    return QuadStore(backend=backend), backend


def count_batch_points(path=None) -> int:
    """Fault-free dry run: how many fault points one batch workload has."""
    store, backend = faulted_store(path)
    seed_store(store)
    baseline = backend.op_count
    with store.write_batch():
        batch_workload(store)
    return backend.op_count - baseline


# ---------------------------------------------------------------------------
# Store-level sweep: every fault point, in-memory
# ---------------------------------------------------------------------------
class TestStoreRollbackSweep:
    def test_workload_has_enough_fault_points(self):
        assert count_batch_points() >= 8  # adds, removes, drop, predicate, commit

    def test_rollback_is_byte_identical_at_every_fault_point(self):
        total = count_batch_points()
        for point in range(1, total + 1):
            store, backend = faulted_store()
            seed_store(store)
            pre, pre_version = snap(store), store.commit_version
            backend.plan = FaultPlan(at=backend.op_count + point)
            with pytest.raises(InjectedFault):
                with store.write_batch():
                    batch_workload(store)
            assert snap(store) == pre, f"divergence after fault point {point}"
            assert store.commit_version == pre_version
            # The rolled-back store is retryable: the same batch now lands
            # identically to one that never saw a failure.
            with store.write_batch():
                batch_workload(store)
            assert store.commit_version == pre_version + 1

    def test_retry_after_rollback_matches_fault_free_run(self):
        clean, _ = faulted_store()
        seed_store(clean)
        with clean.write_batch():
            batch_workload(clean)

        store, backend = faulted_store()
        seed_store(store)
        backend.plan = FaultPlan(at=backend.op_count + 4)
        with pytest.raises(InjectedFault):
            with store.write_batch():
                batch_workload(store)
        with store.write_batch():
            batch_workload(store)
        assert snap(store) == snap(clean)

    def test_nested_batches_roll_back_as_one(self):
        store, backend = faulted_store()
        seed_store(store)
        pre = snap(store)
        with pytest.raises(InjectedFault):
            with store.write_batch():
                store.add(u("outer"), u("p1"), Literal(1), graph=G1)
                with store.write_batch():  # nested: same transaction
                    store.add(u("inner"), u("p1"), Literal(2), graph=G1)
                backend.plan = FaultPlan(at=backend.op_count + 1)
                store.add(u("post"), u("p1"), Literal(3), graph=G1)
        assert snap(store) == pre

    def test_version_is_monotonic_across_failures(self):
        store, backend = faulted_store()
        seed_store(store)
        versions = [store.commit_version]
        for attempt in range(3):
            backend.plan = FaultPlan(at=backend.op_count + 2)
            with pytest.raises(InjectedFault):
                with store.write_batch():
                    batch_workload(store)
            versions.append(store.commit_version)
        with store.write_batch():
            store.add(u("ok"), u("p1"), Literal("done"), graph=G1)
        versions.append(store.commit_version)
        assert versions == sorted(versions)
        assert versions[-1] == versions[0] + 1  # failed batches consumed none

    def test_undo_disabled_falls_back_to_flush_and_advance(self):
        store, _ = faulted_store()
        store.undo_enabled = False
        seed_store(store)
        pre_version = store.commit_version
        with pytest.raises(RuntimeError, match="legacy"):
            with store.write_batch():
                store.add(u("n1"), u("p1"), Literal("kept"), graph=G1)
                raise RuntimeError("legacy abort")
        # Legacy semantics: the partial batch is kept and the version advances.
        assert store.contains(u("n1"), u("p1"), Literal("kept"), graph=G1)
        assert store.commit_version == pre_version + 1


# ---------------------------------------------------------------------------
# Hypothesis: random workloads, random fault points
# ---------------------------------------------------------------------------
SUBJECTS = [u(f"hs{i}") for i in range(4)]
PREDICATES = [u(f"hp{i}") for i in range(3)]
GRAPHS = [DEFAULT_GRAPH, G1, G2]

op_strategy = st.one_of(
    st.tuples(
        st.just("add"),
        st.sampled_from(SUBJECTS),
        st.sampled_from(PREDICATES),
        st.integers(min_value=0, max_value=5),
        st.sampled_from(GRAPHS),
    ),
    st.tuples(
        st.just("remove"),
        st.sampled_from(SUBJECTS),
        st.sampled_from(PREDICATES),
        st.integers(min_value=0, max_value=5),
        st.sampled_from(GRAPHS),
    ),
    st.tuples(
        st.just("annotate"),
        st.sampled_from(SUBJECTS),
        st.sampled_from(PREDICATES),
        st.integers(min_value=0, max_value=5),
        st.sampled_from(GRAPHS),
    ),
    st.tuples(st.just("remove_graph"), st.sampled_from([G1, G2])),
    st.tuples(st.just("remove_predicate"), st.sampled_from(PREDICATES)),
)


def apply_ops(store: QuadStore, ops) -> None:
    for op in ops:
        if op[0] == "add":
            store.add(op[1], op[2], Literal(op[3]), graph=op[4])
        elif op[0] == "remove":
            store.remove(op[1], op[2], Literal(op[3]), graph=op[4])
        elif op[0] == "annotate":
            store.annotate(op[1], op[2], Literal(op[3]), u("score"), Literal(0.5), graph=op[4])
        elif op[0] == "remove_graph":
            store.remove_graph(op[1])
        elif op[0] == "remove_predicate":
            store.remove_predicate(op[1])


class TestHypothesisRollback:
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_any_fault_point_rolls_back_and_retries_clean(self, data):
        ops = data.draw(st.lists(op_strategy, min_size=1, max_size=12))

        clean, clean_backend = faulted_store()
        seed_store(clean)
        baseline = clean_backend.op_count
        with clean.write_batch():
            apply_ops(clean, ops)
        total = clean_backend.op_count - baseline  # >= 1: commit always ticks

        point = data.draw(st.integers(min_value=1, max_value=total))
        store, backend = faulted_store()
        seed_store(store)
        pre, pre_version = snap(store), store.commit_version
        backend.plan = FaultPlan(at=backend.op_count + point)
        with pytest.raises(InjectedFault):
            with store.write_batch():
                apply_ops(store, ops)
        assert snap(store) == pre
        assert store.commit_version == pre_version
        with store.write_batch():
            apply_ops(store, ops)
        assert snap(store) == snap(clean)
        assert store.commit_version == pre_version + 1


# ---------------------------------------------------------------------------
# Sqlite: transactional commits, crash recovery
# ---------------------------------------------------------------------------
class TestSqliteCrashSafety:
    def test_raise_sweep_rolls_back_memory_and_disk(self, tmp_path):
        total = count_batch_points(tmp_path / "count.sqlite")
        for point in range(1, total + 1, 2):
            path = tmp_path / f"raise_{point}.sqlite"
            store, backend = faulted_store(path)
            seed_store(store)
            pre, pre_version = snap(store), store.commit_version
            backend.plan = FaultPlan(at=backend.op_count + point)
            with pytest.raises(InjectedFault):
                with store.write_batch():
                    batch_workload(store)
            assert snap(store) == pre
            assert store.commit_version == pre_version
            store.close()
            reopened = QuadStore(backend=SqliteBackend(path))
            assert snap(reopened) == pre
            assert reopened.commit_version == pre_version
            reopened.close()

    def test_crash_sweep_recovers_to_previous_commit_on_reopen(self, tmp_path):
        total = count_batch_points(tmp_path / "count.sqlite")
        for point in range(1, total + 1, 2):
            path = tmp_path / f"crash_{point}.sqlite"
            store, backend = faulted_store(path)
            seed_store(store)
            pre, pre_version = snap(store), store.commit_version
            backend.plan = FaultPlan(at=backend.op_count + point, kind="crash")
            with pytest.raises(InjectedCrash):
                with store.write_batch():
                    batch_workload(store)
            assert backend.fired is not None
            # The process "died": reopen the durable path from scratch.
            reopened = QuadStore(backend=SqliteBackend(path))
            assert snap(reopened) == pre, f"torn state after crash point {point}"
            assert reopened.commit_version == pre_version
            assert reopened.recovery["commit_version"] == pre_version
            # The survivor keeps working: the lost batch replays cleanly.
            with reopened.write_batch():
                batch_workload(reopened)
            assert reopened.commit_version == pre_version + 1
            reopened.close()

    def test_kill_mid_flush_recovers_via_journal(self, tmp_path):
        """Sever the connection with batch rows already written but not
        committed: sqlite's journal must roll the torn flush back."""
        path = tmp_path / "midflush.sqlite"
        store = QuadStore(backend=SqliteBackend(path))
        seed_store(store)
        pre, pre_version = snap(store), store.commit_version
        backend = store.backend

        backend.begin_batch()
        store._in_batch = True  # emulate an open store batch for realism
        triple = backend.dictionary.encode_triple(u("torn"), u("p1"), Literal("row"))
        backend.ensure_index(G1).add(triple)
        backend.quad_added(G1, triple)
        backend._flush_rows()  # rows now sit in the open, uncommitted txn
        backend.crash()  # kill -9: no COMMIT ever runs

        reopened = QuadStore(backend=SqliteBackend(path))
        assert snap(reopened) == pre
        assert reopened.commit_version == pre_version
        recovery = reopened.recovery
        assert recovery["commit_version"] == pre_version
        assert recovery["discarded_shards"] == []
        reopened.close()

    def test_recovery_discards_torn_shard_catalog_rows(self, tmp_path):
        """A catalog row pointing at a missing shard table (a torn partial
        commit from an older journal mode) is discarded on open."""
        path = tmp_path / "torn.sqlite"
        store = QuadStore(backend=SqliteBackend(path))
        seed_store(store)
        pre = snap(store)
        store.close()

        connection = sqlite3.connect(path)
        connection.execute(
            "INSERT INTO graphs (id, name) VALUES (999, 'http://example.org/ghost')"
        )
        connection.execute("CREATE TABLE quads_777 (s, p, o)")  # orphan table
        connection.commit()
        connection.close()

        reopened = QuadStore(backend=SqliteBackend(path))
        recovery = reopened.recovery
        assert "http://example.org/ghost" in recovery["discarded_shards"]
        assert "quads_777" in recovery["dropped_orphan_tables"]
        assert snap(reopened) == pre
        reopened.close()

    def test_commit_version_marker_survives_reopen(self, tmp_path):
        path = tmp_path / "marker.sqlite"
        store = QuadStore(backend=SqliteBackend(path))
        for round_index in range(3):
            with store.write_batch():
                store.add(u(f"r{round_index}"), u("p1"), Literal(round_index), graph=G1)
        assert store.commit_version == 3
        store.close()
        reopened = QuadStore(backend=SqliteBackend(path))
        assert reopened.commit_version == 3  # resumes, not resets
        reopened.close()


# ---------------------------------------------------------------------------
# Sqlite: transient lock retry (bounded backoff)
# ---------------------------------------------------------------------------
class _FlakyConnection:
    """Proxy that fails the first ``failures`` execute calls as locked."""

    def __init__(self, inner, failures: int, message: str = "database is locked"):
        self._inner = inner
        self.failures = failures
        self.message = message
        self.attempts = 0

    def execute(self, *args, **kwargs):
        self.attempts += 1
        if self.attempts <= self.failures:
            raise sqlite3.OperationalError(self.message)
        return self._inner.execute(*args, **kwargs)

    def executemany(self, *args, **kwargs):
        self.attempts += 1
        if self.attempts <= self.failures:
            raise sqlite3.OperationalError(self.message)
        return self._inner.executemany(*args, **kwargs)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestSqliteLockRetry:
    def test_locked_execute_is_retried_until_it_succeeds(self, tmp_path):
        backend = SqliteBackend(tmp_path / "lock.sqlite")
        backend.lock_retry_delay = 0.001
        flaky = _FlakyConnection(backend._connection, failures=2)
        backend._connection = flaky
        cursor = backend._execute_retry("SELECT 1")
        assert cursor.fetchone() == (1,)
        assert flaky.attempts == 3
        backend._connection = flaky._inner
        backend.close()

    def test_retries_are_bounded(self, tmp_path):
        backend = SqliteBackend(tmp_path / "lock.sqlite")
        backend.lock_retry_delay = 0.001
        backend.lock_retries = 3
        flaky = _FlakyConnection(backend._connection, failures=99)
        backend._connection = flaky
        with pytest.raises(sqlite3.OperationalError, match="locked"):
            backend._execute_retry("SELECT 1")
        assert flaky.attempts == backend.lock_retries
        backend._connection = flaky._inner
        backend.close()

    def test_non_lock_errors_are_not_retried(self, tmp_path):
        backend = SqliteBackend(tmp_path / "lock.sqlite")
        flaky = _FlakyConnection(
            backend._connection, failures=99, message="no such table: nope"
        )
        backend._connection = flaky
        with pytest.raises(sqlite3.OperationalError, match="no such table"):
            backend._execute_retry("SELECT 1")
        assert flaky.attempts == 1
        backend._connection = flaky._inner
        backend.close()

    def test_writer_waits_out_a_real_cross_connection_lock(self, tmp_path):
        path = tmp_path / "contended.sqlite"
        backend = SqliteBackend(path)
        backend.lock_retry_delay = 0.01
        backend.lock_retries = 20
        store = QuadStore(backend=backend)

        holder = sqlite3.connect(path, check_same_thread=False)
        holder.execute("BEGIN IMMEDIATE")

        def release_soon():
            time.sleep(0.08)
            holder.commit()
            holder.close()

        thread = threading.Thread(target=release_soon)
        thread.start()
        with store.write_batch():  # BEGIN IMMEDIATE must wait out the holder
            store.add(u("contended"), u("p1"), Literal(1), graph=G1)
        thread.join()
        assert store.contains(u("contended"), u("p1"), Literal(1), graph=G1)
        store.close()


# ---------------------------------------------------------------------------
# Embeddings ride the same transaction
# ---------------------------------------------------------------------------
class TestEmbeddingTransactions:
    def test_embedding_writes_roll_back_with_the_graph(self):
        storage = KGLiDSStorage()
        storage.embeddings.put("column", "keep", np.ones(4))
        version = storage.embeddings.version
        with pytest.raises(RuntimeError, match="boom"):
            with storage.transaction():
                storage.graph.add(u("s"), u("p"), Literal(1), graph=G1)
                storage.embeddings.put("column", "new", np.zeros(4))
                storage.embeddings.put("column", "keep", np.full(4, 9.0))
                storage.embeddings.remove("column", "keep")
                raise RuntimeError("boom")
        assert storage.embeddings.get("column", "new") is None
        np.testing.assert_array_equal(storage.embeddings.get("column", "keep"), np.ones(4))
        assert storage.embeddings.version == version
        assert not storage.graph.contains(u("s"), u("p"), Literal(1), graph=G1)
        # ANN search agrees with the rolled-back vectors.
        results = storage.embeddings.search("column", np.ones(4), k=5)
        assert [key for key, _ in results] == ["keep"]

    def test_embedding_commit_keeps_writes_and_version(self):
        storage = KGLiDSStorage()
        before = storage.embeddings.version
        with storage.transaction():
            storage.embeddings.put("column", "kept", np.ones(3))
        assert storage.embeddings.get("column", "kept") is not None
        assert storage.embeddings.version > before


# ---------------------------------------------------------------------------
# Governor-level sweeps: add / refresh / retract / pipelines
# ---------------------------------------------------------------------------
def faulted_governor():
    backend = FaultInjectingBackend(InMemoryBackend())
    governor = KGGovernor(storage=KGLiDSStorage(graph=QuadStore(backend=backend)))
    return governor, backend


def strided(total: int, samples: int = 8):
    """A spread of fault points across [1, total], always including the
    first, last (the commit boundary) and second-to-last points."""
    stride = max(1, total // samples)
    points = set(range(1, total + 1, stride))
    points.update({1, max(1, total - 1), total})
    return sorted(points)


def governor_state(governor: KGGovernor):
    return (
        snap(governor.storage.graph),
        embed_state(governor.storage),
        sorted(governor._profiles_by_key),
        dict(governor._fingerprints_by_key),
        sorted(governor._abstractions_by_id),
    )


def sweep_governor_mutation(prepare, mutate, verify_scratch):
    """Drive ``mutate`` once per strided fault point over fresh governors.

    ``prepare(governor)`` builds committed pre-state; ``mutate(governor)``
    is the faulted operation; ``verify_scratch()`` returns the expected
    post-state of a successful retry (a scratch governor that never failed).
    """
    probe, probe_backend = faulted_governor()
    prepare(probe)
    baseline = probe_backend.op_count
    mutate(probe)
    total = probe_backend.op_count - baseline
    assert total >= 3

    expected_after_retry = verify_scratch()
    for point in strided(total):
        governor, backend = faulted_governor()
        prepare(governor)
        pre = governor_state(governor)
        backend.plan = FaultPlan(at=backend.op_count + point)
        with pytest.raises(InjectedFault):
            mutate(governor)
        assert governor_state(governor) == pre, f"fault point {point} left residue"
        # Disarmed, the same mutation must land exactly like a clean run.
        mutate(governor)
        assert (snap(governor.storage.graph), embed_state(governor.storage)) == (
            expected_after_retry
        ), f"retry after fault point {point} diverged"


class TestGovernorFaultSweeps:
    def test_add_data_lake_is_all_or_nothing(self):
        def scratch():
            governor, _ = faulted_governor()
            governor.add_data_lake(make_lake())
            return snap(governor.storage.graph), embed_state(governor.storage)

        sweep_governor_mutation(
            prepare=lambda governor: None,
            mutate=lambda governor: governor.add_data_lake(make_lake()),
            verify_scratch=scratch,
        )

    def test_refresh_table_is_one_atomic_commit(self):
        changed = Table.from_dict(
            "table_0",
            {
                "amount": [1.0, 2.0, 3.0, 4.0],
                "quantity": [9, 9, 9, 9],
                "region": ["north", "south", "east", "west"],
            },
        )

        def prepare(governor):
            governor.add_data_lake(make_lake())

        def scratch():
            governor, _ = faulted_governor()
            prepare(governor)
            governor.refresh_table(changed, dataset_name="ds0")
            return snap(governor.storage.graph), embed_state(governor.storage)

        sweep_governor_mutation(
            prepare=prepare,
            mutate=lambda governor: governor.refresh_table(changed, dataset_name="ds0"),
            verify_scratch=scratch,
        )

    def test_retract_table_is_all_or_nothing(self):
        def prepare(governor):
            governor.add_data_lake(make_lake())

        def scratch():
            governor, _ = faulted_governor()
            prepare(governor)
            governor.retract_table("ds0", "table_0")
            return snap(governor.storage.graph), embed_state(governor.storage)

        sweep_governor_mutation(
            prepare=prepare,
            mutate=lambda governor: governor.retract_table("ds0", "table_0"),
            verify_scratch=scratch,
        )

    def test_add_pipelines_is_all_or_nothing(self, example_pipeline_source):
        scripts = [
            PipelineScript(
                "txn_p1", example_pipeline_source, dataset_name="titanic", votes=3
            )
        ]

        def prepare(governor):
            governor.add_data_lake(make_lake())

        def scratch():
            governor, _ = faulted_governor()
            prepare(governor)
            governor.add_pipelines(scripts)
            return snap(governor.storage.graph), embed_state(governor.storage)

        sweep_governor_mutation(
            prepare=prepare,
            mutate=lambda governor: governor.add_pipelines(scripts),
            verify_scratch=scratch,
        )

    def test_failed_refresh_preserves_profile_lookup(self):
        governor, backend = faulted_governor()
        governor.add_data_lake(make_lake())
        profile_before = governor.table_profile("ds0", "table_0")
        assert profile_before is not None
        changed = Table.from_dict("table_0", {"amount": [1.0, 2.0]})
        backend.plan = FaultPlan(at=backend.op_count + 5)
        with pytest.raises(InjectedFault):
            governor.refresh_table(changed, dataset_name="ds0")
        assert governor.table_profile("ds0", "table_0") is profile_before


# ---------------------------------------------------------------------------
# Service: retry, quarantine, fail-not-hang
# ---------------------------------------------------------------------------
class TestServiceResilience:
    def test_transient_errors_are_retried_until_success(self):
        service = GovernorService(max_batch_tables=4)
        real = service.governor.add_data_lake
        try:
            calls = {"count": 0}

            def flaky(lake, **kwargs):
                calls["count"] += 1
                if calls["count"] <= 2:
                    raise TransientError("database is locked (simulated)")
                return real(lake, **kwargs)

            service.governor.add_data_lake = flaky
            service.retry_backoff = 0.001
            ticket = service.submit_lake(make_lake(2))
            report = ticket.result(timeout=120)
            assert report.num_tables_profiled == 2
            assert calls["count"] == 3
            assert service.stats["retries"] == 2
            assert service.stats["failed"] == 0
        finally:
            service.governor.__dict__.pop("add_data_lake", None)
            service.close()

    def test_exhausted_transient_retries_fail_the_ticket(self):
        service = GovernorService(max_batch_tables=4)
        try:
            service.retry_backoff = 0.001
            service.max_transient_retries = 2
            boom = TransientError("always locked")

            def always_locked(lake, **kwargs):
                raise boom

            service.governor.add_data_lake = always_locked
            ticket = service.submit_lake(make_lake(2))
            with pytest.raises(TransientError):
                ticket.result(timeout=120)
            assert service.stats["retries"] == 2  # bounded: not infinite
        finally:
            service.governor.__dict__.pop("add_data_lake", None)
            service.close()

    def test_repeat_offenders_are_quarantined_then_fast_failed(self):
        service = GovernorService(max_batch_tables=4)
        try:
            service.retry_backoff = 0.001
            service.quarantine_after = 2
            boom = ValueError("poison table")

            def poisoned(lake, **kwargs):
                raise boom

            service.governor.add_data_lake = poisoned
            table = Table.from_dict("bad", {"x": [1, 2, 3]})

            for _ in range(service.quarantine_after):
                ticket = service.submit_table(table, "dsq")
                assert ticket.exception(timeout=120) is boom
            assert ("table", "dsq", "bad") in service.quarantined

            # Quarantined: fails fast with PoisonTableError, the governor
            # is not even called.
            service.governor.__dict__.pop("add_data_lake", None)
            calls = {"count": 0}
            real = service.governor.add_data_lake

            def counting(lake, **kwargs):
                calls["count"] += 1
                return real(lake, **kwargs)

            service.governor.add_data_lake = counting
            ticket = service.submit_table(table, "dsq")
            error = ticket.exception(timeout=120)
            assert isinstance(error, PoisonTableError)
            assert error.key == ("table", "dsq", "bad")
            assert error.cause is boom
            assert calls["count"] == 0
            assert service.stats["quarantined"] >= 1

            # Lifting the quarantine lets the (fixed) table through.
            service.clear_quarantine(("table", "dsq", "bad"))
            assert service.quarantined == []
            ticket = service.submit_table(table, "dsq")
            report = ticket.result(timeout=120)
            assert report.num_tables_profiled == 1
            assert calls["count"] == 1
        finally:
            service.governor.__dict__.pop("add_data_lake", None)
            service.close()

    def test_quarantine_reasons_expose_last_error_per_key(self):
        service = GovernorService(max_batch_tables=4)
        try:
            service.retry_backoff = 0.001
            service.quarantine_after = 2
            boom = ValueError("disk ate the table")

            def poisoned(lake, **kwargs):
                raise boom

            service.governor.add_data_lake = poisoned
            table = Table.from_dict("bad", {"x": [1, 2]})
            for _ in range(service.quarantine_after):
                service.submit_table(table, "dsr").exception(timeout=120)

            reasons = service.quarantine_reasons
            assert reasons == {("table", "dsr", "bad"): boom}
            # The property hands back a snapshot, not the live ledger.
            reasons.clear()
            assert ("table", "dsr", "bad") in service.quarantine_reasons
        finally:
            service.governor.__dict__.pop("add_data_lake", None)
            service.close()

    def test_external_quarantine_fast_fails_and_clears(self):
        # Callers (the lake crawler) can quarantine a key they failed to
        # even load, without the governor ever seeing the table.
        service = GovernorService(max_batch_tables=4)
        try:
            cause = OSError("short read")
            service.quarantine(("table", "dse", "hurt"), cause)
            assert service.quarantine_reasons[("table", "dse", "hurt")] is cause

            table = Table.from_dict("hurt", {"x": [1.0]})
            error = service.submit_table(table, "dse").exception(timeout=120)
            assert isinstance(error, PoisonTableError)
            assert error.cause is cause

            service.clear_quarantine(("table", "dse", "hurt"))
            report = service.submit_table(table, "dse").result(timeout=120)
            assert report.num_tables_profiled == 1
        finally:
            service.close()

    def test_clear_all_quarantines_resets_failure_counters(self):
        # clear_quarantine(None) lifts every key AND zeroes the strike
        # counters: a cleared table gets a full fresh allowance before it
        # can be quarantined again.
        service = GovernorService(max_batch_tables=4)
        try:
            service.retry_backoff = 0.001
            service.quarantine_after = 2
            boom = ValueError("poison")

            def poisoned(lake, **kwargs):
                raise boom

            service.governor.add_data_lake = poisoned
            table_a = Table.from_dict("a", {"x": [1]})
            table_b = Table.from_dict("b", {"y": [2]})
            for table in (table_a, table_b):
                for _ in range(service.quarantine_after):
                    service.submit_table(table, "dsc").exception(timeout=120)
            assert len(service.quarantined) == 2

            service.clear_quarantine()
            assert service.quarantined == []
            assert service.quarantine_reasons == {}

            # Still broken: one more failure must NOT re-quarantine —
            # the counter restarted from zero.
            service.submit_table(table_a, "dsc").exception(timeout=120)
            assert service.quarantined == []
            # The second strike after the reset does.
            service.submit_table(table_a, "dsc").exception(timeout=120)
            assert ("table", "dsc", "a") in service.quarantined

            # Fixed tables resubmit cleanly after a clear.
            service.governor.__dict__.pop("add_data_lake", None)
            service.clear_quarantine(("table", "dsc", "a"))
            report = service.submit_table(table_a, "dsc").result(timeout=120)
            assert report.num_tables_profiled == 1
        finally:
            service.governor.__dict__.pop("add_data_lake", None)
            service.close()

    def test_one_poison_table_does_not_quarantine_batch_mates(self):
        service = GovernorService(max_batch_tables=8)
        try:
            service.retry_backoff = 0.001
            real = service.governor.add_data_lake

            def poison_only_bad(lake, **kwargs):
                if any(table.name == "bad" for table in lake.tables()):
                    raise ValueError("poison")
                return real(lake, **kwargs)

            service.governor.add_data_lake = poison_only_bad
            service.pause()  # pile the submissions into one coalesced batch
            good_ticket = service.submit_table(Table.from_dict("good", {"x": [1, 2]}), "dsb")
            bad_ticket = service.submit_table(Table.from_dict("bad", {"y": [3, 4]}), "dsb")
            service.resume()
            # The coalesced batch fails, splits, and each table settles alone.
            assert good_ticket.result(timeout=120).num_tables_profiled == 1
            assert isinstance(bad_ticket.exception(timeout=120), ValueError)
            assert service.quarantined == []  # one failure < quarantine_after
        finally:
            service.governor.__dict__.pop("add_data_lake", None)
            service.close()

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_dead_scheduler_fails_tickets_instead_of_hanging(self):
        service = GovernorService(max_batch_tables=4)
        try:

            def kill_scheduler(kind, batch):
                raise SystemExit("scheduler dies")

            service._execute = kill_scheduler
            service.pause()
            first = service.submit_table(Table.from_dict("t1", {"x": [1]}), "dsx")
            second = service.submit_table(Table.from_dict("t2", {"x": [2]}), "dsx")
            service.resume()
            # Both tickets fail (they ride the in-flight batch that killed
            # the scheduler; the safety net fails them) — neither hangs.
            assert first.wait(timeout=120)
            assert second.wait(timeout=120)
            assert isinstance(second.exception(), GovernanceError)
            # New submissions are refused outright.
            with pytest.raises(GovernanceError, match="scheduler"):
                service.submit_table(Table.from_dict("t3", {"x": [3]}), "dsx")
            # close() returns instead of waiting on a thread that will never
            # drain the queue.
            service.close(timeout=120)
            assert service.closed
        finally:
            if not service.closed:
                service.close()


# ---------------------------------------------------------------------------
# Idempotent shutdown
# ---------------------------------------------------------------------------
class TestIdempotentClose:
    def test_quad_store_double_close(self, tmp_path):
        for store in (
            QuadStore(),
            QuadStore(backend=SqliteBackend(tmp_path / "close.sqlite")),
        ):
            store.add(u("s"), u("p"), Literal(1), graph=G1)
            store.close()
            store.close()  # second close is a no-op, not an error

    def test_close_after_failed_batch(self, tmp_path):
        path = tmp_path / "failed.sqlite"
        store, backend = faulted_store(path)
        seed_store(store)
        backend.plan = FaultPlan(at=backend.op_count + 3)
        with pytest.raises(InjectedFault):
            with store.write_batch():
                batch_workload(store)
        store.close()
        store.close()
        reopened = QuadStore(backend=SqliteBackend(path))
        assert reopened.commit_version == 1
        reopened.close()

    def test_governor_double_close(self):
        governor = KGGovernor()
        governor.add_data_lake(make_lake(2))
        governor.close()
        governor.close()

    def test_client_double_close_and_quarantine_passthrough(self):
        service = GovernorService(max_batch_tables=4)
        client = LiDSClient(service)
        assert client.quarantined == []
        client.clear_quarantine()  # no-op, never raises
        with pytest.raises(RuntimeError, match="close the GovernorService"):
            client.close()  # service still live
        service.close()
        client.close()
        client.close()

    def test_plain_governor_client_quarantine_is_empty(self):
        client = LiDSClient(KGGovernor())
        assert client.quarantined == []
        client.clear_quarantine("anything")
        client.close()
        client.close()
