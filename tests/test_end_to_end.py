"""End-to-end integration tests over the bootstrapped platform.

These mirror the heart-failure walkthrough of Section 5: search for datasets,
discover unionable tables, inspect libraries and pipelines, get cleaning /
transformation / model recommendations, and run the AutoML search — all
against one LiDS graph built from a synthetic lake plus pipeline corpus.
"""

import pytest

from repro.automation.operations import CLEANING_OPERATIONS, SCALING_OPERATIONS
from repro.datagen import generate_classification_dataset
from repro.eval import average_precision_recall_at_k
from repro.kg.ontology import DATASET_GRAPH, LiDSOntology
from repro.ml import RandomForestClassifier
from repro.ml.model_selection import cross_val_f1


class TestEndToEndScenario:
    def test_discovery_accuracy_on_ground_truth(self, bootstrapped_platform, tiny_benchmark):
        rankings = {}
        for query in tiny_benchmark.query_tables:
            result = bootstrapped_platform.get_unionable_tables(query[0], query[1], k=10)
            rankings[query] = list(zip(result.column("dataset"), result.column("table")))
        ground_truth = {query: tiny_benchmark.ground_truth[query] for query in tiny_benchmark.query_tables}
        metrics = average_precision_recall_at_k(rankings, ground_truth, [1, 2])
        precision_at_1, _ = metrics[1]
        _, recall_at_2 = metrics[2]
        assert precision_at_1 >= 0.6
        assert recall_at_2 >= 0.6

    def test_lids_graph_is_well_typed(self, bootstrapped_platform):
        store = bootstrapped_platform.storage.graph
        ontology = LiDSOntology
        # Every column node has a fine-grained type and a parent table.
        from repro.rdf import RDF

        for triple in store.triples(None, RDF.type, ontology.Column, graph=DATASET_GRAPH):
            column = triple.subject
            assert store.value(column, ontology.hasFineGrainedType, graph=DATASET_GRAPH) is not None
            assert store.value(column, ontology.isPartOf, graph=DATASET_GRAPH) is not None

    def test_every_pipeline_has_its_own_named_graph(self, bootstrapped_platform):
        store = bootstrapped_platform.storage.graph
        from repro.rdf import RDF

        pipeline_graphs = [g for g in store.graphs() if "pipeline/graph/" in str(g)]
        pipelines = set()
        for graph in pipeline_graphs:
            members = list(store.triples(None, RDF.type, LiDSOntology.Pipeline, graph=graph))
            assert len(members) == 1
            pipelines.add(members[0].subject)
        assert len(pipelines) == len(pipeline_graphs)

    def test_on_demand_cleaning_improves_or_matches_dropping_rows(self, bootstrapped_platform):
        table, target = generate_classification_dataset(
            "e2e_cleaning", n_rows=140, n_features=5, missing_rate=0.25, seed=21
        )
        recommendations = bootstrapped_platform.recommend_cleaning_operations(table)
        assert recommendations[0][0] in CLEANING_OPERATIONS
        cleaned = bootstrapped_platform.apply_cleaning_operations(recommendations, table)
        X_cleaned, _ = cleaned.to_feature_matrix(target=target)
        y_cleaned = cleaned.target_vector(target)
        baseline_table = table.drop_rows_with_missing()
        X_baseline, _ = baseline_table.to_feature_matrix(target=target)
        y_baseline = baseline_table.target_vector(target)
        model = RandomForestClassifier(n_estimators=5, max_depth=6)
        cleaned_f1 = cross_val_f1(model, X_cleaned, y_cleaned, cv=3)
        baseline_f1 = cross_val_f1(model, X_baseline, y_baseline, cv=3) if len(y_baseline) >= 6 else 0.0
        # Cleaning keeps every row, so it must stay in the same ballpark as the
        # drop-nulls baseline (which here retains only ~25% of the rows and is
        # therefore high-variance) and produce a usable model outright.
        assert cleaned_f1 >= max(0.4, baseline_f1 - 0.25)

    def test_transformation_recommendation_round_trip(self, bootstrapped_platform):
        table, target = generate_classification_dataset(
            "e2e_transform", n_rows=100, n_features=4, skewed_features=2, scale_spread=100.0, seed=22
        )
        recommendation = bootstrapped_platform.recommend_transformations(table, target=target)
        assert recommendation.scaler in SCALING_OPERATIONS
        transformed = bootstrapped_platform.apply_transformations(recommendation, table, target=target)
        # The target column is untouched and all features remain usable.
        assert transformed.column(target).values == table.column(target).values
        X, _ = transformed.to_feature_matrix(target=target)
        assert X.shape[0] == table.num_rows

    def test_automl_search_beats_trivial_baseline(self, bootstrapped_platform):
        table, target = generate_classification_dataset(
            "e2e_automl", n_rows=120, n_features=5, seed=23
        )
        result = bootstrapped_platform.automl(
            table, target, time_budget_seconds=20.0, max_evaluations=4, cv=2
        )
        assert result.strategy == "evolution"
        assert result.best_score > 0.4
        assert result.best_estimator_name
        assert result.best_genome

    def test_statistics_are_consistent(self, bootstrapped_platform, tiny_benchmark):
        stats = bootstrapped_platform.statistics()
        assert stats["num_embeddings"] >= tiny_benchmark.num_tables
        assert stats["num_graphs"] >= tiny_benchmark.num_tables  # pipeline graphs + dataset graph
