"""Unit tests for CSV/JSON I/O and the DataLake container."""

import json

import pytest

from repro.tabular import DataLake, DatasetSource, Table, read_csv, read_json_records, write_csv
from repro.tabular.io import table_from_records


class TestCSVRoundTrip:
    def test_write_and_read_csv(self, tmp_path, titanic_table):
        path = write_csv(titanic_table, tmp_path / "train.csv")
        loaded = read_csv(path, dataset="titanic")
        assert loaded.shape == titanic_table.shape
        assert loaded.column("Age").values[0] == 22
        # Missing cells survive the round trip.
        assert loaded.column("Age").missing_count() == titanic_table.column("Age").missing_count()

    def test_read_csv_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        assert read_csv(path).num_rows == 0

    def test_read_csv_without_parsing(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1,x\n2,y\n")
        table = read_csv(path, parse=False)
        assert table.column("a").values == ["1", "2"]


class TestJSON:
    def test_read_json_records(self, tmp_path):
        records = [{"a": 1, "b": "x"}, {"a": 2}, {"b": "z", "c": True}]
        path = tmp_path / "data.json"
        path.write_text(json.dumps(records))
        table = read_json_records(path)
        assert table.shape == (3, 3)
        assert table.column("a").values[2] is None

    def test_read_json_rejects_non_array(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"a": 1}))
        with pytest.raises(ValueError):
            read_json_records(path)

    def test_table_from_records_preserves_key_order(self):
        table = table_from_records("t", [{"b": 1, "a": 2}, {"a": 3, "c": 4}])
        assert table.column_names == ["b", "a", "c"]


class TestDatasetSource:
    def test_add_and_lookup(self, titanic_table):
        source = DatasetSource("titanic", [titanic_table])
        assert source.table("train") is titanic_table
        assert source.has_table("train")
        assert len(source) == 1

    def test_duplicate_table_rejected(self, titanic_table):
        source = DatasetSource("titanic", [titanic_table])
        with pytest.raises(ValueError):
            source.add_table(titanic_table)

    def test_missing_table_raises(self):
        with pytest.raises(KeyError):
            DatasetSource("d").table("x")


class TestDataLake:
    def test_counts(self, small_lake):
        assert len(small_lake) == 2
        assert small_lake.num_tables == 2
        assert small_lake.num_columns > 0
        assert small_lake.num_rows > 0
        assert small_lake.estimated_size_bytes() > 0

    def test_table_lookup(self, small_lake):
        assert small_lake.table("titanic", "train").name == "train"
        assert small_lake.find_table("heart").dataset == "heart-uci"
        assert small_lake.find_table("nope") is None

    def test_missing_dataset_raises(self, small_lake):
        with pytest.raises(KeyError):
            small_lake.dataset("nope")

    def test_duplicate_dataset_rejected(self, small_lake):
        with pytest.raises(ValueError):
            small_lake.add_dataset(DatasetSource("titanic"))

    def test_iter_columns(self, small_lake):
        pairs = list(small_lake.iter_columns())
        assert ("train" in {table.name for table, _ in pairs})

    def test_from_directory(self, tmp_path, titanic_table):
        target = tmp_path / "lake" / "titanic"
        target.mkdir(parents=True)
        write_csv(titanic_table, target / "train.csv")
        lake = DataLake.from_directory(tmp_path / "lake")
        assert lake.num_tables == 1
        assert lake.table("titanic", "train").num_rows == titanic_table.num_rows


class TestSourceProvenanceAndFingerprint:
    """Streamed content fingerprints: cached by (path, mtime, size)."""

    def test_read_csv_records_provenance(self, tmp_path, titanic_table):
        path = tmp_path / "train.csv"
        write_csv(titanic_table, path)
        table = read_csv(path)
        stat = path.stat()
        assert table.source_path == path
        assert table.source_mtime_ns == stat.st_mtime_ns
        assert table.source_size == stat.st_size

    def test_identical_files_share_streamed_digest(self, tmp_path, titanic_table):
        path_a = tmp_path / "a.csv"
        path_b = tmp_path / "b.csv"
        write_csv(titanic_table, path_a)
        write_csv(titanic_table, path_b)
        assert read_csv(path_a).content_fingerprint() == read_csv(path_b).content_fingerprint()

    def test_rewritten_file_changes_fingerprint(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(Table.from_dict("t", {"x": [1.0, 2.0]}), path)
        before = read_csv(path).content_fingerprint()
        write_csv(Table.from_dict("t", {"x": [1.0, 3.0]}), path)
        after = read_csv(path).content_fingerprint()
        assert before != after

    def test_streamed_digest_lands_in_cache(self, tmp_path, titanic_table):
        from repro.tabular.table import _FINGERPRINT_CACHE

        path = tmp_path / "cached.csv"
        write_csv(titanic_table, path)
        table = read_csv(path)
        digest = table.content_fingerprint()
        key = (str(path), table.source_mtime_ns, table.source_size)
        assert _FINGERPRINT_CACHE.get(key) == digest
        # Second call (fresh Table, same file) is a pure cache hit.
        assert read_csv(path).content_fingerprint() == digest

    def test_stale_provenance_falls_back_to_value_digest(self, tmp_path, titanic_table):
        path = tmp_path / "stale.csv"
        write_csv(titanic_table, path)
        table = read_csv(path)
        # The file changes under us after the read: the recorded
        # (mtime, size) no longer matches, so the streamed digest is
        # refused and the value-based digest takes over — same as a
        # table that never had provenance.
        path.write_text(path.read_text() + "\n99,extra,rows,9,9,9,9\n")
        bare = titanic_table.copy()
        assert table.content_fingerprint() == bare.content_fingerprint()

    def test_copy_preserves_provenance(self, tmp_path, titanic_table):
        path = tmp_path / "c.csv"
        write_csv(titanic_table, path)
        table = read_csv(path)
        clone = table.copy()
        assert clone.source_path == table.source_path
        assert clone.content_fingerprint() == table.content_fingerprint()


class TestFromDirectoryRobustness:
    """from_directory skips and reports broken files instead of raising."""

    def _broken_lake(self, tmp_path, titanic_table):
        root = tmp_path / "lake"
        good = root / "titanic"
        good.mkdir(parents=True)
        write_csv(titanic_table, good / "train.csv")
        bad = root / "broken"
        bad.mkdir()
        (bad / "notalist.json").write_text('{"not": "a list"}')
        (bad / "mojibake.csv").write_bytes(b"a,b\n\xff\xfe\x00garbage")
        return root

    def test_broken_files_skipped_and_reported(self, tmp_path, titanic_table):
        root = self._broken_lake(tmp_path, titanic_table)
        lake = DataLake.from_directory(root)
        assert lake.num_tables == 1
        assert lake.table("titanic", "train").num_rows > 0
        failed = {entry[0] for entry in lake.load_errors}
        assert str(root / "broken" / "notalist.json") in failed
        assert str(root / "broken" / "mojibake.csv") in failed
        for _, message in lake.load_errors:
            assert ":" in message  # "ErrorType: details"

    def test_on_error_raise_restores_old_behavior(self, tmp_path, titanic_table):
        root = self._broken_lake(tmp_path, titanic_table)
        with pytest.raises((ValueError, UnicodeError)):
            DataLake.from_directory(root, on_error="raise")

    def test_clean_lake_reports_no_errors(self, tmp_path, titanic_table):
        root = tmp_path / "lake" / "titanic"
        root.mkdir(parents=True)
        write_csv(titanic_table, root / "train.csv")
        lake = DataLake.from_directory(tmp_path / "lake")
        assert lake.load_errors == []

    def test_vanished_file_mid_walk_is_skipped(self, tmp_path, titanic_table, monkeypatch):
        root = tmp_path / "lake"
        target = root / "titanic"
        target.mkdir(parents=True)
        write_csv(titanic_table, target / "train.csv")
        write_csv(titanic_table, target / "gone.csv")
        import repro.tabular.datalake as datalake_module
        import repro.tabular.io as io_module

        real_read = io_module.read_csv

        def vanishing_read(path, *args, **kwargs):
            if str(path).endswith("gone.csv"):
                raise FileNotFoundError(path)
            return real_read(path, *args, **kwargs)

        monkeypatch.setattr(datalake_module, "read_csv", vanishing_read)
        lake = DataLake.from_directory(root)
        assert lake.num_tables == 1
        assert any("gone.csv" in path for path, _ in lake.load_errors)
