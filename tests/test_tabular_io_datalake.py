"""Unit tests for CSV/JSON I/O and the DataLake container."""

import json

import pytest

from repro.tabular import DataLake, DatasetSource, Table, read_csv, read_json_records, write_csv
from repro.tabular.io import table_from_records


class TestCSVRoundTrip:
    def test_write_and_read_csv(self, tmp_path, titanic_table):
        path = write_csv(titanic_table, tmp_path / "train.csv")
        loaded = read_csv(path, dataset="titanic")
        assert loaded.shape == titanic_table.shape
        assert loaded.column("Age").values[0] == 22
        # Missing cells survive the round trip.
        assert loaded.column("Age").missing_count() == titanic_table.column("Age").missing_count()

    def test_read_csv_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        assert read_csv(path).num_rows == 0

    def test_read_csv_without_parsing(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1,x\n2,y\n")
        table = read_csv(path, parse=False)
        assert table.column("a").values == ["1", "2"]


class TestJSON:
    def test_read_json_records(self, tmp_path):
        records = [{"a": 1, "b": "x"}, {"a": 2}, {"b": "z", "c": True}]
        path = tmp_path / "data.json"
        path.write_text(json.dumps(records))
        table = read_json_records(path)
        assert table.shape == (3, 3)
        assert table.column("a").values[2] is None

    def test_read_json_rejects_non_array(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"a": 1}))
        with pytest.raises(ValueError):
            read_json_records(path)

    def test_table_from_records_preserves_key_order(self):
        table = table_from_records("t", [{"b": 1, "a": 2}, {"a": 3, "c": 4}])
        assert table.column_names == ["b", "a", "c"]


class TestDatasetSource:
    def test_add_and_lookup(self, titanic_table):
        source = DatasetSource("titanic", [titanic_table])
        assert source.table("train") is titanic_table
        assert source.has_table("train")
        assert len(source) == 1

    def test_duplicate_table_rejected(self, titanic_table):
        source = DatasetSource("titanic", [titanic_table])
        with pytest.raises(ValueError):
            source.add_table(titanic_table)

    def test_missing_table_raises(self):
        with pytest.raises(KeyError):
            DatasetSource("d").table("x")


class TestDataLake:
    def test_counts(self, small_lake):
        assert len(small_lake) == 2
        assert small_lake.num_tables == 2
        assert small_lake.num_columns > 0
        assert small_lake.num_rows > 0
        assert small_lake.estimated_size_bytes() > 0

    def test_table_lookup(self, small_lake):
        assert small_lake.table("titanic", "train").name == "train"
        assert small_lake.find_table("heart").dataset == "heart-uci"
        assert small_lake.find_table("nope") is None

    def test_missing_dataset_raises(self, small_lake):
        with pytest.raises(KeyError):
            small_lake.dataset("nope")

    def test_duplicate_dataset_rejected(self, small_lake):
        with pytest.raises(ValueError):
            small_lake.add_dataset(DatasetSource("titanic"))

    def test_iter_columns(self, small_lake):
        pairs = list(small_lake.iter_columns())
        assert ("train" in {table.name for table, _ in pairs})

    def test_from_directory(self, tmp_path, titanic_table):
        target = tmp_path / "lake" / "titanic"
        target.mkdir(parents=True)
        write_csv(titanic_table, target / "train.csv")
        lake = DataLake.from_directory(tmp_path / "lake")
        assert lake.num_tables == 1
        assert lake.table("titanic", "train").num_rows == titanic_table.num_rows
