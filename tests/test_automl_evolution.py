"""Tests for the evolutionary pipeline-graph optimizer (repro.automl.evolution)."""

import numpy as np
import pytest

from repro.automl.evolution import (
    FULL,
    SCREEN,
    EvolutionConfig,
    EvolutionarySearch,
    FitnessCache,
    FitnessEvaluator,
    GenomeValidityError,
    OperatorPool,
    PipelineGenome,
    PriorBook,
    apply_mutation,
    crossover_stage_splice,
    mutate_add_node,
    mutate_perturb_param,
)
from repro.automl.evolution.genome import MAX_NODES, STAGE_CAPACITY
from repro.automl.kgpip import KGpipAutoML
from repro.datagen import generate_classification_dataset
from repro.parallel import JobExecutor


def _chain_genome() -> PipelineGenome:
    genome = PipelineGenome()
    scaler = genome.add_node("sklearn.preprocessing.StandardScaler")
    genome.add_node(
        "sklearn.tree.DecisionTreeClassifier",
        params={"max_depth": 4},
        parents=[scaler],
    )
    return genome


def _small_xy(seed=5, n_rows=90):
    table, target = generate_classification_dataset(
        "evo_fit", n_rows=n_rows, n_features=4, seed=seed
    )
    X, _ = table.to_feature_matrix(target=target)
    y = table.target_vector(target)
    return X, y


class TestGenome:
    def test_canonical_hash_ignores_insertion_order(self):
        first = PipelineGenome()
        scaler = first.add_node("sklearn.preprocessing.StandardScaler")
        feature = first.add_node("numpy.log1p", parents=[scaler])
        first.add_node("sklearn.naive_bayes.GaussianNB", parents=[feature])

        # Same structure, nodes created in a different order / with other ids.
        second = PipelineGenome()
        second.add_node("sklearn.impute.SimpleImputer")  # decoy, removed below
        second.remove_node("n0")
        scaler2 = second.add_node("sklearn.preprocessing.StandardScaler")
        feature2 = second.add_node("numpy.log1p", parents=[scaler2])
        second.add_node("sklearn.naive_bayes.GaussianNB", parents=[feature2])

        assert first.descriptive_id == second.descriptive_id
        assert first.genome_hash == second.genome_hash

    def test_hash_distinguishes_params_and_structure(self):
        base = _chain_genome()
        other = _chain_genome()
        assert base.genome_hash == other.genome_hash
        estimator = other.estimator_node
        other.set_param(estimator.node_id, "max_depth", 8)
        assert base.genome_hash != other.genome_hash

    def test_mutations_reset_cached_descriptive_id(self):
        genome = _chain_genome()
        before = genome.descriptive_id
        assert genome._descriptive_id is not None  # cached
        genome.add_node("sklearn.impute.SimpleImputer")
        assert genome._descriptive_id is None  # invalidated
        genome.remove_node(genome.nodes_of_stage("imputation")[0].node_id)
        assert genome.descriptive_id == before

    def test_validity_rules(self):
        empty = PipelineGenome()
        assert "expected exactly one estimator" in empty.validity_errors()[0]

        two_estimators = _chain_genome()
        two_estimators.add_node("sklearn.naive_bayes.GaussianNB")
        assert not two_estimators.is_valid()

        backwards = _chain_genome()
        estimator_id = backwards.estimator_node.node_id
        feature = backwards.add_node("numpy.sqrt", parents=[estimator_id])
        backwards.connect(feature, estimator_id)
        errors = "; ".join(backwards.validity_errors())
        assert "cycle" in errors or "backwards" in errors

    def test_capacity_and_node_caps(self):
        genome = _chain_genome()
        genome.add_node("sklearn.preprocessing.MinMaxScaler")
        genome.add_node("sklearn.preprocessing.RobustScaler")
        assert any("stage preprocessing" in e for e in genome.validity_errors())
        assert STAGE_CAPACITY["estimator"] == 1
        assert MAX_NODES == 6

    def test_plan_round_trip(self):
        genome = _chain_genome()
        plan = genome.to_plan()
        rebuilt = PipelineGenome.from_plan(plan)
        assert rebuilt.genome_hash == genome.genome_hash
        assert rebuilt.to_plan()["order"] == plan["order"]

    def test_single_estimator_matches_evolved_bare_genome(self):
        configuration = {"max_depth": 4}
        sampled = PipelineGenome.single_estimator(
            "sklearn.tree.DecisionTreeClassifier", configuration
        )
        evolved = PipelineGenome()
        evolved.add_node("sklearn.tree.DecisionTreeClassifier", params=configuration)
        assert sampled.genome_hash == evolved.genome_hash

    def test_unknown_operation_rejected(self):
        with pytest.raises(GenomeValidityError):
            PipelineGenome().add_node("sklearn.magic.Estimator")


class TestOperators:
    def test_mutations_always_produce_valid_genomes(self):
        rng = np.random.RandomState(0)
        book = PriorBook.uniform()
        pool = OperatorPool()
        genome = book.sample_genome(rng)
        for _ in range(60):
            child, name = apply_mutation(genome, rng, book, pool)
            if child is None:
                continue
            assert name in dict(pool.operators) or name is None
            assert child.is_valid()
            assert genome.is_valid()  # parent untouched
            genome = child

    def test_add_node_respects_caps(self):
        rng = np.random.RandomState(1)
        book = PriorBook.uniform()
        genome = _chain_genome()
        for _ in range(20):
            child = mutate_add_node(genome, rng, book)
            if child is None:
                break
            assert len(child.nodes) <= MAX_NODES
            genome = child
        assert len(genome.nodes) <= MAX_NODES

    def test_perturb_steps_to_neighbouring_candidate(self):
        rng = np.random.RandomState(2)
        book = PriorBook.uniform()
        genome = PipelineGenome.single_estimator(
            "sklearn.neighbors.KNeighborsClassifier", {"n_neighbors": 5}
        )
        child = mutate_perturb_param(genome, rng, book)
        assert child is not None
        value = child.estimator_node.params["n_neighbors"]
        assert value in (3, 7)  # one ordered step away from 5

    def test_crossover_valid_by_construction(self):
        rng = np.random.RandomState(3)
        book = PriorBook.uniform()
        for _ in range(25):
            first, second = book.sample_genome(rng), book.sample_genome(rng)
            child = crossover_stage_splice(first, second, rng)
            assert child is not None and child.is_valid()

    def test_pool_adapts_selection_probabilities(self):
        pool = OperatorPool()
        before = pool.selection_probabilities()
        assert abs(sum(before.values()) - 1.0) < 1e-9
        for _ in range(10):
            pool.reward("perturb_param", True)
            pool.reward("remove_node", False)
        after = pool.selection_probabilities()
        assert after["perturb_param"] > before["perturb_param"]
        assert after["remove_node"] < before["remove_node"]
        stats = pool.stats()
        assert stats["perturb_param"]["successes"] == 10
        assert stats["remove_node"]["attempts"] == 10


class TestPriors:
    def test_uniform_book_covers_every_stage(self):
        book = PriorBook.uniform()
        assert not book.informed
        for stage in ("imputation", "preprocessing", "feature", "estimator"):
            assert book.operation_weights[stage]

    def test_harvested_from_bootstrapped_graph(self, bootstrapped_platform):
        book = PriorBook.from_client(bootstrapped_platform.storage)
        assert book.informed
        # The synthetic corpus always trains estimators, so estimator weights
        # must be non-uniform and the ranking non-empty.
        weights = book.operation_weights["estimator"]
        assert max(weights.values()) > min(weights.values())
        assert book.estimator_ranking()

    def test_harvest_falls_back_to_uniform_on_empty_surface(self):
        class Broken:
            def query(self, _):
                raise RuntimeError("no graph here")

        book = PriorBook.from_client(Broken())
        assert not book.informed

    def test_prior_biases_operation_choice(self):
        book = PriorBook.uniform()
        book.operation_weights["estimator"]["sklearn.naive_bayes.GaussianNB"] = 500.0
        book.prior_probability = 1.0
        rng = np.random.RandomState(4)
        draws = [book.choose_operation(rng, "estimator") for _ in range(60)]
        assert draws.count("sklearn.naive_bayes.GaussianNB") > 45

    def test_recorded_values_snap_into_space(self):
        book = PriorBook.uniform()
        # 6 is not a KNN candidate; it must snap to a neighbouring one.
        book.value_weights[("sklearn.neighbors.KNeighborsClassifier", "n_neighbors")] = {6: 10.0}
        book.prior_probability = 1.0
        rng = np.random.RandomState(5)
        values = {
            book.choose_param_value(
                rng, "sklearn.neighbors.KNeighborsClassifier", "n_neighbors"
            )
            for _ in range(20)
        }
        assert 6 not in values

    def test_population_seeded_with_prior_top_estimators(self):
        book = PriorBook.uniform()
        book.operation_weights["estimator"]["sklearn.naive_bayes.GaussianNB"] = 99.0
        rng = np.random.RandomState(6)
        population = book.sample_population(rng, 9)
        assert len(population) == 9
        first = population[0]
        assert len(first.nodes) == 1  # bare estimator seed
        assert first.estimator_node.operation == "sklearn.naive_bayes.GaussianNB"
        assert all(genome.is_valid() for genome in population)


class TestFitness:
    def test_cache_hits_and_dedup(self):
        X, y = _small_xy()
        evaluator = FitnessEvaluator(X, y, cv=2)
        genome = _chain_genome()
        first = evaluator.evaluate_full(genome)
        second = evaluator.evaluate_full(genome.copy())
        assert first == second
        assert evaluator.cache.hits == 1
        assert evaluator.stats.full_evaluations == 1
        assert evaluator.spent == 1.0

    def test_screen_cheaper_than_full_and_promotions_counted(self):
        X, y = _small_xy(n_rows=120)
        evaluator = FitnessEvaluator(X, y, cv=2, promote_top_k=2)
        assert 0.0 < evaluator.screen_cost < 1.0
        book = PriorBook.uniform()
        rng = np.random.RandomState(7)
        population = book.sample_population(rng, 5)
        fitness = evaluator.evaluate_population(population)
        assert len(fitness) >= 1
        assert evaluator.stats.promotions == 2
        assert evaluator.stats.full_evaluations == 2
        assert evaluator.stats.screen_evaluations == len(
            {g.genome_hash for g in population}
        )

    def test_max_spend_truncates_fanout(self):
        X, y = _small_xy()
        evaluator = FitnessEvaluator(X, y, cv=2, max_spend=2.0)
        book = PriorBook.uniform()
        rng = np.random.RandomState(8)
        population = book.sample_population(rng, 12)
        evaluator.evaluate_population(population)
        assert evaluator.spent <= 2.0 + 1e-9

    def test_degenerate_plan_scores_zero(self):
        X, y = _small_xy()
        evaluator = FitnessEvaluator(X[:4], y[:4], cv=2)
        genome = PipelineGenome.single_estimator(
            "sklearn.neighbors.KNeighborsClassifier", {"n_neighbors": 50}
        )
        assert evaluator.evaluate_full(genome) == 0.0


class TestEvolutionDeterminism:
    """Satellite: same seed => byte-identical outcome, any executor backend."""

    def _run(self, executor=None, seed=13):
        X, y = _small_xy(seed=9, n_rows=100)
        evaluator = FitnessEvaluator(
            X, y, cv=2, random_state=seed, executor=executor, cache=FitnessCache()
        )
        config = EvolutionConfig(
            population_size=5, generations=3, max_evaluations=6.0, seed=seed
        )
        search = EvolutionarySearch(evaluator, PriorBook.uniform(), config)
        return search.run()

    def test_identical_across_runs(self):
        first, second = self._run(), self._run()
        assert first.best_hash == second.best_hash
        assert first.best_score == second.best_score
        assert first.best_genome.descriptive_id == second.best_genome.descriptive_id
        assert first.history == second.history

    def test_identical_across_executor_backends(self):
        reference = self._run(JobExecutor(backend="serial"))
        for backend in ("threads", "processes"):
            result = self._run(JobExecutor(backend=backend, max_workers=4))
            assert result.best_hash == reference.best_hash
            assert result.best_score == reference.best_score

    def test_different_seeds_explore_differently(self):
        first = self._run(seed=13)
        second = self._run(seed=14)
        assert first.history != second.history


class TestEvolutionLoop:
    def test_budget_never_overdrawn_and_leftover_spent(self):
        X, y = _small_xy(seed=10, n_rows=110)
        evaluator = FitnessEvaluator(X, y, cv=2, random_state=3)
        config = EvolutionConfig(
            population_size=6, generations=5, max_evaluations=7.0, seed=3
        )
        outcome = EvolutionarySearch(evaluator, PriorBook.uniform(), config).run()
        assert outcome.evaluations_spent <= 7.0 + 1e-9
        # The mop-up leaves less than one full evaluation on the table.
        assert 7.0 - outcome.evaluations_spent < 1.0
        assert outcome.best_genome is not None
        assert outcome.best_score > 0.0
        assert outcome.fidelity_stats["promotions"] >= 1
        assert "crossover" in outcome.operator_stats

    def test_early_stopping(self):
        X, y = _small_xy(seed=11, n_rows=80)
        evaluator = FitnessEvaluator(X, y, cv=2, random_state=1)
        config = EvolutionConfig(
            population_size=4, generations=30, early_stopping_rounds=1, seed=1
        )
        outcome = EvolutionarySearch(evaluator, PriorBook.uniform(), config).run()
        assert outcome.stopped_because in ("early stopping", "generations")
        assert outcome.generations_run < 30


class TestKGpipIntegration:
    def test_random_search_dedups_through_shared_cache(self, bootstrapped_platform):
        table, target = generate_classification_dataset(
            "evo_dedup", n_rows=70, n_features=3, seed=12
        )
        searcher = KGpipAutoML(
            storage=bootstrapped_platform.storage,
            profiler=bootstrapped_platform.governor.profiler,
            colr_models=bootstrapped_platform.governor.colr_models,
            random_state=2,
        )
        result = searcher.search(
            table, target, time_budget_seconds=None, max_evaluations=20, cv=2,
            strategy="random",
        )
        # A 20-evaluation budget over the small recommended space must hit
        # duplicate configurations; they are skipped without spending budget.
        assert result.duplicate_samples > 0
        assert result.evaluations_spent <= 20.0
        assert result.cache_stats["entries"] == result.evaluations

    def test_evolution_strategy_via_client(self, bootstrapped_platform):
        table, target = generate_classification_dataset(
            "evo_client", n_rows=90, n_features=4, seed=13
        )
        result = bootstrapped_platform.automl(
            table, target, max_evaluations=5, cv=2, time_budget_seconds=None
        )
        assert result.strategy == "evolution"
        assert result.best_genome
        assert result.evaluations_spent <= 5.0 + 1e-9
        assert result.fidelity_stats["screen_evaluations"] > 0

    def test_automl_over_saved_directory(self, bootstrapped_platform, tmp_path):
        from repro.interfaces import LiDSClient

        directory = bootstrapped_platform.governor.save(tmp_path / "saved_lake")
        client = LiDSClient.open(directory)
        try:
            # Priors harvest by SPARQL through the read-only surface too.
            book = client.kgpip.prior_book()
            assert book.informed
            table, target = generate_classification_dataset(
                "evo_saved", n_rows=80, n_features=3, seed=15
            )
            result = client.automl(
                table, target, max_evaluations=4, cv=2, time_budget_seconds=None
            )
            assert result.strategy == "evolution"
            assert result.best_estimator_name
        finally:
            client.close()

    def test_unknown_strategy_rejected(self, bootstrapped_platform):
        table, target = generate_classification_dataset(
            "evo_bad", n_rows=50, n_features=3, seed=14
        )
        with pytest.raises(ValueError):
            bootstrapped_platform.automl(table, target, strategy="annealing")
