"""Incrementality guarantees: table-by-table governance must equal bootstrap.

The KG Governor builds the LiDS graph incrementally — similarity is scored
only for new x (new + existing) column pairs on each add.  These tests pin
the contract that makes that optimization safe: one-shot and incremental
construction produce byte-identical graphs, re-adds are idempotent, the
vectorized similarity kernel agrees with the per-pair reference, and the
index-aware SPARQL planner returns the same answers as naive evaluation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kg import DataGlobalSchemaBuilder, KGGovernor, LiDSOntology
from repro.kg.ontology import DATASET_GRAPH
from repro.profiler import DataProfiler
from repro.rdf import QuadStore, RDF
from repro.sparql import SPARQLEngine
from repro.tabular import DataLake, Table


def _snapshot(store: QuadStore):
    """``{graph: frozenset(triples)}`` — the full content of a quad store."""
    return {
        graph: frozenset(store.triples(graph=graph)) for graph in store.graphs()
    }


@pytest.fixture()
def overlap_lake() -> DataLake:
    """Four tables across three datasets with overlapping columns."""
    lake = DataLake("incremental_lake")
    lake.add_table(
        "titanic",
        Table.from_dict(
            "train",
            {
                "Age": [22, 38, 26, 35, 54, 2, 27, 14],
                "Fare": [7.25, 71.28, 7.92, 53.1, 51.86, 21.07, 11.13, 16.7],
                "Survived": [0, 1, 1, 1, 0, 1, 0, 1],
            },
        ),
    )
    lake.add_table(
        "titanic",
        Table.from_dict(
            "test",
            {
                "Age": [21, 39, 25, 36, 55, 3, 28, 15],
                "Fare": [8.0, 70.0, 8.5, 52.0, 50.0, 22.0, 12.0, 17.0],
            },
        ),
    )
    lake.add_table(
        "heart",
        Table.from_dict(
            "heart",
            {
                "age": [63, 37, 41, 56, 57, 45, 68, 51],
                "chol": [233.0, 250.0, 204.0, 236.0, 354.0, 199.0, 274.0, 212.0],
                "target": [1, 1, 1, 1, 0, 0, 1, 0],
            },
        ),
    )
    lake.add_table(
        "shop",
        Table.from_dict(
            "orders",
            {
                "price": [9.5, 12.0, 3.75, 20.0, 5.25, 14.9, 7.0, 2.5],
                "in_stock": [True, False, True, True, False, True, False, True],
                "item": ["pen", "book", "mug", "bag", "hat", "pad", "cup", "toy"],
            },
        ),
    )
    return lake


class TestIncrementalEqualsBootstrap:
    def test_identical_triples_edges_and_embeddings(self, overlap_lake):
        bootstrap = KGGovernor()
        bootstrap.add_data_lake(overlap_lake)

        incremental = KGGovernor()
        for table in overlap_lake.tables():
            incremental.add_table(table, dataset_name=table.dataset)

        assert _snapshot(bootstrap.storage.graph) == _snapshot(incremental.storage.graph)
        for namespace in ("table", "column"):
            keys_a = sorted(bootstrap.storage.embeddings.keys(namespace))
            keys_b = sorted(incremental.storage.embeddings.keys(namespace))
            assert keys_a == keys_b
            for key in keys_a:
                np.testing.assert_allclose(
                    bootstrap.storage.embeddings.get(namespace, key),
                    incremental.storage.embeddings.get(namespace, key),
                )
        assert len(bootstrap.table_profiles) == len(incremental.table_profiles)

    def test_split_lake_adds_equal_bootstrap(self, overlap_lake):
        """Adding the lake in two chunks equals adding it in one call."""
        tables = overlap_lake.tables()
        first, second = DataLake("first"), DataLake("second")
        for table in tables[:2]:
            first.add_table(table.dataset, table)
        for table in tables[2:]:
            second.add_table(table.dataset, table)

        bootstrap = KGGovernor()
        bootstrap.add_data_lake(overlap_lake)
        chunked = KGGovernor()
        chunked.add_data_lake(first)
        chunked.add_data_lake(second)
        assert _snapshot(bootstrap.storage.graph) == _snapshot(chunked.storage.graph)


class TestIdempotentAdds:
    def test_readding_a_lake_is_a_no_op(self, overlap_lake):
        governor = KGGovernor()
        governor.add_data_lake(overlap_lake)
        triples_before = governor.storage.graph.num_triples()
        profiles_before = len(governor.table_profiles)

        report = governor.add_data_lake(overlap_lake)
        assert report.num_tables_profiled == 0
        assert report.num_similarity_edges == 0
        assert governor.storage.graph.num_triples() == triples_before
        assert len(governor.table_profiles) == profiles_before

    def test_no_duplicate_metadata_triples(self, overlap_lake):
        governor = KGGovernor()
        governor.add_data_lake(overlap_lake)
        governor.add_data_lake(overlap_lake)
        store = governor.storage.graph
        type_triples = list(
            store.triples(None, RDF.type, LiDSOntology.Table, graph=DATASET_GRAPH)
        )
        assert len(type_triples) == len(overlap_lake.tables())
        for triple in type_triples:
            names = store.objects(triple.subject, LiDSOntology.hasName, graph=DATASET_GRAPH)
            assert len(names) == 1


class TestVectorizedSimilarity:
    def test_vectorized_agrees_with_pairwise_reference(self, overlap_lake):
        profiles = DataProfiler().profile_data_lake(overlap_lake)
        vectorized = DataGlobalSchemaBuilder().compute_column_similarities(profiles)
        reference = DataGlobalSchemaBuilder(vectorized=False).compute_column_similarities(
            profiles
        )

        def normalize(edges):
            return sorted(
                (tuple(sorted((e.column_a, e.column_b))), e.kind, round(e.score, 9))
                for e in edges
            )

        assert normalize(vectorized) == normalize(reference)

    def test_incremental_pairs_cover_only_new_columns(self, overlap_lake):
        profiles = DataProfiler().profile_data_lake(overlap_lake)
        builder = DataGlobalSchemaBuilder()
        edges = builder.compute_incremental_similarities(profiles[-1:], profiles[:-1])
        new_table = profiles[-1].table_id
        for edge in edges:
            tables = {
                "/".join(edge.column_a.split("/")[:2]),
                "/".join(edge.column_b.split("/")[:2]),
            }
            assert new_table in tables


class TestGovernorLookups:
    def test_table_profile_dict_lookup(self, overlap_lake):
        governor = KGGovernor()
        governor.add_data_lake(overlap_lake)
        profile = governor.table_profile("titanic", "train")
        assert profile is not None and profile.table_name == "train"
        assert governor.table_profile("titanic", "missing") is None


class TestEmbeddingOverwrite:
    def test_put_overwrite_updates_in_place(self):
        from repro.embeddings.store import EmbeddingStore

        store = EmbeddingStore()
        store.put("column", "c1", np.array([1.0, 0.0, 0.0]))
        store.put("column", "c2", np.array([0.0, 1.0, 0.0]))
        index_before = store._indexes["column"]
        store.put("column", "c1", np.array([0.0, 0.0, 1.0]))
        # The index is updated in place, not rebuilt.
        assert store._indexes["column"] is index_before
        assert store.count("column") == 2
        results = store.search("column", np.array([0.0, 0.0, 1.0]), k=1)
        assert results[0][0] == "c1"
        np.testing.assert_allclose(store.get("column", "c1"), [0.0, 0.0, 1.0])


class TestLinkerCache:
    def test_cache_hit_and_invalidation(self, overlap_lake):
        governor = KGGovernor()
        governor.add_data_lake(overlap_lake)
        linker = governor.linker
        store = governor.storage.graph
        first = linker._known_tables_for(store)
        assert linker._known_tables_for(store) is first  # cache hit
        governor.add_table(
            Table.from_dict("extra", {"age": [1, 2, 3], "y": [0, 1, 0]}),
            dataset_name="extras",
        )
        refreshed = linker._known_tables_for(store)
        assert refreshed is not first
        assert ("extras", "extra") in refreshed

    def test_cache_detects_count_preserving_mutations(self, overlap_lake):
        """A remove-then-add that keeps the triple count must not serve stale data."""
        from repro.rdf import Literal

        governor = KGGovernor()
        governor.add_data_lake(overlap_lake)
        linker = governor.linker
        store = governor.storage.graph
        cached = linker._known_tables_for(store)
        table_node = cached[("titanic", "train")]
        store.remove(table_node, LiDSOntology.hasName, Literal("train"), graph=DATASET_GRAPH)
        store.add(table_node, LiDSOntology.hasName, Literal("renamed"), graph=DATASET_GRAPH)
        refreshed = linker._known_tables_for(store)
        assert ("titanic", "renamed") in refreshed
        assert ("titanic", "train") not in refreshed

    def test_cache_survives_pipeline_graph_writes(self, overlap_lake):
        """Writes to non-dataset graphs keep the cache warm (the whole point)."""
        from repro.kg.ontology import pipeline_graph_uri

        governor = KGGovernor()
        governor.add_data_lake(overlap_lake)
        linker = governor.linker
        store = governor.storage.graph
        first = linker._known_tables_for(store)
        store.add(
            LiDSOntology.Pipeline, RDF.type, LiDSOntology.Pipeline,
            graph=pipeline_graph_uri("p1"),
        )
        assert linker._known_tables_for(store) is first


class TestIndexAwareSPARQL:
    QUERIES = [
        "SELECT ?t WHERE { ?t a kglids:Table }",
        """
        SELECT ?col ?name WHERE {
            ?col kglids:hasName ?name .
            ?col a kglids:Column .
            ?col kglids:isPartOf ?table .
            ?table kglids:hasName "train" .
        }
        """,
        """
        SELECT ?c1 ?c2 ?score WHERE {
            ?c1 a kglids:Column .
            ?c2 a kglids:Column .
            << ?c1 kglids:hasContentSimilarity ?c2 >> kglids:withCertainty ?score .
        }
        """,
        """
        SELECT ?type (COUNT(?col) AS ?n) WHERE {
            ?col a kglids:Column .
            ?col kglids:hasFineGrainedType ?type .
        } GROUP BY ?type ORDER BY ?type
        """,
    ]

    def test_optimizer_preserves_semantics(self, overlap_lake):
        governor = KGGovernor()
        governor.add_data_lake(overlap_lake)
        store = governor.storage.graph
        optimized_engine = SPARQLEngine(store)
        naive_engine = SPARQLEngine(store, optimize=False)
        for query in self.QUERIES:
            optimized = optimized_engine.select(query)
            naive = naive_engine.select(query)
            assert sorted(map(str, optimized.rows)) == sorted(map(str, naive.rows))
            assert len(optimized) > 0  # queries are non-trivial on this graph

    def test_estimate_matches_bounds_actual_matches(self, overlap_lake):
        governor = KGGovernor()
        governor.add_data_lake(overlap_lake)
        store = governor.storage.graph
        patterns = [
            (None, RDF.type, LiDSOntology.Column),
            (None, LiDSOntology.hasName, None),
            (None, None, None),
        ]
        for subject, predicate, obj in patterns:
            actual = sum(1 for _ in store.match(subject, predicate, obj))
            assert store.estimate_matches(subject, predicate, obj) >= actual
