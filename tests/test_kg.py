"""Unit and integration tests for the LiDS ontology and KG construction."""

import pytest

from repro.kg import (
    DataGlobalSchemaBuilder,
    GlobalGraphLinker,
    KGGovernor,
    KGLiDSStorage,
    LiDSOntology,
    PipelineGraphBuilder,
    SimilarityThresholds,
    column_uri,
    dataset_uri,
    pipeline_graph_uri,
    table_uri,
)
from repro.kg.ontology import DATASET_GRAPH, LIBRARY_GRAPH, library_uri, pipeline_uri
from repro.pipelines import PipelineAbstractor, PipelineScript
from repro.profiler import DataProfiler
from repro.rdf import KGLIDS_ONTOLOGY, QuadStore, RDF
from repro.tabular import DataLake, Table


class TestOntology:
    def test_class_and_property_counts_match_paper(self):
        assert len(LiDSOntology.CLASSES) == 13
        assert len(LiDSOntology.OBJECT_PROPERTIES) == 19
        assert len(LiDSOntology.DATA_PROPERTIES) == 22

    def test_all_terms_under_ontology_namespace(self):
        for term in LiDSOntology.CLASSES + LiDSOntology.OBJECT_PROPERTIES + LiDSOntology.DATA_PROPERTIES:
            assert str(term).startswith(str(KGLIDS_ONTOLOGY))

    def test_ontology_triples_emitted(self):
        triples = LiDSOntology.ontology_triples()
        assert len(triples) >= (13 + 19 + 22) * 2

    def test_uri_minting_is_slugged(self):
        assert "heart_failure" in str(dataset_uri("heart failure"))
        assert str(table_uri("d", "t")).endswith("/d/t")
        assert str(column_uri("d", "t", "a b")).endswith("/d/t/a_b")
        assert str(pipeline_graph_uri("p 1")) != str(pipeline_uri("p 1"))


class TestDataGlobalSchema:
    @pytest.fixture()
    def profiles(self, small_lake):
        return DataProfiler().profile_data_lake(small_lake)

    def test_metadata_subgraph_written(self, profiles):
        store = QuadStore()
        DataGlobalSchemaBuilder().build(profiles, store)
        ontology = LiDSOntology
        tables = list(store.triples(None, RDF.type, ontology.Table, graph=DATASET_GRAPH))
        columns = list(store.triples(None, RDF.type, ontology.Column, graph=DATASET_GRAPH))
        assert len(tables) == 2
        assert len(columns) == sum(len(p.column_profiles) for p in profiles)
        train = table_uri("titanic", "train")
        assert store.value(train, ontology.hasTotalRows, graph=DATASET_GRAPH) == 10

    def test_similarity_edges_have_scores(self, profiles):
        store = QuadStore()
        edges = DataGlobalSchemaBuilder().build(profiles, store)
        ontology = LiDSOntology
        age_a = column_uri("titanic", "train", "Age")
        age_b = column_uri("heart-uci", "heart", "age")
        label_edges = [e for e in edges if e.kind == "label"]
        assert any({e.column_a, e.column_b} == {"titanic/train/Age", "heart-uci/heart/age"} for e in label_edges)
        score = store.annotation(
            age_a, ontology.hasLabelSimilarity, age_b, ontology.withCertainty, graph=DATASET_GRAPH
        )
        assert score is not None and score >= 0.8

    def test_same_table_columns_not_compared(self, profiles):
        edges = DataGlobalSchemaBuilder().compute_column_similarities(profiles)
        for edge in edges:
            table_a = "/".join(edge.column_a.split("/")[:2])
            table_b = "/".join(edge.column_b.split("/")[:2])
            assert table_a != table_b

    def test_thresholds_control_edge_count(self, profiles):
        strict = DataGlobalSchemaBuilder(SimilarityThresholds(alpha=0.99, beta=0.999, theta=0.9999))
        loose = DataGlobalSchemaBuilder(SimilarityThresholds(alpha=0.5, beta=0.5, theta=0.8))
        assert len(loose.compute_column_similarities(profiles)) >= len(
            strict.compute_column_similarities(profiles)
        )

    def test_label_similarity_can_be_disabled(self, profiles):
        builder = DataGlobalSchemaBuilder(use_label_similarity=False)
        edges = builder.compute_column_similarities(profiles)
        assert all(edge.kind != "label" for edge in edges)

    def test_unionable_edges_written(self, profiles):
        store = QuadStore()
        builder = DataGlobalSchemaBuilder()
        edges = builder.build(profiles, store)
        relationships = builder.derive_table_relationships(profiles, edges)
        assert any(kind == "unionable" for (_, _, kind) in relationships)
        for score in relationships.values():
            assert 0.0 <= score <= 1.0

    def test_greedy_matching_prevents_score_inflation(self):
        pair_scores = {
            ("a/x/c1", "b/y/d1"): 0.9,
            ("a/x/c1", "b/y/d2"): 0.8,
            ("a/x/c2", "b/y/d1"): 0.7,
        }
        total = DataGlobalSchemaBuilder._greedy_one_to_one(pair_scores)
        assert total == pytest.approx(0.9)  # c1-d1 matched; c2 and d2 remain unmatched


class TestPipelineGraphAndLinker:
    @pytest.fixture()
    def abstraction(self, example_pipeline_source):
        script = PipelineScript(
            "titanic_p1", example_pipeline_source, dataset_name="titanic", votes=10, task="classification"
        )
        return PipelineAbstractor().abstract_script(script)

    def test_pipeline_named_graph_contents(self, abstraction):
        store = QuadStore()
        graph = PipelineGraphBuilder().add_pipeline(abstraction, store)
        ontology = LiDSOntology
        statements = list(store.triples(None, RDF.type, ontology.Statement, graph=graph))
        assert len(statements) == len(abstraction.statements)
        assert store.contains(pipeline_uri("titanic_p1"), RDF.type, ontology.Pipeline, graph=graph)
        # Default parameters are recorded (the AutoML-relevant behaviour).
        parameter_nodes = store.objects(statements[0].subject, ontology.hasParameter, graph=graph)
        assert isinstance(parameter_nodes, list)

    def test_default_parameters_can_be_excluded(self, abstraction):
        with_defaults, without_defaults = QuadStore(), QuadStore()
        PipelineGraphBuilder(include_default_parameters=True).add_pipeline(abstraction, with_defaults)
        PipelineGraphBuilder(include_default_parameters=False).add_pipeline(abstraction, without_defaults)
        assert len(with_defaults) > len(without_defaults)

    def test_library_hierarchy_graph(self, abstraction):
        store = QuadStore()
        PipelineGraphBuilder().add_pipeline(abstraction, store)
        ontology = LiDSOntology
        assert store.contains(
            library_uri("sklearn.ensemble"), ontology.isSubElementOf, library_uri("sklearn"), graph=LIBRARY_GRAPH
        )

    def test_linker_verifies_and_prunes(self, abstraction, small_lake):
        storage_store = QuadStore()
        profiles = DataProfiler().profile_data_lake(small_lake)
        DataGlobalSchemaBuilder().build(profiles, storage_store)
        PipelineGraphBuilder().add_pipeline(abstraction, storage_store)
        report = GlobalGraphLinker().link_pipeline(abstraction, storage_store)
        assert "titanic/train" in report.linked_tables
        assert "Survived" in report.linked_columns
        # NormalizedAge does not exist in the dataset graph -> pruned.
        assert "NormalizedAge" in report.pruned_columns
        ontology = LiDSOntology
        graph = pipeline_graph_uri("titanic_p1")
        assert storage_store.contains(
            pipeline_uri("titanic_p1"), ontology.reads, table_uri("titanic", "train"), graph=graph
        )


class TestGovernorAndStorage:
    def test_bootstrap_reports(self, small_lake, example_pipeline_source):
        governor = KGGovernor()
        report = governor.bootstrap(
            lake=small_lake,
            scripts=[PipelineScript("p1", example_pipeline_source, dataset_name="titanic", votes=5)],
        )
        assert report.num_tables_profiled == 2
        assert report.num_pipelines_abstracted == 1
        assert governor.storage.graph.num_triples() > 0
        assert governor.storage.embeddings.count("table") == 2
        assert governor.table_profile("titanic", "train") is not None
        assert governor.table_profile("nope", "nope") is None

    def test_incremental_add_table(self, small_lake):
        governor = KGGovernor()
        governor.add_data_lake(small_lake)
        before = governor.storage.graph.num_triples()
        extra = Table.from_dict("extra", {"age": [1, 2, 3], "y": [0, 1, 0]})
        governor.add_table(extra, dataset_name="extras")
        assert governor.storage.graph.num_triples() > before
        assert governor.table_profile("extras", "extra") is not None

    def test_storage_model_manager(self):
        storage = KGLiDSStorage()
        storage.register_model("m", object())
        assert storage.has_model("m")
        assert storage.list_models() == ["m"]
        assert storage.get_model("m") is not None
        with pytest.raises(KeyError):
            storage.get_model("missing")

    def test_storage_statistics_and_query(self, small_lake):
        governor = KGGovernor()
        governor.add_data_lake(small_lake)
        stats = governor.storage.statistics()
        assert stats["num_triples"] > 0
        assert stats["num_embeddings"] > 0
        result = governor.storage.query("SELECT ?t WHERE { ?t a kglids:Table }")
        assert len(result) == 2
