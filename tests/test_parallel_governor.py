"""Multi-core governance: process-pool execution, ANN pruning, planner stats.

These tests pin the contracts that make the parallel governor safe:

* serial / threads / processes executor backends produce byte-identical
  LiDS graphs and governor reports over the same lake;
* profiles round-trip losslessly through ``to_dict``/``to_json`` (the
  process-boundary transport format);
* ANN-pruned content similarity agrees with the exact full-matrix path on
  the edges above threshold;
* the SPARQL planner consumes live per-predicate cardinality statistics
  (pattern order follows fan-out, and changes when cardinalities change);
* one-side-bound RDF-star patterns hit the partial quoted-triple index
  instead of scanning all annotations.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.embeddings.store import EmbeddingStore
from repro.kg import DataGlobalSchemaBuilder, KGGovernor
from repro.parallel import JobExecutor, default_worker_count
from repro.profiler import DataProfiler
from repro.profiler.profile import ColumnProfile, TableProfile
from repro.profiler.stats import ColumnStatistics
from repro.rdf import Literal, QuadStore, URIRef
from repro.sparql import SPARQLEngine
from repro.tabular import DataLake, Table

_SETTINGS = settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])


def _snapshot(store: QuadStore):
    return {graph: frozenset(store.triples(graph=graph)) for graph in store.graphs()}


@pytest.fixture(scope="module")
def seeded_lake() -> DataLake:
    """A small lake with overlapping numeric/string schemas across datasets."""
    lake = DataLake("parallel_lake")
    rng = np.random.RandomState(11)
    for dataset, offset in (("sales", 0.0), ("returns", 0.1), ("audit", 0.05)):
        for part in range(2):
            lake.add_table(
                dataset,
                Table.from_dict(
                    f"{dataset}_{part}",
                    {
                        "amount": list(rng.normal(100 + offset, 5, 12)),
                        "quantity": list(rng.randint(1, 50, 12)),
                        "region": ["north", "south", "east", "west"] * 3,
                        "approved": [True, False] * 6,
                    },
                ),
            )
    return lake


# ---------------------------------------------------------------- executors
class TestJobExecutor:
    def test_processes_backend_maps_in_order(self):
        executor = JobExecutor(backend="processes", max_workers=2)
        assert executor.map(_square, list(range(20))) == [n * n for n in range(20)]
        assert executor.last_fallback_reason is None

    def test_unpicklable_worker_falls_back_to_serial(self):
        executor = JobExecutor(backend="processes", max_workers=2)
        doubled = executor.map(lambda n: 2 * n, [1, 2, 3])
        assert doubled == [2, 4, 6]
        assert executor.last_fallback_reason is not None

    def test_map_partitions_defaults_to_core_count(self):
        executor = JobExecutor()
        assert executor.num_partitions == default_worker_count()
        assert JobExecutor(num_partitions=3).num_partitions == 3
        partitions = JobExecutor(num_partitions=2).map_partitions(list, list(range(10)))
        assert [len(p) for p in partitions] == [5, 5]
        assert [x for p in partitions for x in p] == list(range(10))

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            JobExecutor(backend="spark")

    def test_initializer_runs_on_serial_backend(self):
        executor = JobExecutor()
        seen = []
        executor.map(len, ["ab"], initializer=seen.append, initargs=("ready",))
        assert seen == ["ready"]


def _square(n: int) -> int:
    return n * n


# ----------------------------------------------------- backend equivalence
class TestBackendEquivalence:
    def test_all_backends_build_identical_graphs(self, seeded_lake):
        snapshots, reports, embeddings = {}, {}, {}
        for backend in ("serial", "threads", "processes"):
            governor = KGGovernor(executor=JobExecutor(backend=backend, max_workers=4))
            report = governor.add_data_lake(seeded_lake)
            snapshots[backend] = _snapshot(governor.storage.graph)
            reports[backend] = (
                report.num_tables_profiled,
                report.num_columns_profiled,
                report.num_similarity_edges,
            )
            embeddings[backend] = governor.storage.embeddings.count()
        assert snapshots["serial"] == snapshots["threads"] == snapshots["processes"]
        assert reports["serial"] == reports["threads"] == reports["processes"]
        assert embeddings["serial"] == embeddings["threads"] == embeddings["processes"]
        assert reports["serial"][2] > 0

    def test_process_profiles_match_serial_profiles(self, seeded_lake):
        tables = seeded_lake.tables()
        serial = DataProfiler().profile_tables(tables)
        parallel = DataProfiler(
            executor=JobExecutor(backend="processes", max_workers=2)
        ).profile_tables(tables)
        for left, right in zip(serial, parallel):
            assert left.table_id == right.table_id
            assert np.array_equal(left.embedding, right.embedding)
            for cp_left, cp_right in zip(left.column_profiles, right.column_profiles):
                assert cp_left.to_dict() == cp_right.to_dict()

    def test_custom_components_fall_back_in_process(self, seeded_lake):
        """Custom (unconfigurable) models profile in-process, not in workers."""
        from repro.embeddings.colr import CoarseGrainedModelSet

        profiler = DataProfiler(
            colr_models=CoarseGrainedModelSet(),
            executor=JobExecutor(backend="processes", max_workers=2),
        )
        assert not profiler._default_components
        profiles = profiler.profile_tables(seeded_lake.tables()[:2])
        assert len(profiles) == 2


# ------------------------------------------------------------- ANN pruning
class TestANNPruning:
    def _wide_profiles(self, num_tables: int = 12, columns_per_table: int = 3):
        """Tables whose numeric columns form one wide fine-grained type group.

        Columns come in three value-scale families: columns of the same
        family are near-duplicates (above the content threshold), columns of
        different families are far apart — so each column's true matches fit
        comfortably inside the ANN top-k.
        """
        rng = np.random.RandomState(5)
        bases = [rng.normal(10.0**family, 0.5, 30) for family in range(3)]
        lake = DataLake("wide")
        for t in range(num_tables):
            data = {}
            for c in range(columns_per_table):
                family = c % 3
                data[f"metric_{family}_{c}"] = list(bases[family] + rng.normal(0, 0.005, 30))
            lake.add_table("wide", Table.from_dict(f"t{t}", data))
        return DataProfiler().profile_data_lake(lake)

    def test_pruned_edges_agree_with_exact_above_threshold(self):
        profiles = self._wide_profiles()
        exact_builder = DataGlobalSchemaBuilder(ann_prune=False)
        pruned_builder = DataGlobalSchemaBuilder(
            ann_prune=True, ann_group_threshold=8, ann_top_k=24
        )
        exact = exact_builder.compute_incremental_similarities(profiles, ())
        pruned = pruned_builder.compute_incremental_similarities(profiles, ())
        assert pruned_builder.pruning_stats["pruned_groups"] >= 1
        assert pruned_builder.last_pruning_ratio < 1.0
        assert exact_builder.last_pruning_ratio == 1.0

        def content_edges(edges):
            return {
                (e.column_a, e.column_b): e.score for e in edges if e.kind == "content"
            }

        exact_content, pruned_content = content_edges(exact), content_edges(pruned)
        assert set(pruned_content) == set(exact_content)
        for key, score in pruned_content.items():
            assert exact_content[key] == pytest.approx(score, abs=1e-9)
        # Label edges never go through the ANN path and must be untouched.
        assert {(e.column_a, e.column_b) for e in exact if e.kind == "label"} == {
            (e.column_a, e.column_b) for e in pruned if e.kind == "label"
        }

    def test_small_groups_stay_exact(self):
        profiles = self._wide_profiles(num_tables=3, columns_per_table=2)
        builder = DataGlobalSchemaBuilder(ann_prune=True, ann_group_threshold=128)
        builder.compute_incremental_similarities(profiles, ())
        assert builder.pruning_stats["pruned_groups"] == 0
        assert builder.last_pruning_ratio == 1.0

    def test_hnsw_backend_runs(self):
        profiles = self._wide_profiles(num_tables=6)
        builder = DataGlobalSchemaBuilder(
            ann_prune=True, ann_group_threshold=8, ann_top_k=8, ann_backend="hnsw"
        )
        edges = builder.compute_incremental_similarities(profiles, ())
        assert builder.pruning_stats["pruned_groups"] >= 1
        assert any(edge.kind == "content" for edge in edges)

    def test_unknown_ann_backend_rejected(self):
        with pytest.raises(ValueError):
            DataGlobalSchemaBuilder(ann_backend="faiss")


# -------------------------------------------------------- profile round-trip
finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=32)
optional_floats = st.one_of(st.none(), finite_floats)
identifiers = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=0x7F),
    min_size=1,
    max_size=12,
)


class TestProfileRoundTrip:
    @_SETTINGS
    @given(
        dataset=identifiers,
        table=identifiers,
        column=identifiers,
        fine_type=st.sampled_from(["int", "float", "string", "boolean", "date"]),
        count=st.integers(min_value=0, max_value=10**6),
        missing=st.integers(min_value=0, max_value=10**6),
        minimum=optional_floats,
        true_ratio=optional_floats,
        embedding=st.lists(finite_floats, min_size=1, max_size=16),
        label_embedding=st.one_of(st.none(), st.lists(finite_floats, min_size=1, max_size=8)),
    )
    def test_json_round_trip_is_lossless(
        self,
        dataset,
        table,
        column,
        fine_type,
        count,
        missing,
        minimum,
        true_ratio,
        embedding,
        label_embedding,
    ):
        profile = ColumnProfile(
            dataset_name=dataset,
            table_name=table,
            column_name=column,
            fine_grained_type=fine_type,
            statistics=ColumnStatistics(
                count=count, missing_count=missing, minimum=minimum, true_ratio=true_ratio
            ),
            embedding=np.asarray(embedding, dtype=float),
            label_embedding=(
                np.asarray(label_embedding, dtype=float) if label_embedding is not None else None
            ),
        )
        restored = ColumnProfile.from_json(profile.to_json())
        assert restored.to_dict() == profile.to_dict()
        assert restored.column_id == profile.column_id
        assert restored.statistics == profile.statistics
        assert np.array_equal(restored.embedding, profile.embedding)
        if profile.label_embedding is None:
            assert restored.label_embedding is None
        else:
            assert np.array_equal(restored.label_embedding, profile.label_embedding)

    def test_table_profile_round_trip(self, seeded_lake):
        profile = DataProfiler().profile_table(seeded_lake.tables()[0])
        restored = TableProfile.from_dict(profile.to_dict())
        assert restored.table_id == profile.table_id
        assert np.array_equal(restored.embedding, profile.embedding)
        assert [c.to_dict() for c in restored.column_profiles] == [
            c.to_dict() for c in profile.column_profiles
        ]

    def test_statistics_from_dict_ignores_unknown_keys(self):
        stats = ColumnStatistics.from_dict({"count": 3, "someday_a_new_field": 1})
        assert stats.count == 3


# ------------------------------------------------------------ embedding store
class TestPutMany:
    def test_put_many_matches_repeated_put(self):
        rng = np.random.RandomState(0)
        items = [(f"k{i}", rng.normal(size=8)) for i in range(20)]
        one_by_one, batched = EmbeddingStore(), EmbeddingStore()
        for key, vector in items:
            one_by_one.put("column", key, vector)
        batched.put_many("column", items)
        assert batched.count("column") == one_by_one.count("column") == 20
        for key, vector in items:
            assert np.array_equal(batched.get("column", key), vector)
        query = items[3][1]
        assert [k for k, _ in batched.search("column", query, k=5)] == [
            k for k, _ in one_by_one.search("column", query, k=5)
        ]

    def test_put_many_overwrites_existing_keys(self):
        store = EmbeddingStore()
        store.put("column", "a", np.ones(4))
        store.search("column", np.ones(4), k=1)  # materialize the index matrix
        store.put_many("column", [("a", np.full(4, 2.0)), ("b", np.full(4, 3.0))])
        assert np.array_equal(store.get("column", "a"), np.full(4, 2.0))
        assert store.count("column") == 2
        assert store.search("column", np.full(4, 2.0), k=1)[0][1] == pytest.approx(1.0)

    def test_put_many_empty_is_noop(self):
        store = EmbeddingStore()
        store.put_many("column", [])
        assert store.count("column") == 0


# --------------------------------------------------------- planner statistics
_EX = "http://example.org/"


def _uri(name: str) -> URIRef:
    return URIRef(_EX + name)


def _fanout_store(p1_subjects: int, p2_subjects: int) -> QuadStore:
    """100 triples for each of p1/p2, spread over the given subject counts."""
    store = QuadStore()
    for i in range(5):
        store.add(_uri(f"x{i}"), _uri("p0"), _uri(f"y{i}"))
    for predicate, distinct in (("p1", p1_subjects), ("p2", p2_subjects)):
        for i in range(100):
            store.add(_uri(f"y{i % distinct}"), _uri(predicate), _uri(f"{predicate}_o{i}"))
    return store


class TestStatisticsDrivenPlanner:
    QUERY = f"""
        SELECT ?x ?z ?w WHERE {{
            ?x <{_EX}p0> ?y .
            ?y <{_EX}p1> ?z .
            ?y <{_EX}p2> ?w .
        }}
    """

    def test_store_maintains_predicate_statistics(self):
        store = _fanout_store(100, 5)
        stats = store.predicate_statistics(_uri("p1"))
        assert stats == {"count": 100, "distinct_subjects": 100, "distinct_objects": 100}
        store.remove(_uri("y0"), _uri("p1"), _uri("p1_o0"))
        assert store.predicate_statistics(_uri("p1"))["count"] == 99
        assert store.predicate_statistics(_uri("p1"))["distinct_subjects"] == 99
        assert store.predicate_statistics(_uri("missing")) is None
        assert _uri("p2") in store.cardinality_statistics()

    def test_pattern_order_follows_live_cardinalities(self):
        low_fanout_first = SPARQLEngine(_fanout_store(p1_subjects=100, p2_subjects=5))
        plan_a = low_fanout_first.explain(self.QUERY)
        assert plan_a.index(f"?y <{_EX}p1> ?z") < plan_a.index(f"?y <{_EX}p2> ?w")

        # Same triple counts, inverted fan-outs: the plan must flip too.
        high_fanout_first = SPARQLEngine(_fanout_store(p1_subjects=5, p2_subjects=100))
        plan_b = high_fanout_first.explain(self.QUERY)
        assert plan_b.index(f"?y <{_EX}p2> ?w") < plan_b.index(f"?y <{_EX}p1> ?z")

    def test_planner_preserves_semantics(self):
        store = _fanout_store(10, 20)
        optimized = SPARQLEngine(store).select(self.QUERY)
        naive = SPARQLEngine(store, optimize=False).select(self.QUERY)
        assert sorted(map(str, optimized.rows)) == sorted(map(str, naive.rows))


class TestPartialQuotedIndex:
    def _annotated_store(self, n: int = 150) -> QuadStore:
        store = QuadStore()
        sim, cert = _uri("similar"), _uri("certainty")
        for i in range(n):
            store.annotate(_uri(f"c{i}"), sim, _uri(f"d{i}"), cert, Literal(0.5 + i / (2 * n)))
        return store

    def test_one_side_bound_pattern_uses_partial_index(self):
        store = self._annotated_store()
        query = f"""
            SELECT ?c2 ?score WHERE {{
                << <{_EX}c7> <{_EX}similar> ?c2 >> <{_EX}certainty> ?score .
            }}
        """
        engine = SPARQLEngine(store)
        # Whichever executor runs, a one-side-bound quoted pattern must pick
        # its candidates through the partial quoted-triple index
        # (GraphIndex._quoted_candidates), never via full triple scans
        # (store.match / store.match_ids with an unbound subject).
        from repro.rdf.graph_index import GraphIndex

        calls = {"match": 0, "match_quoted": 0}
        original_match = store.match_ids
        original_candidates = GraphIndex._quoted_candidates

        def counting_match(*args, **kwargs):
            calls["match"] += 1
            return original_match(*args, **kwargs)

        def counting_candidates(*args, **kwargs):
            calls["match_quoted"] += 1
            return original_candidates(*args, **kwargs)

        store.match_ids = counting_match
        GraphIndex._quoted_candidates = counting_candidates
        try:
            result = engine.select(query)
        finally:
            store.match_ids = original_match
            GraphIndex._quoted_candidates = original_candidates
        assert result.rows == [{"c2": _uri("d7"), "score": pytest.approx(0.5 + 7 / 300)}]
        assert calls["match_quoted"] >= 1
        assert calls["match"] == 0

    def test_partial_index_estimate_beats_annotation_scan(self):
        store = self._annotated_store()
        # One bound side narrows the candidates to that column's annotations.
        assert store.estimate_quoted_matches(inner_subject=_uri("c7")) == 1
        assert store.predicate_statistics(_uri("certainty"))["count"] == 150

    def test_match_quoted_object_side_and_semantics(self):
        store = self._annotated_store(20)
        hits = list(store.match_quoted(inner_object=_uri("d3")))
        assert len(hits) == 1
        triple, _ = hits[0]
        assert triple.subject.subject == _uri("c3")
        # Engine answers object-side-bound patterns identically with and
        # without the optimizer.
        query = f"""
            SELECT ?c1 ?score WHERE {{
                << ?c1 <{_EX}similar> <{_EX}d3> >> <{_EX}certainty> ?score .
            }}
        """
        optimized = SPARQLEngine(store).select(query)
        naive = SPARQLEngine(store, optimize=False).select(query)
        assert sorted(map(str, optimized.rows)) == sorted(map(str, naive.rows))
        assert optimized.rows[0]["c1"] == _uri("c3")
