"""Unit tests for pipeline abstraction: static analysis, docs, dataset usage."""

import pytest

from repro.pipelines import (
    LibraryDocumentation,
    PipelineAbstractor,
    PipelineScript,
    StaticCodeAnalyzer,
)
from repro.pipelines.dataset_usage import (
    detect_column_reads,
    detect_dataset_read,
    split_dataset_and_table,
)
from repro.pipelines.static_analysis import (
    CONTROL_FLOW_CONDITIONAL,
    CONTROL_FLOW_IMPORT,
    CONTROL_FLOW_LOOP,
)


class TestStaticAnalysis:
    def test_statement_count_and_text(self, example_pipeline_source):
        statements = StaticCodeAnalyzer().analyze(example_pipeline_source)
        assert len(statements) > 10
        assert any("read_csv" in s.text for s in statements)

    def test_import_alias_resolution(self):
        statements, aliases = StaticCodeAnalyzer().analyze_with_aliases(
            "import pandas as pd\ndf = pd.read_csv('x.csv')\n"
        )
        assert aliases["pd"] == "pandas"
        calls = [c for s in statements for c in s.calls]
        assert calls[0].full_name == "pandas.read_csv"

    def test_from_import_resolution(self):
        statements = StaticCodeAnalyzer().analyze(
            "from sklearn.preprocessing import StandardScaler\ns = StandardScaler()\n"
        )
        calls = [c for s in statements for c in s.calls]
        assert calls[0].full_name == "sklearn.preprocessing.StandardScaler"

    def test_control_flow_types(self):
        source = (
            "import os\n"
            "for i in range(3):\n    x = i + 1\n"
            "if x:\n    y = x * 2\n"
            "def helper():\n    z = 1\n    return z\n"
        )
        statements = StaticCodeAnalyzer().analyze(source)
        flows = {s.control_flow for s in statements}
        assert CONTROL_FLOW_IMPORT in flows
        assert CONTROL_FLOW_LOOP in flows
        assert CONTROL_FLOW_CONDITIONAL in flows

    def test_code_flow_links_are_sequential(self, example_pipeline_source):
        statements = StaticCodeAnalyzer().analyze(example_pipeline_source)
        for i, statement in enumerate(statements[:-1]):
            assert statement.next_statement == statements[i + 1].index
        assert statements[-1].next_statement is None

    def test_data_flow_follows_variables(self):
        source = "a = 1\nb = a + 1\nc = 5\nd = b + c\n"
        statements = StaticCodeAnalyzer().analyze(source)
        assert statements[1].index in statements[0].data_flow_next
        assert statements[3].index in statements[2].data_flow_next

    def test_insignificant_calls_dropped(self):
        statements = StaticCodeAnalyzer().analyze("print('hello')\nx = len([1])\n")
        calls = [c for s in statements for c in s.calls]
        assert calls == []

    def test_keyword_and_positional_arguments_extracted(self):
        statements = StaticCodeAnalyzer().analyze(
            "from sklearn.ensemble import RandomForestClassifier\n"
            "clf = RandomForestClassifier(50, max_depth=10)\n"
        )
        call = [c for s in statements for c in s.calls][0]
        assert call.positional_arguments == [50]
        assert call.keyword_arguments == {"max_depth": 10}

    def test_syntax_error_returns_empty(self):
        assert StaticCodeAnalyzer().analyze("def broken(:\n") == []


class TestDocumentationAnalysis:
    def test_lookup_by_full_and_short_name(self):
        docs = LibraryDocumentation()
        assert docs.lookup("pandas.read_csv").return_type == "pandas.DataFrame"
        assert docs.lookup("read_csv").full_name == "pandas.read_csv"
        assert docs.lookup("not.a.real.call") is None

    def test_enrich_call_names_implicit_parameters(self):
        statements = StaticCodeAnalyzer().analyze(
            "from sklearn.ensemble import RandomForestClassifier\n"
            "clf = RandomForestClassifier(50, max_depth=10)\n"
        )
        docs = LibraryDocumentation()
        call = [c for s in statements for c in s.calls][0]
        enriched = docs.enrich_call(call)
        # The first positional argument is n_estimators (implicit name).
        assert enriched.parameter_names["n_estimators"] == 50
        # Unspecified parameters appear with their documented defaults.
        assert "min_samples_split" in enriched.default_parameters
        assert enriched.return_type == "sklearn.ensemble.RandomForestClassifier"
        assert enriched.all_parameters()["max_depth"] == 10

    def test_enrich_infers_return_type_of_read_csv(self):
        statements = StaticCodeAnalyzer().analyze(
            "import pandas as pd\ndf = pd.read_csv('titanic/train.csv')\n"
        )
        docs = LibraryDocumentation()
        statement = docs.enrich_statement(statements[-1])
        assert statement.calls[0].return_type == "pandas.DataFrame"

    def test_hierarchy_edges(self):
        docs = LibraryDocumentation()
        edges = docs.hierarchy_edges("sklearn.linear_model.LogisticRegression")
        assert ("sklearn.linear_model.LogisticRegression", "sklearn.linear_model") in edges
        assert ("sklearn.linear_model", "sklearn") in edges

    def test_known_callables_not_empty(self):
        assert len(LibraryDocumentation().known_callables()) > 40


class TestDatasetUsage:
    def test_split_dataset_and_table(self):
        assert split_dataset_and_table("titanic/train.csv") == ("titanic", "train")
        assert split_dataset_and_table("train.csv") == (None, "train")
        assert split_dataset_and_table("../input/heart-uci/heart.csv") == ("heart-uci", "heart")

    def test_detect_dataset_read(self):
        statements = StaticCodeAnalyzer().analyze(
            "import pandas as pd\ndf = pd.read_csv('titanic/train.csv')\n"
        )
        reads = detect_dataset_read(statements[-1])
        assert reads == ["titanic/train.csv"]

    def test_detect_column_reads_subscripts_and_drop(self):
        columns = detect_column_reads("X, y = df.drop('Survived', axis=1), df['Survived']")
        assert columns == ["Survived"]
        columns = detect_column_reads("X['Sex'] = imputer.fit_transform(X['Sex'])")
        assert columns == ["Sex"]
        columns = detect_column_reads("sub = df[['a', 'b']]")
        assert set(columns) == {"a", "b"}

    def test_detect_column_reads_ignores_bad_syntax(self):
        assert detect_column_reads("df[???") == []


class TestPipelineAbstractor:
    def test_abstract_running_example(self, example_pipeline_source):
        abstractor = PipelineAbstractor()
        script = PipelineScript("p1", example_pipeline_source, dataset_name="titanic", votes=12)
        abstraction = abstractor.abstract_script(script)
        assert "pandas" in abstraction.libraries_used
        assert "sklearn" in abstraction.libraries_used
        assert "sklearn.ensemble.RandomForestClassifier" in abstraction.calls_used
        assert ("titanic", "train") in abstraction.predicted_table_reads
        assert "Survived" in abstraction.predicted_column_reads
        # NormalizedAge is predicted here and later pruned by the linker.
        assert "NormalizedAge" in abstraction.predicted_column_reads

    def test_local_variable_methods_not_counted_as_libraries(self, example_pipeline_source):
        abstractor = PipelineAbstractor()
        abstraction = abstractor.abstract_script(PipelineScript("p1", example_pipeline_source))
        assert "clf" not in abstraction.libraries_used
        assert "imputer" not in abstraction.libraries_used

    def test_library_usage_counts(self, example_pipeline_source):
        abstractor = PipelineAbstractor()
        abstractions = abstractor.abstract_scripts(
            [
                PipelineScript("p1", example_pipeline_source),
                PipelineScript("p2", "import pandas as pd\ndf = pd.read_csv('a/b.csv')\n"),
            ]
        )
        counts = PipelineAbstractor.library_usage_counts(abstractions)
        assert counts["pandas"] == 2
        assert counts["sklearn"] == 1

    def test_library_hierarchy_accumulates(self, example_pipeline_source):
        abstractor = PipelineAbstractor()
        abstractor.abstract_script(PipelineScript("p1", example_pipeline_source))
        edges = abstractor.library_hierarchy_edges()
        assert ("sklearn.ensemble", "sklearn") in edges

    def test_empty_script(self):
        abstraction = PipelineAbstractor().abstract_script(PipelineScript("p", ""))
        assert abstraction.statements == []
        assert abstraction.libraries_used == set()
